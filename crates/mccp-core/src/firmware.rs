//! The Cryptographic Core firmware: the paper's block-cipher modes written
//! in PicoBlaze assembly (§VI: "Cryptographic algorithms executed by
//! proposed MCCP are implemented with Xilinx PicoBlaze assembler language
//! which is used to generate the Cryptographic Unit instruction flow").
//!
//! Ten programs cover the mode × direction × core-count grid:
//! GCM encrypt/decrypt, single-core CCM encrypt/decrypt, two-core CCM
//! (CBC-MAC half and CTR half, each direction), plain CTR and CBC-MAC.
//!
//! ## Controller port map
//!
//! | dir | port | function |
//! |-----|------|----------|
//! | IN  | 0x00 | CU status byte |
//! | IN  | 0x01/0x02 | `nP` payload blocks (lo/hi) |
//! | IN  | 0x03/0x04 | `nA` auth-only blocks (lo/hi) |
//! | IN  | 0x05/0x06 | final-payload-block byte mask (lo/hi) |
//! | IN  | 0x07/0x08 | tag byte mask (lo/hi) |
//! | OUT | 0x00 | CU instruction strobe |
//! | OUT | 0x01 | result register (0x01 = OK, 0x02 = AUTH_FAIL) |
//! | OUT | 0x02 | wipe output FIFO (auth-failure defense) |
//! | OUT | 0x03/0x04 | CU XOR mask (lo/hi) |
//!
//! ## Input-FIFO stream layouts (built by the communication controller —
//! see [`crate::format`])
//!
//! ```text
//! GCM  enc: J0 · AAD* · PT* · LEN                  → CT* · TAG
//! GCM  dec: J0 · AAD* · CT* · LEN · TAG            → PT*
//! CCM1 enc: CTR0 · (B0·encAAD)* · PT* · CTR0       → CT* · TAG
//! CCM1 dec: CTR0 · (B0·encAAD)* · CT* · CTR0 · TAG → PT*
//! CCM2 enc: CBC half: (B0·encAAD)* · PT*           → (mac via inter-core port)
//!           CTR half: CTR0 · PT* · CTR0            → CT* · TAG
//! CCM2 dec: CTR half: CTR0 · CT* · CTR0            → PT* (pt via inter-core port)
//!           CBC half: (B0·encAAD)* · CTR0 · TAG    → (verdict)
//! CTR:      CTR0 · PT*                             → CT*
//! CBC-MAC:  DATA*                                  → MAC
//! ```
//! (`*` = zero-padded 16-byte blocks; every layout matches §VI.B's rule
//! that the communication controller formats packets before upload.)

use mccp_cryptounit::CuInstruction;
use mccp_picoblaze::asm::{assemble, Program};

/// Input port numbers (controller `INPUT`).
pub mod in_port {
    pub const CU_STATUS: u8 = 0x00;
    pub const NP_LO: u8 = 0x01;
    pub const NP_HI: u8 = 0x02;
    pub const NA_LO: u8 = 0x03;
    pub const NA_HI: u8 = 0x04;
    pub const PM_LO: u8 = 0x05;
    pub const PM_HI: u8 = 0x06;
    pub const TM_LO: u8 = 0x07;
    pub const TM_HI: u8 = 0x08;
}

/// Output port numbers (controller `OUTPUT`).
pub mod out_port {
    pub const CU_INSTR: u8 = 0x00;
    pub const RESULT: u8 = 0x01;
    pub const WIPE: u8 = 0x02;
    pub const MASK_LO: u8 = 0x03;
    pub const MASK_HI: u8 = 0x04;
}

/// Result-register values written by firmware.
pub mod result_code {
    pub const OK: u8 = 0x01;
    pub const AUTH_FAIL: u8 = 0x02;
}

/// CU status bits the firmware polls (must match `mccp_cryptounit::CuStatus`).
const BUSY_MASK: u8 = 0x1E; // AES | GHASH | FG | PENDING
const EQU_BIT: u8 = 0x01;

/// The firmware programs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FirmwareId {
    GcmEnc,
    GcmDec,
    Ccm1Enc,
    Ccm1Dec,
    /// Two-core CCM encrypt, CBC-MAC half (left core of the pair).
    Ccm2CbcEnc,
    /// Two-core CCM encrypt, CTR half (right core).
    Ccm2CtrEnc,
    /// Two-core CCM decrypt, CTR half (left core).
    Ccm2CtrDec,
    /// Two-core CCM decrypt, CBC-MAC half (right core).
    Ccm2CbcDec,
    Ctr,
    CbcMac,
}

impl FirmwareId {
    /// Static name, identical to the `Debug` rendering but allocation-free
    /// for hot telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            FirmwareId::GcmEnc => "GcmEnc",
            FirmwareId::GcmDec => "GcmDec",
            FirmwareId::Ccm1Enc => "Ccm1Enc",
            FirmwareId::Ccm1Dec => "Ccm1Dec",
            FirmwareId::Ccm2CbcEnc => "Ccm2CbcEnc",
            FirmwareId::Ccm2CtrEnc => "Ccm2CtrEnc",
            FirmwareId::Ccm2CtrDec => "Ccm2CtrDec",
            FirmwareId::Ccm2CbcDec => "Ccm2CbcDec",
            FirmwareId::Ctr => "Ctr",
            FirmwareId::CbcMac => "CbcMac",
        }
    }

    pub const ALL: [FirmwareId; 10] = [
        FirmwareId::GcmEnc,
        FirmwareId::GcmDec,
        FirmwareId::Ccm1Enc,
        FirmwareId::Ccm1Dec,
        FirmwareId::Ccm2CbcEnc,
        FirmwareId::Ccm2CtrEnc,
        FirmwareId::Ccm2CtrDec,
        FirmwareId::Ccm2CbcDec,
        FirmwareId::Ctr,
        FirmwareId::CbcMac,
    ];
}

/// Shared CONSTANT prelude: ports, result codes, and every CU instruction
/// byte, generated from the real encoder so firmware and hardware can
/// never drift apart.
fn prelude() -> String {
    let mut s = String::with_capacity(4096);
    let mut c = |name: &str, v: u8| s.push_str(&format!("CONSTANT {name}, 0x{v:02X}\n"));
    c("CU", out_port::CU_INSTR);
    c("RESULT", out_port::RESULT);
    c("WIPE", out_port::WIPE);
    c("MLO", out_port::MASK_LO);
    c("MHI", out_port::MASK_HI);
    c("ST", in_port::CU_STATUS);
    c("NPLO", in_port::NP_LO);
    c("NPHI", in_port::NP_HI);
    c("NALO", in_port::NA_LO);
    c("NAHI", in_port::NA_HI);
    c("PMLO", in_port::PM_LO);
    c("PMHI", in_port::PM_HI);
    c("TMLO", in_port::TM_LO);
    c("TMHI", in_port::TM_HI);
    c("ROK", result_code::OK);
    c("RFAIL", result_code::AUTH_FAIL);
    c("BUSY", BUSY_MASK);
    c("EQUBIT", EQU_BIT);
    for a in 0..4u8 {
        c(&format!("LOAD{a}"), CuInstruction::Load { a }.encode());
        c(&format!("STORE{a}"), CuInstruction::Store { a }.encode());
        c(&format!("LOADH{a}"), CuInstruction::LoadH { a }.encode());
        c(&format!("SGFM{a}"), CuInstruction::Sgfm { a }.encode());
        c(&format!("FGFM{a}"), CuInstruction::Fgfm { a }.encode());
        c(&format!("SAES{a}"), CuInstruction::Saes { a }.encode());
        c(&format!("FAES{a}"), CuInstruction::Faes { a }.encode());
        c(
            &format!("INC{a}"),
            CuInstruction::Inc { a, amount: 1 }.encode(),
        );
        c(&format!("XPUT{a}"), CuInstruction::Xput { a }.encode());
        c(&format!("XGET{a}"), CuInstruction::Xget { a }.encode());
        for b in 0..4u8 {
            c(
                &format!("XOR_{a}_{b}"),
                CuInstruction::Xor { a, b }.encode(),
            );
            c(
                &format!("EQU_{a}_{b}"),
                CuInstruction::Equ { a, b }.encode(),
            );
        }
    }
    s
}

/// `OUTPUT <instr const>; HALT` via the scratch register s6 — the generic
/// (non-preloaded) way to issue one CU instruction.
fn op(name: &str) -> String {
    format!("LOAD s6, {name}\nOUTPUT s6, CU\nHALT DISABLE\n")
}

/// Shared epilogue: `quiesce` subroutine (poll until the CU is fully idle)
/// and the `spin` terminal loop.
const EPILOGUE: &str = "
spin:   JUMP spin
quiesce:
        INPUT s4, ST
        TEST  s4, BUSY
        JUMP  NZ, quiesce
        RETURN
";

/// Loads the 16-bit payload count into s0:s1 and auth count into s2:s3.
const LOAD_COUNTS: &str = "
        INPUT s0, NPLO
        INPUT s1, NPHI
        INPUT s2, NALO
        INPUT s3, NAHI
";

/// Restores the CU XOR mask to 0xFFFF.
const MASK_ALL: &str = "
        LOAD  s6, 0xFF
        OUTPUT s6, MLO
        OUTPUT s6, MHI
";

/// Emits the `nA`-counted auth loop used by GCM (LOAD + SGFM per block).
fn gcm_aad_loop() -> String {
    format!(
        "
        LOAD  s4, s2
        OR    s4, s3
        JUMP  Z, aad_done
aad_loop:
{load}{sgfm}        SUB   s2, 0x01
        SUBCY s3, 0x00
        LOAD  s4, s2
        OR    s4, s3
        JUMP  NZ, aad_loop
aad_done:
",
        load = op("LOAD2"),
        sgfm = op("SGFM2"),
    )
}

/// Emits the software-pipelined CBC-MAC accumulation loop over a 16-bit
/// count in `lo:hi`. The data source instruction must be preloaded in s8
/// (LOAD @3 from the FIFO, or XGET @3 from the inter-core port), and
/// s9/sA/sB hold `XOR @3,@2; SAES @2; FAES @2`.
///
/// The next block is fetched *inside the AES window* and `FAES → XOR →
/// SAES` forms the critical chain, which is exactly the paper's
/// `T_CBC = T_SAES + T_FAES + T_XOR = 55` cycles per block.
fn cbc_loop(label: &str, lo: &str, hi: &str) -> String {
    format!(
        "
        LOAD  s4, {lo}
        OR    s4, {hi}
        JUMP  Z, {label}_done
        ; pipeline preamble: fetch b1, xor into the chain, start AES
        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
        SUB   {lo}, 0x01
        SUBCY {hi}, 0x00
        LOAD  s4, {lo}
        OR    s4, {hi}
        JUMP  Z, {label}_fin
{label}:
        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT sB, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
        SUB   {lo}, 0x01
        SUBCY {hi}, 0x00
        LOAD  s4, {lo}
        OR    s4, {hi}
        JUMP  NZ, {label}
{label}_fin:
        OUTPUT sB, CU
        HALT  DISABLE
{label}_done:
"
    )
}

/// Preloads the CBC-loop op bytes into s8..sB (FIFO data source).
const CBC_PRELOAD: &str = "
        LOAD  s8, LOAD3
        LOAD  s9, XOR_3_2
        LOAD  sA, SAES2
        LOAD  sB, FAES2
";

/// Preloads the CBC-loop op bytes with the inter-core port as the data
/// source (two-core CCM decrypt: plaintext arrives block-by-block).
const CBC_PRELOAD_XGET: &str = "
        LOAD  s8, XGET3
        LOAD  s9, XOR_3_2
        LOAD  sA, SAES2
        LOAD  sB, FAES2
";

/// Emits the last-iteration check that programs the final-block CT mask:
/// when the 16-bit count s0:s1 equals 1, write PM into the CU mask ports.
fn mask_if_last() -> String {
    "
        LOAD  s4, s0
        XOR   s4, 0x01
        OR    s4, s1
        JUMP  NZ, not_last
        INPUT s6, PMLO
        OUTPUT s6, MLO
        INPUT s6, PMHI
        OUTPUT s6, MHI
not_last:
"
    .to_string()
}

/// 16-bit loop bottom: decrement s0:s1 and jump to `label` while non-zero.
fn count_loop_bottom(label: &str) -> String {
    format!(
        "
        SUB   s0, 0x01
        SUBCY s1, 0x00
        LOAD  s4, s0
        OR    s4, s1
        JUMP  NZ, {label}
"
    )
}

/// The masked tag comparison shared by the decrypt programs: computed tag
/// in `@1`, expected tag loaded into a scratch bank; sets `equ_flag` and
/// branches to OK / AUTH_FAIL (wiping the output FIFO on failure).
fn tag_compare_and_result() -> String {
    format!(
        "
        INPUT s6, TMLO
        OUTPUT s6, MLO
        INPUT s6, TMHI
        OUTPUT s6, MHI
{load_expected}{diff}{zero}{equ}        CALL  quiesce
        INPUT s4, ST
        TEST  s4, EQUBIT
        JUMP  Z, auth_fail
        LOAD  s6, ROK
        OUTPUT s6, RESULT
        JUMP  spin
auth_fail:
        OUTPUT s6, WIPE
        LOAD  s6, RFAIL
        OUTPUT s6, RESULT
        JUMP  spin
",
        load_expected = op("LOAD2"), // expected tag -> @2
        diff = op("XOR_1_2"),        // @2 = (computed ^ expected) & tagmask
        zero = op("XOR_1_1"),        // @1 = 0 (x ^ x masked is all-zero)
        equ = op("EQU_2_1"),         // equ_flag = (@2 == 0)
    )
}

fn gcm_common_preamble() -> String {
    format!(
        "{counts}{mask_all}{zero1}{saes1}{faes1}{loadh}{loadj0}{saes0}{faes3}{inc}",
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        zero1 = op("XOR_1_1"), // @1 = 0
        saes1 = op("SAES1"),   // E(0)
        faes1 = op("FAES1"),   // @1 = H
        loadh = op("LOADH1"),  // GHASH key = H, accumulator reset
        loadj0 = op("LOAD0"),  // @0 = J0
        saes0 = op("SAES0"),   // E(J0)
        faes3 = op("FAES3"),   // @3 = E(J0), kept for the tag
        inc = op("INC0"),      // @0 = ctr_1
    )
}

/// The Listing-1 GCM main loop, shared by encrypt and decrypt (the three
/// mid-loop ops in s[A..C] differ). The counter arithmetic and the
/// last-block-mask test are interleaved into the pacing slots between
/// `OUTPUT` strobes — the paper's replace-HALT-by-NOPs trick — so the
/// next `FAES` is strobed early enough to catch the AES result latch and
/// the loop sustains exactly `T_SAES + T_FAES` (49) cycles per block.
///
/// Register plan: s8=FAES1, s9=SAES0, sA/sB/sC = the three mode ops,
/// sD=INC0, sE=LOAD2; s0:s1 = block count, s5 = last-block predicate.
fn gcm_main_loop() -> String {
    "
        ; when the very first block is also the last, set its mask now
        LOAD  s4, s0
        XOR   s4, 0x01
        OR    s4, s1
        JUMP  NZ, pipeline_go
        INPUT s6, PMLO
        OUTPUT s6, MLO
        INPUT s6, PMHI
        OUTPUT s6, MHI
pipeline_go:
        ; software-pipeline preamble: start E(ctr_1), pre-inc, fetch block_1
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
        OUTPUT sE, CU
        HALT  DISABLE
main_loop:
        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        SUB   s0, 0x01
        SUBCY s1, 0x00
        OUTPUT sB, CU
        LOAD  s5, s0
        XOR   s5, 0x01
        OUTPUT sC, CU
        OR    s5, s1
        HALT  DISABLE
        OUTPUT sD, CU
        JUMP  Z, set_mask
mask_done:
        LOAD  s4, s4
        OUTPUT sE, CU
        HALT  DISABLE
        LOAD  s4, s0
        OR    s4, s1
        JUMP  NZ, main_loop
        JUMP  finalize
set_mask:
        INPUT s6, PMLO
        OUTPUT s6, MLO
        INPUT s6, PMHI
        OUTPUT s6, MHI
        JUMP  mask_done
"
    .to_string()
}

fn gcm_enc_source() -> String {
    format!(
        "{prelude}
start:
{preamble}{aad}
        ; preload the Listing-1 loop ops
        LOAD  s8, FAES1
        LOAD  s9, SAES0
        LOAD  sA, XOR_2_1
        LOAD  sB, SGFM1
        LOAD  sC, STORE1
        LOAD  sD, INC0
        LOAD  sE, LOAD2
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, no_payload
{main_loop}no_payload:
{load_len}finalize:
{mask_all}{sgfm_len}{fgfm}{tag_xor}{store_tag}        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        preamble = gcm_common_preamble(),
        aad = gcm_aad_loop(),
        main_loop = gcm_main_loop(),
        load_len = op("LOAD2"),
        mask_all = MASK_ALL,
        sgfm_len = op("SGFM2"),
        fgfm = op("FGFM1"),
        tag_xor = op("XOR_3_1"), // @1 = GHASH ^ E(J0)
        store_tag = op("STORE1"),
        epilogue = EPILOGUE,
    )
}

fn gcm_dec_source() -> String {
    format!(
        "{prelude}
start:
{preamble}{aad}
        LOAD  s8, FAES1
        LOAD  s9, SAES0
        LOAD  sA, SGFM2
        LOAD  sB, XOR_1_2
        LOAD  sC, STORE2
        LOAD  sD, INC0
        LOAD  sE, LOAD2
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, no_payload
{main_loop}no_payload:
{load_len}finalize:
{mask_all}{sgfm_len}{fgfm}{tag_xor}{compare}{epilogue}",
        prelude = prelude(),
        preamble = gcm_common_preamble(),
        aad = gcm_aad_loop(),
        main_loop = gcm_main_loop(),
        load_len = op("LOAD2"),
        mask_all = MASK_ALL,
        sgfm_len = op("SGFM2"),
        fgfm = op("FGFM1"),
        tag_xor = op("XOR_3_1"), // @1 = computed tag
        compare = tag_compare_and_result(),
        epilogue = EPILOGUE,
    )
}

/// The single-core CCM payload schedule (paper: `T_CTR + T_CBC = 104`).
///
/// Register plan: s8=FAES1, s9=XOR_3_2 (mac^pt), sA=SAES2, sB=XOR_3_1
/// (ct=pt^ks) for encrypt / XOR_1_2 (mac^pt) for decrypt, sC=STORE1,
/// sD=INC0, sE=LOAD3, sF=FAES2; SAES0 issued via the s6 immediate.
/// Critical chain per block: `FAES1 → XOR(mac) → SAES2 → FAES2 → SAES0`
/// = 49 + 6 + 49 = 104; XOR(ct)/STORE/INC/LOAD hide in the AES windows.
/// The final loop iteration's LOAD @3 fetches the trailing CTR0 copy the
/// stream carries, which the tag finalization then encrypts.
const CCM1_PRELOAD_ENC: &str = "
        LOAD  s8, FAES1
        LOAD  s9, XOR_3_2
        LOAD  sA, SAES2
        LOAD  sB, XOR_3_1
        LOAD  sC, STORE1
        LOAD  sD, INC0
        LOAD  sE, LOAD3
        LOAD  sF, FAES2
";

fn ccm1_enc_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{load_ctr0}{zero_mac}{cbc_preload}{auth}
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, fin_load
{payload_preload}
        ; software-pipeline preamble: ctr_1, start AES, fetch pt_1
        OUTPUT sD, CU
        HALT  DISABLE
{saes_ctr_imm}        OUTPUT sE, CU
        HALT  DISABLE
main_loop:
        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
{mask_last}        OUTPUT sB, CU
        HALT  DISABLE
        OUTPUT sC, CU
        HALT  DISABLE
{unmask}        OUTPUT sD, CU
        HALT  DISABLE
        OUTPUT sE, CU
        HALT  DISABLE
        OUTPUT sF, CU
        HALT  DISABLE
{saes_ctr_imm2}{loop_bottom}        JUMP  finalize
fin_load:
{load_ctr0_tail}finalize:
{mask_all2}{saes_tagks}{faes_tagks}{tag_xor}{store_tag}        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        load_ctr0 = op("LOAD0"),
        zero_mac = op("XOR_2_2"),
        cbc_preload = CBC_PRELOAD,
        auth = cbc_loop("auth_loop", "s2", "s3"),
        payload_preload = CCM1_PRELOAD_ENC,
        saes_ctr_imm = op("SAES0"),
        mask_last = mask_if_last(),
        unmask = MASK_ALL,
        saes_ctr_imm2 = op("SAES0"),
        loop_bottom = count_loop_bottom("main_loop"),
        load_ctr0_tail = op("LOAD3"),
        mask_all2 = MASK_ALL,
        saes_tagks = op("SAES3"),
        faes_tagks = op("FAES1"), // @1 = E(ctr0)
        tag_xor = op("XOR_2_1"),  // @1 = mac ^ E(ctr0)
        store_tag = op("STORE1"),
        epilogue = EPILOGUE,
    )
}

fn ccm1_dec_source() -> String {
    // Decrypt chain: `FAES1 → XOR31 (pt) → XOR12 (mac^pt) → SAES2 → FAES2
    // → SAES0` — the masked pt XOR sits on the MAC path, so the loop runs
    // 110 cycles/block (104 + one extra foreground XOR; the paper reports
    // encrypt only). On the final block the pt mask must be *restored*
    // between the two adjacent XORs, which costs a one-off quiesce.
    format!(
        "{prelude}
start:
{counts}{mask_all}{load_ctr0}{zero_mac}{cbc_preload}{auth}
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, fin_load
        LOAD  s8, FAES1
        LOAD  s9, XOR_1_2
        LOAD  sA, SAES2
        LOAD  sB, XOR_3_1
        LOAD  sC, STORE1
        LOAD  sD, INC0
        LOAD  sE, LOAD3
        LOAD  sF, FAES2
        OUTPUT sD, CU
        HALT  DISABLE
{saes_ctr_imm}        OUTPUT sE, CU
        HALT  DISABLE
main_loop:
        OUTPUT s8, CU
        HALT  DISABLE
        ; last block: set the pt mask, XOR, drain, restore — the two XORs
        ; are adjacent so the restore needs a completed pipeline.
        LOAD  s4, s0
        XOR   s4, 0x01
        OR    s4, s1
        JUMP  NZ, not_last
        INPUT s6, PMLO
        OUTPUT s6, MLO
        INPUT s6, PMHI
        OUTPUT s6, MHI
        OUTPUT sB, CU
        HALT  DISABLE
        CALL  quiesce
        LOAD  s6, 0xFF
        OUTPUT s6, MLO
        OUTPUT s6, MHI
        JUMP  joined
not_last:
        OUTPUT sB, CU
        HALT  DISABLE
joined:
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
        OUTPUT sE, CU
        HALT  DISABLE
        OUTPUT sF, CU
        HALT  DISABLE
{saes_ctr_imm2}{loop_bottom}        JUMP  finalize
fin_load:
{load_ctr0_tail}finalize:
{mask_all2}{saes_tagks}{faes_tagks}{tag_xor}{compare}{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        load_ctr0 = op("LOAD0"),
        zero_mac = op("XOR_2_2"),
        cbc_preload = CBC_PRELOAD,
        auth = cbc_loop("auth_loop", "s2", "s3"),
        saes_ctr_imm = op("SAES0"),
        saes_ctr_imm2 = op("SAES0"),
        loop_bottom = count_loop_bottom("main_loop"),
        load_ctr0_tail = op("LOAD3"),
        mask_all2 = MASK_ALL,
        saes_tagks = op("SAES3"),
        faes_tagks = op("FAES1"), // @1 = E(ctr0)
        tag_xor = op("XOR_2_1"),  // @1 = computed tag
        compare = tag_compare_and_result(),
        epilogue = EPILOGUE,
    )
}

fn ccm2_cbc_enc_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{zero_mac}{cbc_preload}{auth}{payload}{xput}        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        zero_mac = op("XOR_2_2"),
        cbc_preload = CBC_PRELOAD,
        auth = cbc_loop("auth_loop", "s2", "s3"),
        payload = cbc_loop("pay_loop", "s0", "s1"),
        xput = op("XPUT2"),
        epilogue = EPILOGUE,
    )
}

/// The CTR-half loop registers: s8=FAES1, s9=SAES0, sA=XOR_3_1, sB=STORE1,
/// sC=INC0, sD=LOAD3 (+ sE=XPUT1 for decrypt). The GCM discipline applies:
/// `FAES → SAES` back-to-back keeps the AES engine saturated (49/block);
/// everything else hides inside the 44-cycle window.
const CTR_HALF_PRELOAD: &str = "
        LOAD  s8, FAES1
        LOAD  s9, SAES0
        LOAD  sA, XOR_3_1
        LOAD  sB, STORE1
        LOAD  sC, INC0
        LOAD  sD, LOAD3
";

/// Shared CTR-half loop body (optionally forwarding pt over the inter-core
/// port). The final iteration's `LOAD @3` fetches the trailing CTR0 copy.
fn ctr_half_loop(xput_pt: bool) -> String {
    let xput = if xput_pt {
        "        OUTPUT sE, CU\n        HALT  DISABLE\n"
    } else {
        ""
    };
    format!(
        "
        ; pipeline preamble: ctr_1, start AES, ctr_2, fetch block_1
        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
main_loop:
{mask_last}        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
        OUTPUT sB, CU
        HALT  DISABLE
{xput}        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
{loop_bottom}",
        mask_last = mask_if_last(),
        loop_bottom = count_loop_bottom("main_loop"),
    )
}

fn ccm2_ctr_enc_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{load_ctr0}{preload}
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, fin_load
{loop_body}        JUMP  finalize
fin_load:
{load_ctr0_tail}finalize:
{mask_all2}{xget_mac}{saes_tagks}{faes_tagks}{tag_xor}{store_tag}        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        load_ctr0 = op("LOAD0"),
        preload = CTR_HALF_PRELOAD,
        loop_body = ctr_half_loop(false),
        load_ctr0_tail = op("LOAD3"),
        mask_all2 = MASK_ALL,
        xget_mac = op("XGET2"),   // mac from the CBC half (left neighbour)
        saes_tagks = op("SAES3"), // E(ctr0) — @3 holds the trailing CTR0
        faes_tagks = op("FAES1"),
        tag_xor = op("XOR_2_1"),
        store_tag = op("STORE1"),
        epilogue = EPILOGUE,
    )
}

fn ccm2_ctr_dec_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{load_ctr0}{preload}
        LOAD  sE, XPUT1
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, fin
{loop_body}fin:
        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        load_ctr0 = op("LOAD0"),
        preload = CTR_HALF_PRELOAD,
        loop_body = ctr_half_loop(true),
        epilogue = EPILOGUE,
    )
}

fn ccm2_cbc_dec_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{zero_mac}{cbc_preload}{auth}
        ; switch the CBC data source to the inter-core port for the
        ; plaintext blocks the CTR half forwards
{xget_preload}{payload}finalize:
{load_ctr0}{saes_tagks}{faes_tagks}{tag_xor}{compare}{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        zero_mac = op("XOR_2_2"),
        cbc_preload = CBC_PRELOAD,
        auth = cbc_loop("auth_loop", "s2", "s3"),
        xget_preload = CBC_PRELOAD_XGET,
        payload = cbc_loop("pay_loop", "s0", "s1"),
        load_ctr0 = op("LOAD3"),
        saes_tagks = op("SAES3"),
        faes_tagks = op("FAES1"),
        tag_xor = op("XOR_2_1"),
        compare = tag_compare_and_result(),
        epilogue = EPILOGUE,
    )
}

fn ctr_source() -> String {
    // Plain CTR (SP 800-38A) starts the keystream at CTR0 itself, so the
    // pipeline preamble differs from the CCM half: SAES first, then INC.
    // The stream carries one trailing pad block for the final prefetch.
    format!(
        "{prelude}
start:
{counts}{mask_all}{load_ctr0}{preload}
        LOAD  s4, s0
        OR    s4, s1
        JUMP  Z, fin
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
main_loop:
{mask_last}        OUTPUT s8, CU
        HALT  DISABLE
        OUTPUT s9, CU
        HALT  DISABLE
        OUTPUT sA, CU
        HALT  DISABLE
        OUTPUT sB, CU
        HALT  DISABLE
        OUTPUT sC, CU
        HALT  DISABLE
        OUTPUT sD, CU
        HALT  DISABLE
{loop_bottom}fin:
        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        load_ctr0 = op("LOAD0"),
        preload = CTR_HALF_PRELOAD,
        mask_last = mask_if_last(),
        loop_bottom = count_loop_bottom("main_loop"),
        epilogue = EPILOGUE,
    )
}

fn cbc_mac_source() -> String {
    format!(
        "{prelude}
start:
{counts}{mask_all}{zero_mac}{cbc_preload}{data}{store_mac}        CALL  quiesce
        LOAD  s6, ROK
        OUTPUT s6, RESULT
{epilogue}",
        prelude = prelude(),
        counts = LOAD_COUNTS,
        mask_all = MASK_ALL,
        zero_mac = op("XOR_2_2"),
        cbc_preload = CBC_PRELOAD,
        data = cbc_loop("data_loop", "s0", "s1"),
        store_mac = op("STORE2"),
        epilogue = EPILOGUE,
    )
}

/// Assembly source for one firmware program.
pub fn source(id: FirmwareId) -> String {
    match id {
        FirmwareId::GcmEnc => gcm_enc_source(),
        FirmwareId::GcmDec => gcm_dec_source(),
        FirmwareId::Ccm1Enc => ccm1_enc_source(),
        FirmwareId::Ccm1Dec => ccm1_dec_source(),
        FirmwareId::Ccm2CbcEnc => ccm2_cbc_enc_source(),
        FirmwareId::Ccm2CtrEnc => ccm2_ctr_enc_source(),
        FirmwareId::Ccm2CtrDec => ccm2_ctr_dec_source(),
        FirmwareId::Ccm2CbcDec => ccm2_cbc_dec_source(),
        FirmwareId::Ctr => ctr_source(),
        FirmwareId::CbcMac => cbc_mac_source(),
    }
}

/// All firmware programs pre-assembled — the images the Task Scheduler
/// loads into a core's (shared) instruction memory when retargeting it.
pub struct FirmwareLibrary {
    programs: Vec<(FirmwareId, Program)>,
}

impl Default for FirmwareLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl FirmwareLibrary {
    /// Assembles every program.
    ///
    /// # Panics
    /// Panics if any firmware fails to assemble — a build-time invariant.
    pub fn new() -> Self {
        let programs = FirmwareId::ALL
            .iter()
            .map(|&id| {
                let src = source(id);
                let program = assemble(&src)
                    .unwrap_or_else(|e| panic!("firmware {id:?} failed to assemble: {e}"));
                (id, program)
            })
            .collect();
        FirmwareLibrary { programs }
    }

    /// The assembled image for a program.
    pub fn image(&self, id: FirmwareId) -> &[u32] {
        self.programs
            .iter()
            .find(|(p, _)| *p == id)
            .map(|(_, prog)| prog.image())
            .expect("all firmware ids assembled")
    }

    /// The assembled program (with symbols) for inspection.
    pub fn program(&self, id: FirmwareId) -> &Program {
        self.programs
            .iter()
            .find(|(p, _)| *p == id)
            .map(|(_, prog)| prog)
            .expect("all firmware ids assembled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_firmware_assembles() {
        let lib = FirmwareLibrary::new();
        for id in FirmwareId::ALL {
            let prog = lib.program(id);
            let n = prog.disassemble().len();
            assert!(n > 20, "{id:?} suspiciously small ({n} instructions)");
            assert!(n < 1024, "{id:?} overflows instruction memory");
        }
    }

    #[test]
    fn gcm_loop_fits_the_cycle_budget() {
        // The controller work per GCM main-loop iteration (counter and
        // mask-test interleaved into the pacing slots) must fit the
        // 49-cycle CU budget with margin, or the loop becomes
        // controller-bound and the paper's T_GCMloop = 49 is lost.
        let lib = FirmwareLibrary::new();
        for id in [FirmwareId::GcmEnc, FirmwareId::GcmDec] {
            let prog = lib.program(id);
            let start = prog.label("main_loop").expect("label exists");
            let dis = prog.disassemble();
            let back_target = format!("JUMP NZ, 0x{start:03X}");
            let jump_back = dis
                .iter()
                .filter(|(addr, text)| *addr > start && *text == back_target)
                .map(|(addr, _)| *addr)
                .next()
                .expect("loop bottom exists");
            let body_len = (jump_back - start + 1) as u32;
            let controller_cycles = body_len * mccp_picoblaze::CYCLES_PER_INSTRUCTION;
            assert!(
                controller_cycles <= 49,
                "{id:?} loop body is {body_len} instructions = {controller_cycles} cycles > 49"
            );
        }
    }

    #[test]
    fn sources_reference_only_defined_constants() {
        // The assembler itself catches undefined symbols; this double-checks
        // that each program contains its terminal spin loop and result write.
        for id in FirmwareId::ALL {
            let src = source(id);
            assert!(src.contains("spin:"), "{id:?} missing epilogue");
            assert!(src.contains("OUTPUT s6, RESULT"), "{id:?} never reports");
        }
    }
}
