//! # mccp-core — the Multi-Core Crypto-Processor
//!
//! A cycle-accurate model of the reconfigurable MCCP of Grand et al.
//! (IPDPS 2011): a Task Scheduler, a Cross Bar, a Key Scheduler backed by
//! a write-protected Key Memory, and `n` Cryptographic Cores — each a
//! PicoBlaze-class 8-bit controller driving a Cryptographic Unit through
//! its 8-bit ISA, with a 512 × 32-bit FIFO pair and inter-core ports.
//!
//! * [`mccp::Mccp`] — the top level: the OPEN / CLOSE / ENCRYPT / DECRYPT /
//!   RETRIEVE_DATA / TRANSFER_DONE control protocol, lock-step simulation,
//!   multi-channel concurrency, and the wipe-on-auth-failure defense.
//! * [`firmware`] — the paper's mode firmware (GCM, CCM single- and
//!   two-core, CTR, CBC-MAC) in PicoBlaze assembly, assembled at run time.
//! * [`mod@format`] — the communication controller's packet formatting.
//! * [`model`] — the closed-form performance model that regenerates the
//!   *theoretical* column of Table II.
//! * [`reconfig`] — partial reconfiguration of the Cryptographic Unit
//!   region (Table IV: AES ↔ Whirlpool bitstreams, CompactFlash vs RAM).
//! * [`functional`] — a fast thread-parallel functional mode (one OS
//!   thread per core) for wall-clock benchmarking; bit-identical output,
//!   no cycle accounting.
//!
//! ```
//! use mccp_core::{Mccp, MccpConfig};
//! use mccp_core::protocol::{Algorithm, KeyId};
//!
//! let mut mccp = Mccp::new(MccpConfig::default());
//! mccp.key_memory_mut().store(KeyId(1), &[0u8; 16]);
//! let ch = mccp.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
//! let pkt = mccp.encrypt_packet(ch, b"hdr", b"payload", &[7u8; 12]).unwrap();
//! assert_eq!(pkt.ciphertext.len(), 7);
//! assert_eq!(pkt.tag.len(), 16);
//! ```

pub mod backend;
pub mod core_unit;
pub mod crossbar;
mod dispatch;
mod dma;
pub mod fault;
pub mod firmware;
pub mod format;
pub mod functional;
pub mod key;
pub mod mccp;
pub mod model;
pub mod pipeline;
pub mod protocol;
pub mod reconfig;
mod scheduler;
pub mod warmcache;

pub use backend::{ChannelBackend, Completion, CoreHealth, EngineHealth};
pub use fault::{AdversaryKind, AdversaryPlan, FaultKind, FaultPlan, FaultTrigger};
pub use format::{Direction, ProcessedPacket};
pub use functional::FunctionalBackend;
pub use mccp::{DecryptedPacket, EncryptedPacket, Mccp, MccpConfig};
pub use pipeline::{PipelineGraph, PipelineKind, PipelineStage, StageOp};
pub use protocol::{Algorithm, ChannelId, KeyId, MccpError, Mode, RequestId};
pub use reconfig::{PolicyConfig, PolicyEngine};
pub use warmcache::{WarmCache, WarmStats};
