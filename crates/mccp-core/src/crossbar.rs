//! The Cross Bar (paper §III.A): connects the communication controller's
//! single 32-bit data port to the FIFOs of one selected Cryptographic
//! Core at a time. The Task Scheduler programs the selection as part of
//! ENCRYPT/DECRYPT (write side) and RETRIEVE_DATA (read side).

/// Which core (and direction) the external data port is routed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Data port writes into core `n`'s input FIFO.
    WriteTo(usize),
    /// Data port reads from core `n`'s output FIFO.
    ReadFrom(usize),
}

/// The crossbar state.
#[derive(Clone, Debug, Default)]
pub struct CrossBar {
    route: Option<Route>,
    switches: u64,
}

impl CrossBar {
    pub fn new() -> Self {
        Self::default()
    }

    /// Programs the route (Task Scheduler action).
    pub fn select(&mut self, route: Route) {
        self.route = Some(route);
        self.switches += 1;
    }

    /// Disconnects the data port (TRANSFER_DONE).
    pub fn release(&mut self) {
        self.route = None;
    }

    /// The current route.
    pub fn route(&self) -> Option<Route> {
        self.route
    }

    /// Total reprogramming operations (for the architecture report).
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_lifecycle() {
        let mut xb = CrossBar::new();
        assert_eq!(xb.route(), None);
        xb.select(Route::WriteTo(2));
        assert_eq!(xb.route(), Some(Route::WriteTo(2)));
        xb.select(Route::ReadFrom(2));
        assert_eq!(xb.route(), Some(Route::ReadFrom(2)));
        xb.release();
        assert_eq!(xb.route(), None);
        assert_eq!(xb.switches(), 2);
    }
}
