//! The Task Scheduler's simulation half: the per-cycle state machine
//! (key waits, core starts, completion detection), the first-idle core
//! allocation policy (paper §III.C), and the event-driven fast path
//! (`quiescent_horizon` / `skip` and the `run_*` helpers).
//!
//! Split out of the `Mccp` monolith; every method here is an `impl Mccp`
//! block so the public API surface is unchanged.

use crate::core_unit::Personality;
use crate::fault::FaultKind;
use crate::firmware::result_code;
use crate::format::CoreJob;
use crate::format::Direction;
use crate::mccp::Mccp;
use crate::protocol::{ChannelId, MccpError, RequestId};
use mccp_telemetry::Event;

/// One in-flight request's scheduler state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ReqState {
    /// Waiting on the Key Scheduler before the cores start.
    KeyWait(u32),
    Running,
    /// A pipeline request between stages: the next stage's personality has
    /// no idle core yet. Retried every active tick; contributes to the
    /// fast-forward horizon only when an eligible core is idle (the
    /// unblocking events — completions, reconfigurations — all land on
    /// active ticks, so the retry can never be leapt over).
    StageWait,
    /// A Whirlpool pipeline stage's modeled hash countdown; the digest is
    /// already computed (same `mccp-aes` code as the functional engine)
    /// and lands when the countdown expires, `left + 1` ticks out.
    Hashing {
        left: u64,
    },
    /// All cores reported and the output is resident (Data Available).
    Done {
        auth_ok: bool,
    },
    /// A detected fault or the watchdog terminated the request; no output
    /// will be produced (RETRIEVE_DATA returns the error).
    Failed {
        error: MccpError,
    },
    Retrieved,
}

pub(crate) struct Request {
    pub(crate) id: RequestId,
    pub(crate) channel: ChannelId,
    pub(crate) algorithm: crate::protocol::Algorithm,
    pub(crate) direction: Direction,
    /// Core indices, in pair order (left first).
    pub(crate) cores: Vec<usize>,
    pub(crate) producing_core: usize,
    pub(crate) payload_len: usize,
    pub(crate) tag_len: usize,
    pub(crate) expected_output: usize,
    /// Pending input bytes per core (streamed one word/cycle, modeling the
    /// 32-bit data bus).
    pub(crate) pending_input: Vec<crate::dma::PendingInput>,
    /// Firmware/params to load once the key is ready.
    pub(crate) jobs: Vec<(usize, CoreJob)>,
    /// Progressively drained output (only for oversize streaming requests).
    pub(crate) collected: Vec<u8>,
    pub(crate) streaming: bool,
    pub(crate) state: ReqState,
    pub(crate) start_cycle: u64,
    pub(crate) done_cycle: Option<u64>,
    pub(crate) signaled: bool,
    /// Watchdog deadline (absolute cycle); `None` when the watchdog is
    /// disarmed.
    pub(crate) deadline: Option<u64>,
    /// 1-based packet ordinal within the request's channel.
    pub(crate) sequence: u64,
    /// Pipeline-graph progress for multi-stage requests (`None` for the
    /// classic single-transform requests).
    pub(crate) pipeline: Option<crate::pipeline::PipelinePlan>,
    /// Key epoch the submission was accepted under: the completion is
    /// tagged with it, and a rekey never touches an in-flight request.
    pub(crate) epoch: u32,
    /// The session key the request was bound to at submission — the
    /// reference that keeps a retired key resident until the last
    /// old-epoch packet drains.
    pub(crate) key: crate::protocol::KeyId,
}

impl Mccp {
    /// Finds the first idle core with the right personality (the paper's
    /// dispatch policy, §III.C).
    pub(crate) fn first_idle(&self, personality: Personality) -> Option<usize> {
        self.cores
            .iter()
            .position(|c| c.is_idle() && c.personality() == personality)
    }

    /// Finds an idle core for a pipeline stage, preferring one *different*
    /// from the previous stage's core (the inter-core transfer is the
    /// point of the pipeline; only a pool with a single matching core
    /// falls back to reusing it).
    pub(crate) fn idle_for_stage(
        &self,
        personality: Personality,
        avoid: Option<usize>,
    ) -> Option<usize> {
        let mut fallback = None;
        for (i, c) in self.cores.iter().enumerate() {
            if !c.is_idle() || c.personality() != personality {
                continue;
            }
            if Some(i) != avoid {
                return Some(i);
            }
            fallback = Some(i);
        }
        fallback
    }

    /// True when a stage-waiting pipeline request could start now.
    pub(crate) fn stage_core_ready(&self, req: &Request) -> bool {
        let Some(plan) = &req.pipeline else {
            return false;
        };
        let stage = &plan.pipeline.stages[plan.current];
        self.idle_for_stage(stage.personality(), plan.prev_core)
            .is_some()
    }

    /// Finds an adjacent idle pair `(i, i+1 mod n)` for two-core CCM.
    pub(crate) fn idle_pair(&self, personality: Personality) -> Option<usize> {
        let n = self.cores.len();
        if n < 2 {
            return None;
        }
        (0..n).find(|&i| {
            let j = (i + 1) % n;
            self.cores[i].is_idle()
                && self.cores[j].is_idle()
                && self.cores[i].personality() == personality
                && self.cores[j].personality() == personality
        })
    }

    /// Applies one scheduled fault to the datapath, emitting the
    /// `FaultInjected` event. Shard-kill entries are cluster-level and
    /// ignored here.
    pub(crate) fn apply_fault(&mut self, kind: FaultKind) {
        let Some(core) = kind.target_core() else {
            return;
        };
        if core >= self.cores.len() {
            return;
        }
        if let Some(f) = &mut self.faults {
            f.injected += 1;
        }
        let cycle = self.cycle;
        let label = kind.label();
        self.telemetry.emit_with(cycle, || Event::FaultInjected {
            fault: label.to_string(),
            core,
        });
        match kind {
            FaultKind::WedgeCore { core } => self.cores[core].wedge(),
            FaultKind::StallCore { core, cycles } => self.cores[core].stall(cycles),
            FaultKind::FlipFifoBit { core, output, bit } => {
                let fifo = if output {
                    &mut self.cores[core].output
                } else {
                    &mut self.cores[core].input
                };
                // An SEU in the FIFO RAM: hits the word at the head of the
                // queue; harmless when nothing is queued.
                fifo.corrupt_word(0, bit);
            }
            FaultKind::CorruptKeyCache { core } => {
                self.cores[core].key_cache.corrupt();
            }
            FaultKind::DropDmaWord { core } => self.pending_dma_drops.push(core),
            FaultKind::KillShard { .. } => {}
        }
    }

    /// Terminates a request on a detected fault: containment wipes (no
    /// possibly-corrupt bytes leave the cores), quarantine for permanent
    /// faults, telemetry attribution, and the Data Available interrupt so
    /// pollers observe the failure.
    pub(crate) fn fail_request(&mut self, id: RequestId, error: MccpError, detected_core: usize) {
        let cycle = self.cycle;
        let Some(req) = self.requests.get_mut(&id.0) else {
            return;
        };
        let cores = req.cores.clone();
        let request = req.id.0;
        let cycles = cycle - req.start_cycle;
        req.state = ReqState::Failed { error };
        req.done_cycle = Some(cycle);
        req.collected.clear();
        self.telemetry.emit_with(cycle, || Event::FaultDetected {
            request,
            core: detected_core,
            error: error.to_string(),
        });
        // Transient integrity faults don't condemn the core; a wedged or
        // unresponsive core is fenced off until a hard reset.
        let quarantine = matches!(error, MccpError::CoreFault | MccpError::Deadline);
        for &c in &cores {
            self.cores[c].input.wipe();
            self.cores[c].output.wipe();
            if quarantine && !self.cores[c].is_quarantined() {
                self.cores[c].quarantine(cycle);
                self.telemetry
                    .emit_with(cycle, || Event::CoreQuarantined { core: c });
            }
        }
        self.telemetry.emit_with(cycle, || Event::RequestFailed {
            request,
            error: error.to_string(),
            cycles,
        });
        self.data_available.push_back(id);
    }

    /// Advances the whole MCCP one clock cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
        self.key_scheduler.tick();

        // Fault plane: fire every schedule entry due at this cycle.
        if self.faults.is_some() {
            let due = match &mut self.faults {
                Some(f) => f.take_due_cycle(self.cycle),
                None => Vec::new(),
            };
            for e in due {
                self.apply_fault(e.kind);
            }
        }

        // Partial-reconfiguration engine: finish any bitstream whose load
        // time has elapsed and bring the core up with its new personality.
        for i in 0..self.reconfigs.len() {
            if let Some(p) = self.reconfigs[i].tick() {
                self.cores[i].set_personality(p);
                self.cores[i].finish();
                let started = self.reconfig_started[i];
                let cycle = self.cycle;
                self.stage_reconfig_stall[i] += cycle - started;
                self.telemetry.emit_with(cycle, || Event::ReconfigEnd {
                    core: i,
                    personality: p.name(),
                    cycles: cycle - started,
                });
            }
        }

        // Task-scheduler state machine: start cores whose key is ready,
        // count down modeled hash stages, and retry pipeline stages that
        // are waiting for a core with the right personality.
        let cycle = self.cycle;
        let mut stage_retry = Vec::new();
        let mut hash_done = Vec::new();
        for req in self.requests.values_mut() {
            match req.state {
                ReqState::KeyWait(left) => {
                    if left == 0 {
                        for (core, job) in &req.jobs {
                            let image = self.firmware.image(job.firmware);
                            self.cores[*core].start(job.firmware, image, job.params);
                            let (core, firmware, request) = (*core, job.firmware, req.id.0);
                            self.telemetry.emit_with(cycle, || Event::CoreStarted {
                                request,
                                core,
                                firmware: firmware.name(),
                            });
                        }
                        req.state = ReqState::Running;
                    } else {
                        req.state = ReqState::KeyWait(left - 1);
                    }
                }
                ReqState::StageWait => stage_retry.push(req.id),
                ReqState::Hashing { left } => {
                    if left == 0 {
                        hash_done.push(req.id);
                    } else {
                        req.state = ReqState::Hashing { left: left - 1 };
                    }
                }
                _ => {}
            }
        }
        for id in stage_retry {
            self.try_start_stage(id);
        }
        for id in hash_done {
            self.finish_pipeline(id);
        }

        // Communication-controller DMA: one 32-bit word per core per cycle.
        self.dma_cycle();

        // Tick every core with its mailboxes.
        let n = self.cores.len();
        for i in 0..n {
            let li = (i + n - 1) % n;
            if li == i {
                // Single-core MCCP: no inter-core ports.
                let mut dummy = None;
                let mut dummy2 = None;
                self.cores[i].tick(&mut dummy, &mut dummy2);
            } else {
                let mut from_left = self.mailboxes[li].take();
                let mut to_right = self.mailboxes[i].take();
                self.cores[i].tick(&mut from_left, &mut to_right);
                self.mailboxes[li] = from_left;
                self.mailboxes[i] = to_right;
            }
        }

        // Fault detection and watchdog containment. Only runs when a plan
        // or the watchdog is armed, so the unfaulted path is untouched.
        if self.faults.is_some() || self.watchdog_margin.is_some() {
            let mut failures: Vec<(RequestId, MccpError, usize)> = Vec::new();
            for req in self.requests.values() {
                if !matches!(
                    req.state,
                    ReqState::KeyWait(_)
                        | ReqState::Running
                        | ReqState::StageWait
                        | ReqState::Hashing { .. }
                ) {
                    continue;
                }
                if let Some(&c) = req.cores.iter().find(|&&c| self.cores[c].is_faulted()) {
                    failures.push((req.id, MccpError::CoreFault, c));
                } else if let Some(d) = req.deadline {
                    if self.cycle > d {
                        failures.push((req.id, MccpError::Deadline, req.producing_core));
                    }
                }
            }
            for (id, error, core) in failures {
                self.fail_request(id, error, core);
            }
        }

        // Completion detection.
        let mut newly_done = Vec::new();
        let mut stage_complete = Vec::new();
        let mut integrity_failures: Vec<(RequestId, usize)> = Vec::new();
        for req in self.requests.values_mut() {
            if req.state != ReqState::Running {
                continue;
            }
            let all_reported = req.cores.iter().all(|&c| self.cores[c].result().is_some());
            if !all_reported {
                continue;
            }
            // FIFO parity: a corrupted word anywhere in the datapath means
            // the bytes cannot be trusted — fail instead of handing out
            // silently wrong output (or a bogus auth verdict).
            if let Some(&bad) = req.cores.iter().find(|&&c| {
                self.cores[c].input.parity_error() || self.cores[c].output.parity_error()
            }) {
                integrity_failures.push((req.id, bad));
                continue;
            }
            let auth_ok = req
                .cores
                .iter()
                .all(|&c| self.cores[c].result() == Some(result_code::OK));
            // On auth failure the firmware has already wiped the output
            // FIFO, so the residency check only applies to the OK path.
            let resident = if req.streaming {
                req.collected.len() + self.cores[req.producing_core].output.len() * 4
                    >= req.expected_output
            } else {
                self.cores[req.producing_core].output.len() * 4 >= req.expected_output
            };
            if auth_ok && !resident {
                continue;
            }
            // A completed pipeline stage hands off to the next stage
            // instead of terminating the request (the final stage ends the
            // pipeline inside `advance_pipeline`).
            if req.pipeline.is_some() && auth_ok {
                stage_complete.push(req.id);
                continue;
            }
            if !auth_ok {
                // The paper's defense: reinitialize the output FIFO(s) so
                // no unauthenticated plaintext can be read out.
                for &c in &req.cores {
                    self.cores[c].output.wipe();
                }
                req.collected.clear();
                let (request, channel, sequence) = (req.id.0, req.channel.0, req.sequence);
                self.telemetry.emit_with(cycle, || Event::AuthFailWipe {
                    request,
                    channel,
                    sequence,
                });
            }
            let (request, cycles) = (req.id.0, self.cycle - req.start_cycle);
            self.telemetry.emit_with(cycle, || Event::RequestCompleted {
                request,
                auth_ok,
                cycles,
            });
            req.state = ReqState::Done { auth_ok };
            req.done_cycle = Some(self.cycle);
            newly_done.push(req.id);
        }
        for id in newly_done {
            self.data_available.push_back(id);
        }
        for id in stage_complete {
            self.advance_pipeline(id);
        }
        for (id, core) in integrity_failures {
            self.fail_request(id, MccpError::DataIntegrity, core);
        }

        // High-water FIFO occupancy, sampled after every datapath update
        // (allocation-free; published as gauges at snapshot time).
        if self.telemetry.is_enabled() {
            for i in 0..n {
                self.telemetry.observe_fifo_levels(
                    i,
                    self.cores[i].input.len(),
                    self.cores[i].output.len(),
                );
            }
        }
    }

    /// Conservative event-driven horizon: the number of upcoming cycles
    /// guaranteed to be pure countdown for *every* component, i.e. cycles
    /// [`skip`](Self::skip) may leap over without changing any observable
    /// state (outputs, cycle stamps, telemetry). `0` means the next cycle
    /// is (or may be) active and must be simulated with [`tick`](Self::tick);
    /// `u64::MAX` means nothing bounds the leap (the machine is idle).
    ///
    /// The rules, component by component:
    /// - a reconfiguration countdown with `left` cycles remaining
    ///   contributes `left` (the swap lands on tick `left + 1`);
    /// - a request in KeyWait(`left`) contributes `left` (cores start on
    ///   tick `left + 1`);
    /// - an upload stream with words left and FIFO space is active (`0`);
    ///   stalled on a full FIFO it contributes nothing — the FIFO cannot
    ///   drain while its core is quiescent — except that the first stalled
    ///   cycle emits the `FifoFull` edge and is therefore active;
    /// - a streaming request with resident output words drains one word
    ///   per cycle (`0`);
    /// - each core reports its own horizon (engine countdowns, staged-op
    ///   readiness, controller sleep/wake) given the frozen mailbox state;
    /// - the Key Scheduler's saturating countdown has no observable
    ///   zero-crossing and never bounds the horizon.
    pub fn quiescent_horizon(&self) -> u64 {
        let mut h = u64::MAX;
        // Armed fault plane: the leap must land at (or before) the cycle
        // *preceding* the next trigger — tick() increments the clock first
        // and then fires entries, so the trigger cycle itself is active.
        if let Some(f) = &self.faults {
            if let Some(t) = f.next_cycle_trigger() {
                if t <= self.cycle {
                    return 0;
                }
                h = h.min(t - 1 - self.cycle);
            }
        }
        for rc in &self.reconfigs {
            h = h.min(rc.quiescent_for());
        }
        for req in self.requests.values() {
            match req.state {
                ReqState::KeyWait(left) => h = h.min(left as u64),
                ReqState::Running => {}
                // A hash countdown is pure decrement, like KeyWait.
                ReqState::Hashing { left } => h = h.min(left),
                // A stage waiting for a core is active the moment an
                // eligible core is idle; while none is, the unblocking
                // event (a completion or reconfiguration elsewhere) is
                // itself horizon-bounded, so the wait contributes nothing.
                ReqState::StageWait => {
                    if self.stage_core_ready(req) {
                        return 0;
                    }
                }
                _ => continue,
            }
            // Watchdog: the deadline check fires on the tick that crosses
            // it, so a leap may reach the deadline cycle but not pass it.
            if let Some(d) = req.deadline {
                h = h.min(d.saturating_sub(self.cycle));
            }
            if !self.dma_is_quiescent(req) {
                return 0;
            }
        }
        if h == 0 {
            return 0;
        }
        let n = self.cores.len();
        for (i, core) in self.cores.iter().enumerate() {
            let from_left_full = n > 1 && self.mailboxes[(i + n - 1) % n].is_some();
            let to_right_full = n > 1 && self.mailboxes[i].is_some();
            h = h.min(core.quiescent_for(from_left_full, to_right_full));
            if h == 0 {
                return 0;
            }
        }
        h
    }

    /// Advances `n` cycles at once; only valid for
    /// `n <= quiescent_horizon()`. Equivalent to `n` calls to
    /// [`tick`](Self::tick): countdowns decrement in bulk, the per-cycle
    /// DMA-backpressure counter advances for streams stalled on a full
    /// FIFO, and everything else — by the horizon contract — is frozen.
    pub fn skip(&mut self, n: u64) {
        debug_assert!(n <= self.quiescent_horizon());
        if n == 0 {
            return;
        }
        self.cycle += n;
        self.key_scheduler.skip(n);
        for rc in &mut self.reconfigs {
            rc.skip(n);
        }
        for req in self.requests.values_mut() {
            match req.state {
                ReqState::KeyWait(left) => req.state = ReqState::KeyWait(left - n as u32),
                ReqState::Hashing { left } => req.state = ReqState::Hashing { left: left - n },
                _ => {}
            }
        }
        self.dma_skip(n);
        for core in &mut self.cores {
            core.skip(n);
        }
    }

    /// Advances the simulation to an absolute cycle, leaping over
    /// quiescent spans when fast-forward is enabled.
    pub fn run_until(&mut self, target: u64) {
        while self.cycle < target {
            let span = if self.fast_forward {
                self.quiescent_horizon().min(target - self.cycle)
            } else {
                0
            };
            if span == 0 {
                self.tick();
            } else {
                self.skip(span);
            }
        }
    }

    /// Runs until every submitted request has reached Data Available.
    /// Returns the cycles elapsed.
    ///
    /// # Panics
    /// Panics if a core faults or the guard expires (firmware bug).
    pub fn run_to_completion(&mut self, max_cycles: u64) -> u64 {
        let start = self.cycle;
        while self.requests.values().any(|r| {
            matches!(
                r.state,
                ReqState::KeyWait(_)
                    | ReqState::Running
                    | ReqState::StageWait
                    | ReqState::Hashing { .. }
            )
        }) {
            assert!(
                self.cycle - start < max_cycles,
                "requests wedged after {max_cycles} cycles"
            );
            let span = if self.fast_forward {
                self.quiescent_horizon()
                    .min(max_cycles - (self.cycle - start))
            } else {
                0
            };
            if span == 0 {
                self.tick();
                for (c, core) in self.cores.iter().enumerate() {
                    // Quarantined cores are expected casualties of the
                    // fault plane, not firmware bugs.
                    assert!(
                        !core.is_faulted() || core.is_quarantined(),
                        "core {c} faulted running {:?}",
                        core.firmware()
                    );
                }
            } else {
                self.skip(span);
            }
        }
        self.cycle - start
    }

    /// Runs the simulation until the request reaches Data Available.
    /// Returns the request latency in cycles.
    ///
    /// Uses the event-driven fast path when enabled: quiescent spans
    /// (engine countdowns, key waits, reconfiguration loads) are leapt in
    /// one step; active cycles are simulated exactly. Faults can only
    /// arise on active cycles, so the fault check runs after each tick.
    ///
    /// # Panics
    /// Panics if a core faults or the guard expires (firmware bug).
    pub fn run_until_done(&mut self, id: RequestId, max_cycles: u64) -> u64 {
        let start = self.cycle;
        loop {
            let state = self.requests.get(&id.0).expect("request exists").state;
            if matches!(state, ReqState::Done { .. } | ReqState::Failed { .. }) {
                let req = &self.requests[&id.0];
                return req.done_cycle.expect("done") - req.start_cycle;
            }
            assert!(
                self.cycle - start < max_cycles,
                "request {id:?} wedged after {max_cycles} cycles"
            );
            let span = if self.fast_forward {
                self.quiescent_horizon()
                    .min(max_cycles - (self.cycle - start))
            } else {
                0
            };
            if span > 0 {
                self.skip(span);
                continue;
            }
            self.tick();
            if let Some(req) = self.requests.get(&id.0) {
                for &c in &req.cores {
                    assert!(
                        !self.cores[c].is_faulted() || self.cores[c].is_quarantined(),
                        "core {c} faulted running {:?}",
                        self.cores[c].firmware()
                    );
                }
            }
        }
    }

    /// The Data Available interrupt queue.
    pub fn poll_data_available(&mut self) -> Option<RequestId> {
        while let Some(id) = self.data_available.front().copied() {
            let fresh = self
                .requests
                .get(&id.0)
                .map(|r| !r.signaled)
                .unwrap_or(false);
            if fresh {
                if let Some(r) = self.requests.get_mut(&id.0) {
                    r.signaled = true;
                }
                return Some(id);
            }
            self.data_available.pop_front();
        }
        None
    }
}
