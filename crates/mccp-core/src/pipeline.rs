//! Per-channel **pipeline graphs**: a channel's transform expressed as an
//! ordered chain of crypto stages mapped onto distinct cores (Nawinne et
//! al.'s product-cipher pipeline, generalized to the MCCP's reconfigurable
//! core pool).
//!
//! The paper's two-core CCM schedule is the degenerate case: CBC-MAC on
//! the left core feeding CTR on the right over the inter-core port. A
//! [`PipelineGraph`] generalizes that shape to arbitrary 1–3 stage chains
//! — e.g. AES-CTR → Whirlpool-HMAC, or Twofish-CTR → AES-CMAC — where
//! each stage runs on a core whose reconfigurable region hosts the
//! matching personality (AES, Twofish or Whirlpool), and intermediate
//! bytes move core-to-core through the crossbar/FIFO fabric.
//!
//! Two invariants make the graphs safe to run on either engine:
//!
//! * **Stage semantics are engine-neutral.** A `Ctr` stage replaces the
//!   body with its keystream XOR; a MAC stage (`CbcMac`,
//!   `WhirlpoolHmac`) computes the tag over the body as it stands and
//!   must be the final stage. The delivered packet is the body after the
//!   last `Ctr` stage plus the final MAC tag (if any) — identical bytes
//!   on the cycle-accurate and functional engines, enforced by
//!   `tests/pipeline_equivalence.rs`.
//! * **Per-stage counter separation.** Every `Ctr` stage derives its
//!   counter block from the submitted IV XOR the stage index
//!   ([`stage_counter`]), so a two-cipher cascade never feeds the same
//!   counter stream to both stages.

use crate::core_unit::Personality;
use crate::protocol::{Algorithm, CipherSel, KeyId, MccpError};
use mccp_aes::modes::{cbc_mac, ctr_xcrypt};
use mccp_aes::twofish::Twofish;
use mccp_aes::whirlpool::Whirlpool;
use mccp_aes::Aes;

/// What one pipeline stage computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageOp {
    /// Counter-mode encryption: body → body (same length). Runs on an
    /// AES- or Twofish-configured core.
    Ctr,
    /// CBC-MAC over the current body: produces the tag; final stage only.
    CbcMac,
    /// HMAC-Whirlpool over the current body: produces the tag; final
    /// stage only. Runs on a Whirlpool-configured core — the personality
    /// only a live partial reconfiguration can provide.
    WhirlpoolHmac,
}

impl StageOp {
    /// True for tag-producing (final-position-only) stages.
    pub fn is_mac(self) -> bool {
        matches!(self, StageOp::CbcMac | StageOp::WhirlpoolHmac)
    }
}

/// One stage of a pipeline graph: the operation, the block cipher the
/// stage's core must host, and the stage's own session key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineStage {
    pub op: StageOp,
    /// Ignored for `WhirlpoolHmac` (the hash core has no block cipher).
    pub cipher: CipherSel,
    pub key: Vec<u8>,
}

impl PipelineStage {
    /// The core personality this stage dispatches to.
    pub fn personality(&self) -> Personality {
        match self.op {
            StageOp::WhirlpoolHmac => Personality::WhirlpoolUnit,
            _ => match self.cipher {
                CipherSel::Aes => Personality::AesUnit,
                CipherSel::Twofish => Personality::TwofishUnit,
            },
        }
    }

    /// The mode×key-size algorithm the stage's firmware runs (the
    /// `Aes*` names select the *mode*; `cipher` selects the block cipher,
    /// exactly as in [`Mccp::open_with_cipher`](crate::Mccp::open_with_cipher)).
    pub fn algorithm(&self) -> Result<Algorithm, MccpError> {
        let alg = match (self.op, self.key.len()) {
            (StageOp::Ctr, 16) => Algorithm::AesCtr128,
            (StageOp::Ctr, 24) => Algorithm::AesCtr192,
            (StageOp::Ctr, 32) => Algorithm::AesCtr256,
            (StageOp::CbcMac, 16) => Algorithm::AesCbcMac128,
            (StageOp::CbcMac, 24) => Algorithm::AesCbcMac192,
            (StageOp::CbcMac, 32) => Algorithm::AesCbcMac256,
            // Whirlpool keys are free-form (the HMAC construction hashes
            // them into a 64-byte block); report the MAC-mode grid entry
            // closest in spirit for bookkeeping.
            (StageOp::WhirlpoolHmac, _) => Algorithm::AesCbcMac128,
            _ => return Err(MccpError::BadKey),
        };
        Ok(alg)
    }
}

/// The shape of a pipeline graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineKind {
    /// An ordered chain of 1–3 stages.
    Stages(Vec<PipelineStage>),
    /// The paper's two-core CCM schedule re-expressed as a 2-stage graph
    /// (CBC-MAC left core → CTR right core over the inter-core port).
    /// Lowered to the existing concurrent two-core schedule, so it is
    /// byte- and cycle-identical to `MccpConfig::ccm_two_core`.
    FusedCcm2 { algorithm: Algorithm },
}

/// A per-channel pipeline graph. Keys are carried as bytes; each engine
/// maps them into its own key store when the channel opens (the
/// cycle-accurate engine allocates [`KeyId`]s in the write-protected Key
/// Memory, the functional engine keeps the bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineGraph {
    pub kind: PipelineKind,
    /// Tag length in bytes for the final MAC stage (≤ 16 for CBC-MAC,
    /// ≤ 64 for HMAC-Whirlpool); the CCM tag length for `FusedCcm2`.
    pub tag_len: usize,
    /// Session key for the `FusedCcm2` form (stage chains carry keys per
    /// stage instead).
    fused_key: Option<Vec<u8>>,
}

impl PipelineGraph {
    /// A plain stage chain.
    pub fn new(stages: Vec<PipelineStage>, tag_len: usize) -> Self {
        PipelineGraph {
            kind: PipelineKind::Stages(stages),
            tag_len,
            fused_key: None,
        }
    }

    /// The two-core CCM schedule as a pipeline graph.
    pub fn two_core_ccm(algorithm: Algorithm, key: Vec<u8>, tag_len: usize) -> Self {
        PipelineGraph {
            kind: PipelineKind::FusedCcm2 { algorithm },
            tag_len,
            fused_key: Some(key),
        }
    }

    /// Validates the graph: 1–3 stages, MAC stages final-only, legal key
    /// sizes (Twofish stages are fixed at 128-bit keys), tag length in
    /// range for the final stage.
    pub fn validate(&self) -> Result<(), MccpError> {
        match &self.kind {
            PipelineKind::FusedCcm2 { algorithm } => {
                if algorithm.mode() != crate::protocol::Mode::Ccm {
                    return Err(MccpError::BadInstruction);
                }
                let key = self.fused_key.as_ref().ok_or(MccpError::BadKey)?;
                if key.len() != algorithm.key_size().key_bytes() {
                    return Err(MccpError::BadKey);
                }
                if self.tag_len == 0 || self.tag_len > 16 {
                    return Err(MccpError::BadInstruction);
                }
            }
            PipelineKind::Stages(stages) => {
                if stages.is_empty() || stages.len() > 3 {
                    return Err(MccpError::BadInstruction);
                }
                for (i, st) in stages.iter().enumerate() {
                    if st.op.is_mac() && i + 1 != stages.len() {
                        return Err(MccpError::BadInstruction);
                    }
                    match st.op {
                        StageOp::WhirlpoolHmac => {
                            if st.key.is_empty() || st.key.len() > 64 {
                                return Err(MccpError::BadKey);
                            }
                            if self.tag_len == 0 || self.tag_len > 64 {
                                return Err(MccpError::BadInstruction);
                            }
                        }
                        _ => {
                            st.algorithm()?;
                            if st.cipher == CipherSel::Twofish && st.key.len() != 16 {
                                return Err(MccpError::BadKey);
                            }
                            if st.op == StageOp::CbcMac && (self.tag_len == 0 || self.tag_len > 16)
                            {
                                return Err(MccpError::BadInstruction);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The stage chain (empty for `FusedCcm2`, which lowers to the legacy
    /// two-core schedule instead of the stage machinery).
    pub fn stages(&self) -> &[PipelineStage] {
        match &self.kind {
            PipelineKind::Stages(s) => s,
            PipelineKind::FusedCcm2 { .. } => &[],
        }
    }

    /// True when any stage needs a 16-byte CTR counter block as the IV.
    pub fn needs_iv(&self) -> bool {
        self.stages().iter().any(|s| s.op == StageOp::Ctr)
    }

    /// The distinct core personalities the graph dispatches to.
    pub fn personalities(&self) -> Vec<Personality> {
        let mut ps: Vec<Personality> = self.stages().iter().map(|s| s.personality()).collect();
        ps.dedup();
        ps
    }

    /// Key bytes for the fused two-core CCM form.
    pub fn fused_key(&self) -> Option<&[u8]> {
        self.fused_key.as_deref()
    }
}

/// Modeled HMAC-Whirlpool throughput: cycles per 512-bit compression on
/// the Whirlpool core (10 rounds of the W block cipher, pipelined across
/// the 8×8 state — same order as the paper's AES round timing), plus a
/// fixed init/finalize overhead per message.
pub const WHIRLPOOL_BLOCK_CYCLES: u64 = 58;
/// Fixed per-message overhead (state init, padding, digest drain).
pub const WHIRLPOOL_FIXED_CYCLES: u64 = 64;

/// Modeled cycle cost of an HMAC-Whirlpool stage over `body_len` bytes.
/// HMAC runs two hash passes: inner over `block ‖ body`, outer over
/// `block ‖ inner-digest` (the 64-byte Whirlpool block size).
pub fn whirlpool_hmac_cycles(body_len: usize) -> u64 {
    let inner_blocks = padded_whirlpool_blocks(64 + body_len);
    let outer_blocks = padded_whirlpool_blocks(64 + 64);
    (inner_blocks + outer_blocks) * WHIRLPOOL_BLOCK_CYCLES + WHIRLPOOL_FIXED_CYCLES
}

/// 512-bit compression invocations for a `len`-byte message after
/// Whirlpool padding (0x80 marker + 256-bit length field).
fn padded_whirlpool_blocks(len: usize) -> u64 {
    ((len + 1 + 32).div_ceil(64)) as u64
}

/// HMAC-Whirlpool (RFC 2104 with the 64-byte Whirlpool block size):
/// `H((k ⊕ opad) ‖ H((k ⊕ ipad) ‖ m))`. Keys longer than a block are
/// hashed first. Shared by both engines, so the bytes match by
/// construction.
pub fn whirlpool_hmac(key: &[u8], msg: &[u8]) -> [u8; 64] {
    let mut block = [0u8; 64];
    if key.len() > 64 {
        block.copy_from_slice(&mccp_aes::whirlpool::whirlpool(key));
    } else {
        block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Whirlpool::new();
    let ipad: Vec<u8> = block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Whirlpool::new();
    let opad: Vec<u8> = block.iter().map(|b| b ^ 0x5C).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// The counter block a `Ctr` stage at `stage` index derives from the
/// submitted IV: the IV with the stage index folded into the first byte,
/// so cascaded CTR stages never share a keystream.
pub fn stage_counter(iv: &[u8], stage: usize) -> [u8; 16] {
    let mut ctr = [0u8; 16];
    ctr.copy_from_slice(&iv[..16]);
    ctr[0] ^= stage as u8;
    ctr
}

/// Runs a stage chain functionally (the reference datapath both engines
/// agree with): returns `(body-after-last-Ctr-stage, final-MAC-tag)`.
pub fn run_stages_functional(
    stages: &[PipelineStage],
    iv: &[u8],
    body: &[u8],
    tag_len: usize,
) -> Result<(Vec<u8>, Option<Vec<u8>>), MccpError> {
    let mut cur = body.to_vec();
    let mut out_body = Vec::new();
    let mut tag = None;
    for (i, st) in stages.iter().enumerate() {
        match st.op {
            StageOp::Ctr => {
                if iv.len() < 16 {
                    return Err(MccpError::BadInstruction);
                }
                let ctr = stage_counter(iv, i);
                let r = match st.cipher {
                    CipherSel::Aes => ctr_xcrypt(&Aes::new(&st.key), &ctr, &mut cur),
                    CipherSel::Twofish => ctr_xcrypt(&Twofish::new(&st.key), &ctr, &mut cur),
                };
                r.map_err(|_| MccpError::BadInstruction)?;
                out_body = cur.clone();
            }
            StageOp::CbcMac => {
                let mac = match st.cipher {
                    CipherSel::Aes => cbc_mac(&Aes::new(&st.key), &cur, tag_len),
                    CipherSel::Twofish => cbc_mac(&Twofish::new(&st.key), &cur, tag_len),
                };
                tag = Some(mac.map_err(|_| MccpError::BadInstruction)?);
            }
            StageOp::WhirlpoolHmac => {
                tag = Some(whirlpool_hmac(&st.key, &cur)[..tag_len].to_vec());
            }
        }
    }
    Ok((out_body, tag))
}

/// A stage resolved against the cycle-accurate engine's key stores.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedStage {
    pub(crate) op: StageOp,
    pub(crate) cipher: CipherSel,
    /// Key Memory slot for CU stages; unused (0) for Whirlpool stages.
    pub(crate) key: KeyId,
    /// Raw key bytes, needed at hash time by Whirlpool stages.
    pub(crate) key_bytes: Vec<u8>,
    pub(crate) algorithm: Algorithm,
}

impl ResolvedStage {
    pub(crate) fn personality(&self) -> Personality {
        match self.op {
            StageOp::WhirlpoolHmac => Personality::WhirlpoolUnit,
            _ => match self.cipher {
                CipherSel::Aes => Personality::AesUnit,
                CipherSel::Twofish => Personality::TwofishUnit,
            },
        }
    }
}

/// A pipeline channel's resolved graph, shared by its requests.
#[derive(Clone, Debug)]
pub(crate) struct ResolvedPipeline {
    pub(crate) stages: Vec<ResolvedStage>,
    pub(crate) tag_len: usize,
}

/// One in-flight pipeline request's progress.
#[derive(Clone, Debug)]
pub(crate) struct PipelinePlan {
    pub(crate) pipeline: std::sync::Arc<ResolvedPipeline>,
    /// Index of the stage currently running (or waiting to start).
    pub(crate) current: usize,
    /// The submitted IV (CTR stages derive their counters from it).
    pub(crate) iv: Vec<u8>,
    /// The body as it stands entering the current stage.
    pub(crate) body: Vec<u8>,
    /// The body after the last completed `Ctr` stage (the delivered
    /// ciphertext).
    pub(crate) out_body: Vec<u8>,
    /// The final MAC tag, once computed.
    pub(crate) tag: Option<Vec<u8>>,
    /// The producing core of the previously completed stage (the next
    /// stage prefers a *different* core — the inter-core transfer is the
    /// point of the pipeline).
    pub(crate) prev_core: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr(cipher: CipherSel) -> PipelineStage {
        PipelineStage {
            op: StageOp::Ctr,
            cipher,
            key: vec![0x11; 16],
        }
    }

    #[test]
    fn validation_rules() {
        // MAC stages only in final position.
        let bad = PipelineGraph::new(
            vec![
                PipelineStage {
                    op: StageOp::CbcMac,
                    cipher: CipherSel::Aes,
                    key: vec![1; 16],
                },
                ctr(CipherSel::Aes),
            ],
            16,
        );
        assert!(bad.validate().is_err());
        // 1–3 stages.
        assert!(PipelineGraph::new(vec![], 16).validate().is_err());
        assert!(PipelineGraph::new(
            vec![
                ctr(CipherSel::Aes),
                ctr(CipherSel::Aes),
                ctr(CipherSel::Aes),
                ctr(CipherSel::Aes)
            ],
            0
        )
        .validate()
        .is_err());
        // Twofish keys are 128-bit.
        let bad_tf = PipelineGraph::new(
            vec![PipelineStage {
                op: StageOp::Ctr,
                cipher: CipherSel::Twofish,
                key: vec![1; 24],
            }],
            0,
        );
        assert!(bad_tf.validate().is_err());
        // The canonical product-cipher chain is accepted.
        let good = PipelineGraph::new(
            vec![
                ctr(CipherSel::Aes),
                PipelineStage {
                    op: StageOp::WhirlpoolHmac,
                    cipher: CipherSel::Aes,
                    key: vec![7; 32],
                },
            ],
            32,
        );
        assert!(good.validate().is_ok());
        assert_eq!(
            good.personalities(),
            vec![Personality::AesUnit, Personality::WhirlpoolUnit]
        );
        assert!(good.needs_iv());
    }

    #[test]
    fn fused_ccm_carries_its_key() {
        let g = PipelineGraph::two_core_ccm(Algorithm::AesCcm128, vec![0x42; 16], 8);
        assert!(g.validate().is_ok());
        assert_eq!(g.fused_key(), Some(&[0x42u8; 16][..]));
        assert!(g.stages().is_empty());
        let bad = PipelineGraph::two_core_ccm(Algorithm::AesGcm128, vec![0x42; 16], 8);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn stage_counters_are_domain_separated() {
        let iv = [0xAA; 16];
        let c0 = stage_counter(&iv, 0);
        let c1 = stage_counter(&iv, 1);
        assert_eq!(c0, iv);
        assert_ne!(c0, c1);
        assert_eq!(&c0[1..], &c1[1..]);
    }

    #[test]
    fn hmac_whirlpool_matches_reference_structure() {
        // Long keys are pre-hashed; the digest differs from the raw-key
        // envelope (structure check, since no external vectors ship).
        let short = whirlpool_hmac(&[1; 16], b"data");
        let long = whirlpool_hmac(&[1; 100], b"data");
        assert_ne!(short, long);
        assert_ne!(
            whirlpool_hmac(&[1; 16], b"data"),
            whirlpool_hmac(&[2; 16], b"data")
        );
        // Deterministic.
        assert_eq!(short, whirlpool_hmac(&[1; 16], b"data"));
    }

    #[test]
    fn whirlpool_cycle_model_scales_with_blocks() {
        let small = whirlpool_hmac_cycles(16);
        let large = whirlpool_hmac_cycles(2048);
        assert!(small >= 3 * WHIRLPOOL_BLOCK_CYCLES);
        assert!(large > small + 30 * WHIRLPOOL_BLOCK_CYCLES);
    }

    #[test]
    fn functional_runner_chains_stages() {
        let stages = vec![
            ctr(CipherSel::Aes),
            PipelineStage {
                op: StageOp::CbcMac,
                cipher: CipherSel::Twofish,
                key: vec![9; 16],
            },
        ];
        let (body, tag) = run_stages_functional(&stages, &[3; 16], &[0x5A; 40], 12).unwrap();
        assert_eq!(body.len(), 40);
        assert_ne!(body, vec![0x5A; 40]);
        assert_eq!(tag.unwrap().len(), 12);
        // MAC-only chain: empty body, tag over the plaintext.
        let mac_only = vec![PipelineStage {
            op: StageOp::WhirlpoolHmac,
            cipher: CipherSel::Aes,
            key: vec![4; 20],
        }];
        let (body, tag) = run_stages_functional(&mac_only, &[], &[1, 2, 3], 64).unwrap();
        assert!(body.is_empty());
        assert_eq!(tag.unwrap().len(), 64);
    }
}
