//! The control-protocol half of the Task Scheduler: channel management
//! (OPEN / REKEY / CLOSE), packet submission with personality-matched
//! core allocation and key-cache handling, output retrieval
//! (RETRIEVE_DATA / TRANSFER_DONE) and partial reconfiguration.
//!
//! Split out of the `Mccp` monolith; every method here is an `impl Mccp`
//! block so the public API surface is unchanged.

use crate::core_unit::Personality;
use crate::crossbar::Route;
use crate::format::{format_request, parse_output, Direction, FormattedRequest, ProcessedPacket};
use crate::mccp::Mccp;
use crate::pipeline::{
    stage_counter, whirlpool_hmac, whirlpool_hmac_cycles, PipelineGraph, PipelineKind,
    PipelinePlan, ResolvedPipeline, ResolvedStage, StageOp,
};
use crate::protocol::{Algorithm, ChannelId, CipherSel, KeyId, MccpError, Mode, RequestId};
use crate::reconfig::{bitstream_for, Bitstream, BitstreamSource, PolicyConfig, PolicyEngine};
use crate::scheduler::{ReqState, Request};
use mccp_telemetry::{Event, FifoPort};
use std::sync::Arc;

/// A live channel binding (algorithm, session key, tag length, cipher).
#[derive(Clone, Debug)]
pub(crate) struct Channel {
    pub(crate) algorithm: Algorithm,
    pub(crate) key: KeyId,
    pub(crate) tag_len: usize,
    /// The block cipher this channel runs on; Twofish channels dispatch
    /// only to cores whose reconfigurable region hosts the Twofish unit.
    pub(crate) cipher: CipherSel,
    /// Multi-stage pipeline graph, for channels opened through
    /// [`Mccp::open_pipeline`].
    pub(crate) pipeline: Option<Arc<ResolvedPipeline>>,
    /// Prefer the two-core CCM schedule on this channel regardless of
    /// `MccpConfig::ccm_two_core` (the `FusedCcm2` pipeline form).
    pub(crate) fused_two_core: bool,
    /// Key epoch: bumped by every REKEY. Submissions are stamped with the
    /// epoch they were accepted under, so in-flight packets finish on the
    /// key they started with while new traffic uses the rotated one.
    pub(crate) epoch: u32,
    /// Cycle the channel's modeled asymmetric establishment completes;
    /// submissions before this horizon are rejected with
    /// [`MccpError::HandshakePending`]. Zero for instant opens.
    pub(crate) ready_at: u64,
}

impl Mccp {
    /// OPEN: binds an algorithm and session key to a new channel.
    pub fn open(&mut self, algorithm: Algorithm, key: KeyId) -> Result<ChannelId, MccpError> {
        self.open_with_tag_len(algorithm, key, self.config.default_tag_len)
    }

    /// OPEN with an explicit tag length (authenticated channels).
    pub fn open_with_tag_len(
        &mut self,
        algorithm: Algorithm,
        key: KeyId,
        tag_len: usize,
    ) -> Result<ChannelId, MccpError> {
        self.open_with_cipher(algorithm, key, tag_len, CipherSel::Aes)
    }

    /// OPEN with an explicit cipher selection (paper §IX: "AES core may be
    /// easily replaced by any other 128-bit block cipher"). Twofish
    /// channels are served only by cores reconfigured to the Twofish unit.
    pub fn open_with_cipher(
        &mut self,
        algorithm: Algorithm,
        key: KeyId,
        tag_len: usize,
        cipher: CipherSel,
    ) -> Result<ChannelId, MccpError> {
        if !self.key_memory.contains(key) {
            return Err(MccpError::BadKey);
        }
        if self.key_memory.key_size(key) != Some(algorithm.key_size()) {
            return Err(MccpError::BadKey);
        }
        let id = (0..=u8::MAX)
            .find(|i| !self.channels.contains_key(i))
            .ok_or(MccpError::NoChannelId)?;
        self.channels.insert(
            id,
            Channel {
                algorithm,
                key,
                tag_len,
                cipher,
                pipeline: None,
                fused_two_core: false,
                epoch: 0,
                ready_at: 0,
            },
        );
        Ok(ChannelId(id))
    }

    /// OPEN with a modeled channel-establishment phase: the platform's
    /// asymmetric unit runs the ECC scalar multiplication for
    /// `handshake_cycles` while the MCCP keeps serving other channels.
    /// Submissions on this channel before the horizon elapses are refused
    /// with [`MccpError::HandshakePending`]; nothing is scheduled onto a
    /// Cryptographic Core for the handshake itself, so live traffic
    /// overlaps it for free.
    pub fn open_with_handshake(
        &mut self,
        algorithm: Algorithm,
        key: KeyId,
        tag_len: usize,
        handshake_cycles: u64,
    ) -> Result<ChannelId, MccpError> {
        let id = self.open_with_cipher(algorithm, key, tag_len, CipherSel::Aes)?;
        if let Some(c) = self.channels.get_mut(&id.0) {
            c.ready_at = self.cycle + handshake_cycles;
        }
        Ok(id)
    }

    /// Cycles left until a channel's establishment completes (0 = ready).
    pub fn handshake_remaining(&self, channel: ChannelId) -> Result<u64, MccpError> {
        let ch = self.channel(channel)?;
        Ok(ch.ready_at.saturating_sub(self.cycle))
    }

    /// The channel's current key epoch (bumped by every rekey).
    pub fn epoch_of(&self, channel: ChannelId) -> Result<u32, MccpError> {
        Ok(self.channel(channel)?.epoch)
    }

    /// OPEN a pipeline channel: the channel's transform is the graph's
    /// ordered stage chain, each stage dispatched to a core hosting the
    /// matching personality, intermediate bytes handed core-to-core. The
    /// `FusedCcm2` form lowers to the legacy two-core CCM schedule and is
    /// byte- and cycle-identical to a `ccm_two_core` channel.
    ///
    /// Stage keys are carried as bytes and stored into free Key Memory
    /// slots here (the main controller's key-load step).
    pub fn open_pipeline(&mut self, graph: &PipelineGraph) -> Result<ChannelId, MccpError> {
        graph.validate()?;
        match &graph.kind {
            PipelineKind::FusedCcm2 { algorithm } => {
                let key = self.alloc_key(graph.fused_key().unwrap_or(&[]))?;
                let ch = self.open_with_cipher(*algorithm, key, graph.tag_len, CipherSel::Aes)?;
                if let Some(c) = self.channels.get_mut(&ch.0) {
                    c.fused_two_core = true;
                }
                Ok(ch)
            }
            PipelineKind::Stages(stages) => {
                let mut resolved = Vec::with_capacity(stages.len());
                for st in stages {
                    // Whirlpool stages hash key bytes directly; CU stages
                    // go through the write-protected Key Memory.
                    let key = if st.op == StageOp::WhirlpoolHmac {
                        KeyId(0)
                    } else {
                        self.alloc_key(&st.key)?
                    };
                    resolved.push(ResolvedStage {
                        op: st.op,
                        cipher: st.cipher,
                        key,
                        key_bytes: st.key.clone(),
                        algorithm: st.algorithm()?,
                    });
                }
                let id = (0..=u8::MAX)
                    .find(|i| !self.channels.contains_key(i))
                    .ok_or(MccpError::NoChannelId)?;
                let first_cu = resolved.iter().find(|s| s.op != StageOp::WhirlpoolHmac);
                self.channels.insert(
                    id,
                    Channel {
                        algorithm: resolved[0].algorithm,
                        key: first_cu.map(|s| s.key).unwrap_or(KeyId(0)),
                        tag_len: graph.tag_len,
                        cipher: first_cu.map(|s| s.cipher).unwrap_or(CipherSel::Aes),
                        pipeline: Some(Arc::new(ResolvedPipeline {
                            stages: resolved,
                            tag_len: graph.tag_len,
                        })),
                        fused_two_core: false,
                        epoch: 0,
                        ready_at: 0,
                    },
                );
                Ok(ChannelId(id))
            }
        }
    }

    /// Stores key bytes into the first free Key Memory slot.
    fn alloc_key(&mut self, bytes: &[u8]) -> Result<KeyId, MccpError> {
        let id = (1..=u8::MAX)
            .map(KeyId)
            .find(|&k| !self.key_memory.contains(k))
            .ok_or(MccpError::BadKey)?;
        self.key_memory.store(id, bytes);
        Ok(id)
    }

    /// Rebinds a live channel to a new session key (rekeying: the main
    /// controller has rotated keys; in-flight requests keep the old key,
    /// subsequent packets use the new one — stale per-core key caches miss
    /// on the new id and re-expand).
    pub fn rekey(&mut self, channel: ChannelId, new_key: KeyId) -> Result<(), MccpError> {
        let algorithm = self.channel(channel)?.algorithm;
        if !self.key_memory.contains(new_key) {
            return Err(MccpError::BadKey);
        }
        if self.key_memory.key_size(new_key) != Some(algorithm.key_size()) {
            return Err(MccpError::BadKey);
        }
        match self.channels.get_mut(&channel.0) {
            Some(c) => {
                c.key = new_key;
                c.epoch += 1;
                Ok(())
            }
            None => Err(MccpError::BadChannel),
        }
    }

    /// Marks a session key for retirement: the Key Memory slot is zeroized
    /// (and any per-core Key Cache expansion of it wiped) as soon as no
    /// live channel and no undrained request references it. Until then the
    /// key stays resident so in-flight packets submitted under the old
    /// epoch finish on the key they started with.
    pub fn retire_key(&mut self, key: KeyId) {
        if !self.retiring_keys.contains(&key) {
            self.retiring_keys.push(key);
        }
        self.reap_retired_keys();
    }

    /// True while a retired key is still awaiting its last old-epoch
    /// completion (observable drain point for tests and the service plane).
    pub fn key_retirement_pending(&self, key: KeyId) -> bool {
        self.retiring_keys.contains(&key)
    }

    /// Erases every retired key whose last reference has drained. Runs at
    /// submission/retirement boundaries only — never from `tick()` — so
    /// the fast-forward cycle identity is untouched.
    pub(crate) fn reap_retired_keys(&mut self) {
        if self.retiring_keys.is_empty() {
            return;
        }
        let retiring = std::mem::take(&mut self.retiring_keys);
        let mut kept = Vec::new();
        for k in retiring {
            let channel_ref = self.channels.values().any(|c| {
                c.key == k
                    || c.pipeline
                        .as_ref()
                        .is_some_and(|pl| pl.stages.iter().any(|s| s.key == k))
            });
            let request_ref = self.requests.values().any(|r| r.key == k);
            if channel_ref || request_ref {
                kept.push(k);
                continue;
            }
            self.key_memory.erase(k);
            for core in &mut self.cores {
                if core.key_cache.cached_id() == Some(k) {
                    core.key_cache.wipe();
                }
            }
        }
        self.retiring_keys = kept;
    }

    /// CLOSE: releases a channel.
    pub fn close(&mut self, channel: ChannelId) -> Result<(), MccpError> {
        if self
            .requests
            .values()
            .any(|r| r.channel == channel && !matches!(r.state, ReqState::Retrieved))
        {
            return Err(MccpError::Busy);
        }
        self.channels
            .remove(&channel.0)
            .map(|_| ())
            .ok_or(MccpError::BadChannel)
    }

    pub(crate) fn channel(&self, id: ChannelId) -> Result<&Channel, MccpError> {
        self.channels.get(&id.0).ok_or(MccpError::BadChannel)
    }

    /// The core personality a channel's cipher requires.
    pub(crate) fn personality_for(cipher: CipherSel) -> Personality {
        match cipher {
            CipherSel::Aes => Personality::AesUnit,
            CipherSel::Twofish => Personality::TwofishUnit,
        }
    }

    /// ENCRYPT/DECRYPT: formats and submits a packet on a channel.
    ///
    /// `iv`: GCM — 12-byte IV; CCM — 7..13-byte nonce; CTR — 16-byte
    /// counter block; CBC-MAC — empty. `tag` is required when decrypting
    /// authenticated modes.
    pub fn submit(
        &mut self,
        channel: ChannelId,
        direction: Direction,
        iv: &[u8],
        aad: &[u8],
        body: &[u8],
        tag: Option<&[u8]>,
    ) -> Result<RequestId, MccpError> {
        let ch = self.channel(channel)?.clone();
        if ch.ready_at > self.cycle {
            return Err(MccpError::HandshakePending);
        }
        if let Some(pl) = ch.pipeline.clone() {
            // Pipeline channels carry their whole transform in the graph:
            // AAD and caller-side tags have no stage to run on.
            if direction != Direction::Encrypt || !aad.is_empty() || tag.is_some() {
                return Err(MccpError::BadInstruction);
            }
            return self.submit_pipeline(channel, &pl, iv, body);
        }
        let want = Self::personality_for(ch.cipher);
        if let Some(pe) = &mut self.policy {
            pe.record_offered(want);
        }
        let two_core = (self.config.ccm_two_core || ch.fused_two_core)
            && ch.algorithm.mode() == Mode::Ccm
            && self.idle_pair(want).is_some();
        let fmt = format_request(
            ch.algorithm,
            direction,
            two_core,
            iv,
            aad,
            body,
            tag,
            ch.tag_len,
        )?;
        match self.submit_formatted(channel, direction, fmt) {
            Ok(id) => {
                if let Some(pe) = &mut self.policy {
                    pe.record_served(want);
                }
                Ok(id)
            }
            Err(MccpError::NoResource) => {
                // Demand outran the personality mix: let the policy engine
                // consider flipping an idle core before the caller retries.
                self.maybe_reconfigure();
                Err(MccpError::NoResource)
            }
            Err(e) => Err(e),
        }
    }

    /// Submits a pre-formatted request (the data the communication
    /// controller would push through the crossbar).
    pub fn submit_formatted(
        &mut self,
        channel: ChannelId,
        direction: Direction,
        fmt: FormattedRequest,
    ) -> Result<RequestId, MccpError> {
        let ch = self.channel(channel)?.clone();
        if ch.ready_at > self.cycle {
            return Err(MccpError::HandshakePending);
        }
        let n = self.cores.len();

        // Core allocation (personality-matched: Twofish channels dispatch
        // to Twofish-configured cores only).
        let want = Self::personality_for(ch.cipher);
        let core_ids: Vec<usize> = if fmt.jobs.len() == 2 {
            let left = self.idle_pair(want).ok_or(MccpError::NoResource)?;
            vec![left, (left + 1) % n]
        } else {
            vec![self.first_idle(want).ok_or(MccpError::NoResource)?]
        };
        for &c in &core_ids {
            self.cores[c].reserve();
        }

        // Capacity checks: every stream must fit its FIFO *unless* we run
        // in streaming mode (oversize experiments).
        let fifo_bytes = self.config.fifo_depth * 4;
        let streaming = fmt
            .jobs
            .iter()
            .any(|j| j.stream.len() > fifo_bytes || j.output_bytes > fifo_bytes);

        // Key handling: reuse a cached expansion or charge the Key
        // Scheduler latency. Any rejection from here on must release the
        // reservations taken above.
        let mut key_delay = 0u32;
        for &c in &core_ids {
            // Key-cache integrity gate: a corrupt cache is wiped and the
            // submission rejected; the retry re-expands from the
            // write-protected Key Memory, which self-heals the core.
            if self.cores[c].key_cache.is_corrupt() {
                self.cores[c].key_cache.wipe();
                for &cc in &core_ids {
                    self.cores[cc].finish();
                }
                let error = MccpError::KeyCorrupt;
                self.telemetry
                    .emit_with(self.cycle, || Event::FaultDetected {
                        request: 0,
                        core: c,
                        error: error.to_string(),
                    });
                return Err(error);
            }
            if self.cores[c].key_cache.get(ch.key, ch.cipher).is_none() {
                let before = self.key_scheduler.busy_cycles();
                let Some(engine) =
                    self.key_scheduler
                        .expand_engine(&self.key_memory, ch.key, ch.cipher)
                else {
                    for &cc in &core_ids {
                        self.cores[cc].finish();
                    }
                    return Err(MccpError::BadKey);
                };
                let this_delay = self.key_scheduler.busy_cycles() - before;
                key_delay = key_delay.max(this_delay);
                self.stage_key_expand[c] += u64::from(this_delay);
                self.cores[c].key_cache.install(ch.key, ch.cipher, engine);
                self.telemetry
                    .emit_with(self.cycle, || Event::KeyCacheMiss {
                        core: c,
                        key: ch.key.0,
                        expansion_cycles: this_delay,
                    });
            } else {
                self.telemetry.emit_with(self.cycle, || Event::KeyCacheHit {
                    core: c,
                    key: ch.key.0,
                });
            }
            let engine = match self.cores[c].key_cache.get(ch.key, ch.cipher) {
                Some(e) => e.clone(),
                None => {
                    for &cc in &core_ids {
                        self.cores[cc].finish();
                    }
                    return Err(MccpError::BadKey);
                }
            };
            self.cores[c].load_engine(engine);
        }

        let id = RequestId(self.next_request);
        self.next_request = self.next_request.wrapping_add(1).max(1);
        let sequence = {
            let seq = self.channel_seq.entry(channel.0).or_insert(0);
            *seq += 1;
            *seq
        };

        // Watchdog deadline: margin × the modeled worst-case cycle bound
        // (key wait, a generous fixed firmware overhead, and a per-word
        // allowance far above the datapath's real per-word cost).
        let deadline = self.watchdog_margin.map(|margin| {
            let words: usize = fmt
                .jobs
                .iter()
                .map(|j| j.stream.len().div_ceil(4) + j.output_bytes.div_ceil(4))
                .sum();
            let bound = key_delay as u64 + 4096 + 64 * words as u64;
            self.cycle + u64::from(margin) * bound
        });

        let producing_core = fmt
            .jobs
            .iter()
            .position(|j| j.produces_output)
            .map(|i| core_ids[i])
            .unwrap_or(core_ids[0]);
        let expected_output = fmt
            .jobs
            .iter()
            .find(|j| j.produces_output)
            .map(|j| j.output_bytes)
            .unwrap_or(0);

        // Route the crossbar to the producing core's input for the upload
        // phase (protocol fidelity; the model pushes words during tick()).
        self.crossbar.select(Route::WriteTo(producing_core));

        let mut pending_input = Vec::new();
        let mut jobs = Vec::new();
        for (i, job) in fmt.jobs.into_iter().enumerate() {
            let core = core_ids[i];
            pending_input.push((core, job.stream.clone(), 0usize, false));
            jobs.push((core, job));
        }

        self.telemetry
            .emit_with(self.cycle, || Event::RequestSubmitted {
                request: id.0,
                channel: channel.0,
                algorithm: ch.algorithm.name(),
                direction: match direction {
                    Direction::Encrypt => "Encrypt",
                    Direction::Decrypt => "Decrypt",
                },
                cores: core_ids.clone(),
            });
        self.telemetry
            .emit_with(self.cycle, || Event::RequestDispatched {
                request: id.0,
                core: producing_core,
            });
        self.requests.insert(
            id.0,
            Request {
                id,
                channel,
                algorithm: ch.algorithm,
                direction,
                cores: core_ids,
                producing_core,
                payload_len: fmt.payload_len,
                tag_len: fmt.tag_len,
                expected_output,
                pending_input,
                jobs,
                collected: Vec::new(),
                streaming,
                state: ReqState::KeyWait(key_delay),
                start_cycle: self.cycle,
                done_cycle: None,
                signaled: false,
                deadline,
                sequence,
                pipeline: None,
                epoch: ch.epoch,
                key: ch.key,
            },
        );

        // Fault plane: fire every schedule entry due at this accepted
        // submission (1-based packet ordinal across the engine).
        self.packets_submitted += 1;
        if self.faults.is_some() {
            let due = match &mut self.faults {
                Some(f) => f.take_due_packet(self.packets_submitted),
                None => Vec::new(),
            };
            for e in due {
                self.apply_fault(e.kind);
            }
        }
        Ok(id)
    }

    /// RETRIEVE_DATA: returns the processed packet, or [`MccpError::AuthFail`]
    /// — in which case the output FIFO has already been wiped. A request
    /// terminated by the fault plane returns its recorded error instead.
    pub fn retrieve(&mut self, id: RequestId) -> Result<ProcessedPacket, MccpError> {
        let req = self.requests.get_mut(&id.0).ok_or(MccpError::BadChannel)?;
        let ReqState::Done { auth_ok } = req.state else {
            if let ReqState::Failed { error } = req.state {
                req.state = ReqState::Retrieved;
                return Err(error);
            }
            return Err(MccpError::Busy);
        };
        req.state = ReqState::Retrieved;
        if !auth_ok {
            return Err(MccpError::AuthFail);
        }
        if let Some(plan) = &req.pipeline {
            // Pipeline output was collected stage by stage; the final body
            // and tag are already assembled in the plan.
            let packet = ProcessedPacket {
                body: plan.out_body.clone(),
                tag: plan.tag.clone(),
            };
            let (request, core) = (id.0, req.producing_core);
            self.telemetry
                .emit_with(self.cycle, || Event::RequestRetrieved { request, core });
            return Ok(packet);
        }
        self.crossbar.select(Route::ReadFrom(req.producing_core));
        let mut raw = std::mem::take(&mut req.collected);
        let remaining = req.expected_output - raw.len();
        if remaining > 0 {
            let fifo_bytes = self.cores[req.producing_core]
                .output
                .pop_bytes(remaining)
                .ok_or(MccpError::Busy)?;
            raw.extend_from_slice(&fifo_bytes);
        }
        if self.telemetry.is_enabled() {
            let core = req.producing_core;
            let level = self.cores[core].output.len();
            self.telemetry.emit(
                self.cycle,
                Event::RequestRetrieved {
                    request: id.0,
                    core,
                },
            );
            self.telemetry.emit(
                self.cycle,
                Event::FifoPop {
                    core,
                    port: FifoPort::Output,
                    level,
                },
            );
        }
        Ok(parse_output(
            req.algorithm,
            req.direction,
            req.payload_len,
            req.tag_len,
            &raw,
        ))
    }

    /// TRANSFER_DONE: releases the cores and forgets the request.
    pub fn transfer_done(&mut self, id: RequestId) -> Result<(), MccpError> {
        let req = self.requests.remove(&id.0).ok_or(MccpError::BadChannel)?;
        for &c in &req.cores {
            self.cores[c].finish();
            self.cores[c].input.wipe();
            self.cores[c].output.wipe();
        }
        self.crossbar.release();
        // A drained request may have been the last reference holding a
        // retired (pre-rekey) key resident.
        self.reap_retired_keys();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pipeline graphs
    // ------------------------------------------------------------------

    /// Submits one packet on a pipeline channel: admission requires an
    /// idle core for stage 0 *now* and every stage personality somewhere
    /// in the pool (live or already loading); later stages queue in
    /// `StageWait` until a matching core frees up.
    fn submit_pipeline(
        &mut self,
        channel: ChannelId,
        pl: &Arc<ResolvedPipeline>,
        iv: &[u8],
        body: &[u8],
    ) -> Result<RequestId, MccpError> {
        // Per-personality demand accounting feeds the swap policy; every
        // attempt is an offered-load sample, rejections included.
        if self.policy.is_some() {
            for st in &pl.stages {
                let p = st.personality();
                if let Some(pe) = &mut self.policy {
                    pe.record_offered(p);
                }
            }
        }
        if pl.stages.iter().any(|s| s.op == StageOp::Ctr) && iv.len() < 16 {
            return Err(MccpError::BadInstruction);
        }
        // Pipelines run stage-at-a-time inside the FIFOs (no streaming).
        let fifo_bytes = self.config.fifo_depth * 4;
        if body.len().div_ceil(16) * 16 + 32 > fifo_bytes {
            return Err(MccpError::TooLarge);
        }
        for st in &pl.stages {
            let want = st.personality();
            let present = self.cores.iter().enumerate().any(|(i, c)| {
                !c.is_quarantined()
                    && if self.reconfigs[i].is_reconfiguring() {
                        self.reconfigs[i].target() == Some(want)
                    } else {
                        c.personality() == want
                    }
            });
            if !present {
                self.maybe_reconfigure();
                return Err(MccpError::NoResource);
            }
        }
        if self
            .idle_for_stage(pl.stages[0].personality(), None)
            .is_none()
        {
            self.maybe_reconfigure();
            return Err(MccpError::NoResource);
        }

        let ch = self.channel(channel)?.clone();
        let id = RequestId(self.next_request);
        self.next_request = self.next_request.wrapping_add(1).max(1);
        let sequence = {
            let seq = self.channel_seq.entry(channel.0).or_insert(0);
            *seq += 1;
            *seq
        };
        self.telemetry
            .emit_with(self.cycle, || Event::RequestSubmitted {
                request: id.0,
                channel: channel.0,
                algorithm: ch.algorithm.name(),
                direction: "Encrypt",
                cores: Vec::new(),
            });
        self.requests.insert(
            id.0,
            Request {
                id,
                channel,
                algorithm: ch.algorithm,
                direction: Direction::Encrypt,
                cores: Vec::new(),
                producing_core: 0,
                payload_len: body.len(),
                tag_len: pl.tag_len,
                expected_output: 0,
                pending_input: Vec::new(),
                jobs: Vec::new(),
                collected: Vec::new(),
                streaming: false,
                state: ReqState::StageWait,
                start_cycle: self.cycle,
                done_cycle: None,
                signaled: false,
                deadline: None,
                sequence,
                pipeline: Some(PipelinePlan {
                    pipeline: pl.clone(),
                    current: 0,
                    iv: iv.to_vec(),
                    body: body.to_vec(),
                    out_body: Vec::new(),
                    tag: None,
                    prev_core: None,
                }),
                epoch: ch.epoch,
                key: ch.key,
            },
        );
        self.packets_submitted += 1;
        if self.faults.is_some() {
            let due = match &mut self.faults {
                Some(f) => f.take_due_packet(self.packets_submitted),
                None => Vec::new(),
            };
            for e in due {
                self.apply_fault(e.kind);
            }
        }
        self.try_start_stage(id);
        if self.policy.is_some() {
            for st in &pl.stages {
                let p = st.personality();
                if let Some(pe) = &mut self.policy {
                    pe.record_served(p);
                }
            }
        }
        Ok(id)
    }

    /// Tries to dispatch a pipeline request's current stage onto an idle
    /// core of the right personality; parks it in `StageWait` otherwise
    /// (retried every active tick).
    pub(crate) fn try_start_stage(&mut self, id: RequestId) {
        let (stage, idx, prev, body, iv, tag_len) = {
            let Some(req) = self.requests.get(&id.0) else {
                return;
            };
            let Some(plan) = &req.pipeline else {
                return;
            };
            (
                plan.pipeline.stages[plan.current].clone(),
                plan.current,
                plan.prev_core,
                plan.body.clone(),
                plan.iv.clone(),
                plan.pipeline.tag_len,
            )
        };
        let Some(core) = self.idle_for_stage(stage.personality(), prev) else {
            if let Some(r) = self.requests.get_mut(&id.0) {
                r.state = ReqState::StageWait;
            }
            return;
        };
        let cycle = self.cycle;
        if stage.op == StageOp::WhirlpoolHmac {
            // The digest is computed with the same `mccp-aes` code the
            // functional engine uses; the Whirlpool core is held for the
            // modeled hash latency and the tag lands when it expires.
            self.cores[core].reserve();
            let digest = whirlpool_hmac(&stage.key_bytes, &body);
            let cycles = whirlpool_hmac_cycles(body.len());
            let deadline = self
                .watchdog_margin
                .map(|m| cycle + u64::from(m) * (cycles + 4096));
            let request = id.0;
            self.telemetry
                .emit_with(cycle, || Event::RequestDispatched { request, core });
            let req = self.requests.get_mut(&id.0).expect("request exists");
            req.cores = vec![core];
            req.producing_core = core;
            req.expected_output = 0;
            req.pending_input = Vec::new();
            req.jobs = Vec::new();
            req.deadline = deadline;
            req.state = ReqState::Hashing { left: cycles };
            let plan = req.pipeline.as_mut().expect("pipeline plan");
            plan.tag = Some(digest[..tag_len.min(64)].to_vec());
            return;
        }

        // A CU stage (CTR or CBC-MAC): the ordinary single-core dispatch —
        // reserve, key-cache gate, format, upload via the crossbar.
        self.cores[core].reserve();
        if self.cores[core].key_cache.is_corrupt() {
            self.cores[core].key_cache.wipe();
            self.cores[core].finish();
            self.fail_request(id, MccpError::KeyCorrupt, core);
            return;
        }
        let mut key_delay = 0u32;
        if self.cores[core]
            .key_cache
            .get(stage.key, stage.cipher)
            .is_none()
        {
            let before = self.key_scheduler.busy_cycles();
            let Some(engine) =
                self.key_scheduler
                    .expand_engine(&self.key_memory, stage.key, stage.cipher)
            else {
                self.cores[core].finish();
                self.fail_request(id, MccpError::BadKey, core);
                return;
            };
            key_delay = self.key_scheduler.busy_cycles() - before;
            self.stage_key_expand[core] += u64::from(key_delay);
            self.cores[core]
                .key_cache
                .install(stage.key, stage.cipher, engine);
            let (key, expansion_cycles) = (stage.key.0, key_delay);
            self.telemetry.emit_with(cycle, || Event::KeyCacheMiss {
                core,
                key,
                expansion_cycles,
            });
        } else {
            let key = stage.key.0;
            self.telemetry
                .emit_with(cycle, || Event::KeyCacheHit { core, key });
        }
        let engine = match self.cores[core].key_cache.get(stage.key, stage.cipher) {
            Some(e) => e.clone(),
            None => {
                self.cores[core].finish();
                self.fail_request(id, MccpError::BadKey, core);
                return;
            }
        };
        self.cores[core].load_engine(engine);
        let fmt = match stage.op {
            StageOp::Ctr => format_request(
                stage.algorithm,
                Direction::Encrypt,
                false,
                &stage_counter(&iv, idx),
                &[],
                &body,
                None,
                16,
            ),
            _ => format_request(
                stage.algorithm,
                Direction::Encrypt,
                false,
                &[],
                &[],
                &body,
                None,
                tag_len.min(16),
            ),
        };
        let fmt = match fmt {
            Ok(f) => f,
            Err(e) => {
                self.cores[core].finish();
                self.fail_request(id, e, core);
                return;
            }
        };
        let Some(job) = fmt.jobs.into_iter().next() else {
            self.cores[core].finish();
            self.fail_request(id, MccpError::BadInstruction, core);
            return;
        };
        let words = job.stream.len().div_ceil(4) + job.output_bytes.div_ceil(4);
        let deadline = self
            .watchdog_margin
            .map(|m| cycle + u64::from(m) * (u64::from(key_delay) + 4096 + 64 * words as u64));
        self.crossbar.select(Route::WriteTo(core));
        let request = id.0;
        self.telemetry
            .emit_with(cycle, || Event::RequestDispatched { request, core });
        let req = self.requests.get_mut(&id.0).expect("request exists");
        req.algorithm = stage.algorithm;
        req.payload_len = fmt.payload_len;
        req.tag_len = fmt.tag_len;
        req.expected_output = job.output_bytes;
        req.producing_core = core;
        req.cores = vec![core];
        req.pending_input = vec![(core, job.stream.clone(), 0usize, false)];
        req.jobs = vec![(core, job)];
        req.collected = Vec::new();
        req.deadline = deadline;
        req.state = ReqState::KeyWait(key_delay);
    }

    /// A pipeline stage completed on its core: collect the stage output,
    /// fold it into the plan, release the stage's core and hand off to the
    /// next stage (or finish the request after the last one).
    pub(crate) fn advance_pipeline(&mut self, id: RequestId) {
        let (producing, expected, payload_len, cores, idx, op, tag_len, n_stages) = {
            let Some(req) = self.requests.get(&id.0) else {
                return;
            };
            let Some(plan) = &req.pipeline else {
                return;
            };
            (
                req.producing_core,
                req.expected_output,
                req.payload_len,
                req.cores.clone(),
                plan.current,
                plan.pipeline.stages[plan.current].op,
                plan.pipeline.tag_len,
                plan.pipeline.stages.len(),
            )
        };
        let raw = if expected > 0 {
            self.cores[producing]
                .output
                .pop_bytes(expected)
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        {
            let req = self.requests.get_mut(&id.0).expect("request exists");
            let plan = req.pipeline.as_mut().expect("pipeline plan");
            match op {
                StageOp::Ctr => {
                    plan.body = raw[..payload_len.min(raw.len())].to_vec();
                    plan.out_body = plan.body.clone();
                }
                StageOp::CbcMac => {
                    plan.tag = Some(raw[..tag_len.min(raw.len())].to_vec());
                }
                // The Whirlpool tag landed when the hash countdown expired.
                StageOp::WhirlpoolHmac => {}
            }
        }
        if idx + 1 == n_stages {
            self.finish_pipeline(id);
            return;
        }
        // Release the finished stage's core; the next stage prefers a
        // different one (the inter-core handoff is the pipeline's point).
        for &c in &cores {
            self.cores[c].finish();
            self.cores[c].input.wipe();
            self.cores[c].output.wipe();
        }
        self.crossbar.release();
        {
            let req = self.requests.get_mut(&id.0).expect("request exists");
            req.cores = Vec::new();
            req.deadline = None;
            req.state = ReqState::StageWait;
            let plan = req.pipeline.as_mut().expect("pipeline plan");
            plan.current = idx + 1;
            plan.prev_core = Some(producing);
        }
        self.try_start_stage(id);
    }

    /// Terminates a pipeline request successfully (Data Available). The
    /// final stage's core stays reserved until TRANSFER_DONE, like any
    /// completed request.
    pub(crate) fn finish_pipeline(&mut self, id: RequestId) {
        let cycle = self.cycle;
        let Some(req) = self.requests.get_mut(&id.0) else {
            return;
        };
        req.state = ReqState::Done { auth_ok: true };
        req.done_cycle = Some(cycle);
        let (request, cycles) = (req.id.0, cycle - req.start_cycle);
        self.telemetry.emit_with(cycle, || Event::RequestCompleted {
            request,
            auth_ok: true,
            cycles,
        });
        self.data_available.push_back(id);
    }

    // ------------------------------------------------------------------
    // Demand-driven reconfiguration policy
    // ------------------------------------------------------------------

    /// Installs the demand-driven reconfiguration policy: from here on the
    /// Task Scheduler samples per-personality offered load on every
    /// submission and may flip an *idle* core's CU region toward starved
    /// demand (charging the Table IV load latency of the configured
    /// bitstream source).
    pub fn enable_reconfig_policy(&mut self, cfg: PolicyConfig) {
        self.policy = Some(PolicyEngine::new(cfg));
    }

    /// The policy engine's state, when enabled.
    pub fn policy(&self) -> Option<&PolicyEngine> {
        self.policy.as_ref()
    }

    /// Consults the policy engine and begins at most one swap. Called on
    /// every `NoResource` rejection — never from `tick()`, so the
    /// fast-forward identity is untouched (decisions depend only on
    /// submission-time state).
    pub(crate) fn maybe_reconfigure(&mut self) {
        let Some(pe) = &self.policy else {
            return;
        };
        let cores: Vec<(Personality, bool, bool)> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // A core mid-load already counts for its target personality.
                let p = self.reconfigs[i]
                    .target()
                    .unwrap_or_else(|| c.personality());
                let out = self.reconfigs[i].is_reconfiguring() || c.is_quarantined();
                (p, c.is_idle() && !out, out)
            })
            .collect();
        // Personalities that in-flight pipeline stages still need keep at
        // least one core: a swap may never strand queued work.
        let mut pinned: Vec<Personality> = Vec::new();
        for req in self.requests.values() {
            if !matches!(
                req.state,
                ReqState::KeyWait(_)
                    | ReqState::Running
                    | ReqState::StageWait
                    | ReqState::Hashing { .. }
            ) {
                continue;
            }
            if let Some(plan) = &req.pipeline {
                for st in &plan.pipeline.stages[plan.current..] {
                    pinned.push(st.personality());
                }
            }
        }
        let Some(d) = pe.decide(self.cycle, &cores, &pinned) else {
            return;
        };
        let source = pe.config().source;
        if self
            .begin_reconfiguration(d.core, bitstream_for(d.target), source)
            .is_ok()
        {
            if let Some(pe) = &mut self.policy {
                pe.note_swap(self.cycle);
            }
        }
    }

    /// Begins a policy-accounted swap of one idle core to `target`,
    /// charging the policy's configured bitstream source. The benches use
    /// this to drive explicit mix-shift swaps through the same accounting
    /// path the demand policy uses. Returns the load-time budget.
    pub fn policy_swap(&mut self, core: usize, target: Personality) -> Result<u64, MccpError> {
        let source = self
            .policy
            .as_ref()
            .map(|p| p.config().source)
            .unwrap_or(BitstreamSource::Ram);
        let budget = self.begin_reconfiguration(core, bitstream_for(target), source)?;
        if let Some(pe) = &mut self.policy {
            pe.note_swap(self.cycle);
        }
        Ok(budget)
    }

    // ------------------------------------------------------------------
    // Partial reconfiguration
    // ------------------------------------------------------------------

    /// Begins loading a partial bitstream into a core's reconfigurable
    /// region (paper §IX). The core is reserved for the duration — the
    /// scheduler will not dispatch to it — and comes back up with the
    /// bitstream's personality once the modeled load time elapses during
    /// [`tick`](Self::tick). Returns the load-time budget in cycles.
    ///
    /// Errors with [`MccpError::Busy`] if the core is mid-request or
    /// already reconfiguring.
    pub fn begin_reconfiguration(
        &mut self,
        core: usize,
        bitstream: Bitstream,
        source: BitstreamSource,
    ) -> Result<u64, MccpError> {
        if !self.cores[core].is_idle() || self.reconfigs[core].is_reconfiguring() {
            return Err(MccpError::Busy);
        }
        let personality = bitstream.personality;
        let budget = self.reconfigs[core]
            .begin(bitstream, source)
            .ok_or(MccpError::Busy)?;
        self.cores[core].reserve();
        self.reconfig_started[core] = self.cycle;
        self.telemetry
            .emit_with(self.cycle, || Event::ReconfigBegin {
                core,
                personality: personality.name(),
            });
        Ok(budget)
    }

    /// True while a core's reconfigurable region is being rewritten.
    pub fn is_reconfiguring(&self, core: usize) -> bool {
        self.reconfigs[core].is_reconfiguring()
    }
}
