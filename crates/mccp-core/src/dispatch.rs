//! The control-protocol half of the Task Scheduler: channel management
//! (OPEN / REKEY / CLOSE), packet submission with personality-matched
//! core allocation and key-cache handling, output retrieval
//! (RETRIEVE_DATA / TRANSFER_DONE) and partial reconfiguration.
//!
//! Split out of the `Mccp` monolith; every method here is an `impl Mccp`
//! block so the public API surface is unchanged.

use crate::core_unit::Personality;
use crate::crossbar::Route;
use crate::format::{format_request, parse_output, Direction, FormattedRequest, ProcessedPacket};
use crate::mccp::Mccp;
use crate::protocol::{Algorithm, ChannelId, CipherSel, KeyId, MccpError, Mode, RequestId};
use crate::reconfig::{Bitstream, BitstreamSource};
use crate::scheduler::{ReqState, Request};
use mccp_telemetry::{Event, FifoPort};

/// A live channel binding (algorithm, session key, tag length, cipher).
#[derive(Clone, Debug)]
pub(crate) struct Channel {
    pub(crate) algorithm: Algorithm,
    pub(crate) key: KeyId,
    pub(crate) tag_len: usize,
    /// The block cipher this channel runs on; Twofish channels dispatch
    /// only to cores whose reconfigurable region hosts the Twofish unit.
    pub(crate) cipher: CipherSel,
}

impl Mccp {
    /// OPEN: binds an algorithm and session key to a new channel.
    pub fn open(&mut self, algorithm: Algorithm, key: KeyId) -> Result<ChannelId, MccpError> {
        self.open_with_tag_len(algorithm, key, self.config.default_tag_len)
    }

    /// OPEN with an explicit tag length (authenticated channels).
    pub fn open_with_tag_len(
        &mut self,
        algorithm: Algorithm,
        key: KeyId,
        tag_len: usize,
    ) -> Result<ChannelId, MccpError> {
        self.open_with_cipher(algorithm, key, tag_len, CipherSel::Aes)
    }

    /// OPEN with an explicit cipher selection (paper §IX: "AES core may be
    /// easily replaced by any other 128-bit block cipher"). Twofish
    /// channels are served only by cores reconfigured to the Twofish unit.
    pub fn open_with_cipher(
        &mut self,
        algorithm: Algorithm,
        key: KeyId,
        tag_len: usize,
        cipher: CipherSel,
    ) -> Result<ChannelId, MccpError> {
        if !self.key_memory.contains(key) {
            return Err(MccpError::BadKey);
        }
        if self.key_memory.key_size(key) != Some(algorithm.key_size()) {
            return Err(MccpError::BadKey);
        }
        let id = (0..=u8::MAX)
            .find(|i| !self.channels.contains_key(i))
            .ok_or(MccpError::NoChannelId)?;
        self.channels.insert(
            id,
            Channel {
                algorithm,
                key,
                tag_len,
                cipher,
            },
        );
        Ok(ChannelId(id))
    }

    /// Rebinds a live channel to a new session key (rekeying: the main
    /// controller has rotated keys; in-flight requests keep the old key,
    /// subsequent packets use the new one — stale per-core key caches miss
    /// on the new id and re-expand).
    pub fn rekey(&mut self, channel: ChannelId, new_key: KeyId) -> Result<(), MccpError> {
        let algorithm = self.channel(channel)?.algorithm;
        if !self.key_memory.contains(new_key) {
            return Err(MccpError::BadKey);
        }
        if self.key_memory.key_size(new_key) != Some(algorithm.key_size()) {
            return Err(MccpError::BadKey);
        }
        match self.channels.get_mut(&channel.0) {
            Some(c) => {
                c.key = new_key;
                Ok(())
            }
            None => Err(MccpError::BadChannel),
        }
    }

    /// CLOSE: releases a channel.
    pub fn close(&mut self, channel: ChannelId) -> Result<(), MccpError> {
        if self
            .requests
            .values()
            .any(|r| r.channel == channel && !matches!(r.state, ReqState::Retrieved))
        {
            return Err(MccpError::Busy);
        }
        self.channels
            .remove(&channel.0)
            .map(|_| ())
            .ok_or(MccpError::BadChannel)
    }

    pub(crate) fn channel(&self, id: ChannelId) -> Result<&Channel, MccpError> {
        self.channels.get(&id.0).ok_or(MccpError::BadChannel)
    }

    /// The core personality a channel's cipher requires.
    pub(crate) fn personality_for(cipher: CipherSel) -> Personality {
        match cipher {
            CipherSel::Aes => Personality::AesUnit,
            CipherSel::Twofish => Personality::TwofishUnit,
        }
    }

    /// ENCRYPT/DECRYPT: formats and submits a packet on a channel.
    ///
    /// `iv`: GCM — 12-byte IV; CCM — 7..13-byte nonce; CTR — 16-byte
    /// counter block; CBC-MAC — empty. `tag` is required when decrypting
    /// authenticated modes.
    pub fn submit(
        &mut self,
        channel: ChannelId,
        direction: Direction,
        iv: &[u8],
        aad: &[u8],
        body: &[u8],
        tag: Option<&[u8]>,
    ) -> Result<RequestId, MccpError> {
        let ch = self.channel(channel)?.clone();
        let two_core = self.config.ccm_two_core
            && ch.algorithm.mode() == Mode::Ccm
            && self.idle_pair(Self::personality_for(ch.cipher)).is_some();
        let fmt = format_request(
            ch.algorithm,
            direction,
            two_core,
            iv,
            aad,
            body,
            tag,
            ch.tag_len,
        )?;
        self.submit_formatted(channel, direction, fmt)
    }

    /// Submits a pre-formatted request (the data the communication
    /// controller would push through the crossbar).
    pub fn submit_formatted(
        &mut self,
        channel: ChannelId,
        direction: Direction,
        fmt: FormattedRequest,
    ) -> Result<RequestId, MccpError> {
        let ch = self.channel(channel)?.clone();
        let n = self.cores.len();

        // Core allocation (personality-matched: Twofish channels dispatch
        // to Twofish-configured cores only).
        let want = Self::personality_for(ch.cipher);
        let core_ids: Vec<usize> = if fmt.jobs.len() == 2 {
            let left = self.idle_pair(want).ok_or(MccpError::NoResource)?;
            vec![left, (left + 1) % n]
        } else {
            vec![self.first_idle(want).ok_or(MccpError::NoResource)?]
        };
        for &c in &core_ids {
            self.cores[c].reserve();
        }

        // Capacity checks: every stream must fit its FIFO *unless* we run
        // in streaming mode (oversize experiments).
        let fifo_bytes = self.config.fifo_depth * 4;
        let streaming = fmt
            .jobs
            .iter()
            .any(|j| j.stream.len() > fifo_bytes || j.output_bytes > fifo_bytes);

        // Key handling: reuse a cached expansion or charge the Key
        // Scheduler latency. Any rejection from here on must release the
        // reservations taken above.
        let mut key_delay = 0u32;
        for &c in &core_ids {
            // Key-cache integrity gate: a corrupt cache is wiped and the
            // submission rejected; the retry re-expands from the
            // write-protected Key Memory, which self-heals the core.
            if self.cores[c].key_cache.is_corrupt() {
                self.cores[c].key_cache.wipe();
                for &cc in &core_ids {
                    self.cores[cc].finish();
                }
                let error = MccpError::KeyCorrupt;
                self.telemetry
                    .emit_with(self.cycle, || Event::FaultDetected {
                        request: 0,
                        core: c,
                        error: error.to_string(),
                    });
                return Err(error);
            }
            if self.cores[c].key_cache.get(ch.key, ch.cipher).is_none() {
                let before = self.key_scheduler.busy_cycles();
                let Some(engine) =
                    self.key_scheduler
                        .expand_engine(&self.key_memory, ch.key, ch.cipher)
                else {
                    for &cc in &core_ids {
                        self.cores[cc].finish();
                    }
                    return Err(MccpError::BadKey);
                };
                let this_delay = self.key_scheduler.busy_cycles() - before;
                key_delay = key_delay.max(this_delay);
                self.stage_key_expand[c] += u64::from(this_delay);
                self.cores[c].key_cache.install(ch.key, ch.cipher, engine);
                self.telemetry
                    .emit_with(self.cycle, || Event::KeyCacheMiss {
                        core: c,
                        key: ch.key.0,
                        expansion_cycles: this_delay,
                    });
            } else {
                self.telemetry.emit_with(self.cycle, || Event::KeyCacheHit {
                    core: c,
                    key: ch.key.0,
                });
            }
            let engine = match self.cores[c].key_cache.get(ch.key, ch.cipher) {
                Some(e) => e.clone(),
                None => {
                    for &cc in &core_ids {
                        self.cores[cc].finish();
                    }
                    return Err(MccpError::BadKey);
                }
            };
            self.cores[c].load_engine(engine);
        }

        let id = RequestId(self.next_request);
        self.next_request = self.next_request.wrapping_add(1).max(1);
        let sequence = {
            let seq = self.channel_seq.entry(channel.0).or_insert(0);
            *seq += 1;
            *seq
        };

        // Watchdog deadline: margin × the modeled worst-case cycle bound
        // (key wait, a generous fixed firmware overhead, and a per-word
        // allowance far above the datapath's real per-word cost).
        let deadline = self.watchdog_margin.map(|margin| {
            let words: usize = fmt
                .jobs
                .iter()
                .map(|j| j.stream.len().div_ceil(4) + j.output_bytes.div_ceil(4))
                .sum();
            let bound = key_delay as u64 + 4096 + 64 * words as u64;
            self.cycle + u64::from(margin) * bound
        });

        let producing_core = fmt
            .jobs
            .iter()
            .position(|j| j.produces_output)
            .map(|i| core_ids[i])
            .unwrap_or(core_ids[0]);
        let expected_output = fmt
            .jobs
            .iter()
            .find(|j| j.produces_output)
            .map(|j| j.output_bytes)
            .unwrap_or(0);

        // Route the crossbar to the producing core's input for the upload
        // phase (protocol fidelity; the model pushes words during tick()).
        self.crossbar.select(Route::WriteTo(producing_core));

        let mut pending_input = Vec::new();
        let mut jobs = Vec::new();
        for (i, job) in fmt.jobs.into_iter().enumerate() {
            let core = core_ids[i];
            pending_input.push((core, job.stream.clone(), 0usize, false));
            jobs.push((core, job));
        }

        self.telemetry
            .emit_with(self.cycle, || Event::RequestSubmitted {
                request: id.0,
                channel: channel.0,
                algorithm: ch.algorithm.name(),
                direction: match direction {
                    Direction::Encrypt => "Encrypt",
                    Direction::Decrypt => "Decrypt",
                },
                cores: core_ids.clone(),
            });
        self.telemetry
            .emit_with(self.cycle, || Event::RequestDispatched {
                request: id.0,
                core: producing_core,
            });
        self.requests.insert(
            id.0,
            Request {
                id,
                channel,
                algorithm: ch.algorithm,
                direction,
                cores: core_ids,
                producing_core,
                payload_len: fmt.payload_len,
                tag_len: fmt.tag_len,
                expected_output,
                pending_input,
                jobs,
                collected: Vec::new(),
                streaming,
                state: ReqState::KeyWait(key_delay),
                start_cycle: self.cycle,
                done_cycle: None,
                signaled: false,
                deadline,
                sequence,
            },
        );

        // Fault plane: fire every schedule entry due at this accepted
        // submission (1-based packet ordinal across the engine).
        self.packets_submitted += 1;
        if self.faults.is_some() {
            let due = match &mut self.faults {
                Some(f) => f.take_due_packet(self.packets_submitted),
                None => Vec::new(),
            };
            for e in due {
                self.apply_fault(e.kind);
            }
        }
        Ok(id)
    }

    /// RETRIEVE_DATA: returns the processed packet, or [`MccpError::AuthFail`]
    /// — in which case the output FIFO has already been wiped. A request
    /// terminated by the fault plane returns its recorded error instead.
    pub fn retrieve(&mut self, id: RequestId) -> Result<ProcessedPacket, MccpError> {
        let req = self.requests.get_mut(&id.0).ok_or(MccpError::BadChannel)?;
        let ReqState::Done { auth_ok } = req.state else {
            if let ReqState::Failed { error } = req.state {
                req.state = ReqState::Retrieved;
                return Err(error);
            }
            return Err(MccpError::Busy);
        };
        req.state = ReqState::Retrieved;
        if !auth_ok {
            return Err(MccpError::AuthFail);
        }
        self.crossbar.select(Route::ReadFrom(req.producing_core));
        let mut raw = std::mem::take(&mut req.collected);
        let remaining = req.expected_output - raw.len();
        if remaining > 0 {
            let fifo_bytes = self.cores[req.producing_core]
                .output
                .pop_bytes(remaining)
                .ok_or(MccpError::Busy)?;
            raw.extend_from_slice(&fifo_bytes);
        }
        if self.telemetry.is_enabled() {
            let core = req.producing_core;
            let level = self.cores[core].output.len();
            self.telemetry.emit(
                self.cycle,
                Event::RequestRetrieved {
                    request: id.0,
                    core,
                },
            );
            self.telemetry.emit(
                self.cycle,
                Event::FifoPop {
                    core,
                    port: FifoPort::Output,
                    level,
                },
            );
        }
        Ok(parse_output(
            req.algorithm,
            req.direction,
            req.payload_len,
            req.tag_len,
            &raw,
        ))
    }

    /// TRANSFER_DONE: releases the cores and forgets the request.
    pub fn transfer_done(&mut self, id: RequestId) -> Result<(), MccpError> {
        let req = self.requests.remove(&id.0).ok_or(MccpError::BadChannel)?;
        for &c in &req.cores {
            self.cores[c].finish();
            self.cores[c].input.wipe();
            self.cores[c].output.wipe();
        }
        self.crossbar.release();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Partial reconfiguration
    // ------------------------------------------------------------------

    /// Begins loading a partial bitstream into a core's reconfigurable
    /// region (paper §IX). The core is reserved for the duration — the
    /// scheduler will not dispatch to it — and comes back up with the
    /// bitstream's personality once the modeled load time elapses during
    /// [`tick`](Self::tick). Returns the load-time budget in cycles.
    ///
    /// Errors with [`MccpError::Busy`] if the core is mid-request or
    /// already reconfiguring.
    pub fn begin_reconfiguration(
        &mut self,
        core: usize,
        bitstream: Bitstream,
        source: BitstreamSource,
    ) -> Result<u64, MccpError> {
        if !self.cores[core].is_idle() || self.reconfigs[core].is_reconfiguring() {
            return Err(MccpError::Busy);
        }
        let personality = bitstream.personality;
        let budget = self.reconfigs[core]
            .begin(bitstream, source)
            .ok_or(MccpError::Busy)?;
        self.cores[core].reserve();
        self.reconfig_started[core] = self.cycle;
        self.telemetry
            .emit_with(self.cycle, || Event::ReconfigBegin {
                core,
                personality: personality.name(),
            });
        Ok(budget)
    }

    /// True while a core's reconfigurable region is being rewritten.
    pub fn is_reconfiguring(&self, core: usize) -> bool {
        self.reconfigs[core].is_reconfiguring()
    }
}
