//! A Cryptographic Core: the 8-bit controller, the Cryptographic Unit, the
//! packet FIFO pair and the parameter/result registers (paper Fig. 2),
//! glued together in lock step.

use crate::firmware::{in_port, out_port, FirmwareId};
use crate::key::KeyCache;
use mccp_aes::key_schedule::RoundKeys;
use mccp_cryptounit::{CipherEngine, CryptoUnit, CuIo};
use mccp_picoblaze::{PicoBlaze, PortIo};
use mccp_sim::HwFifo;

/// Firmware parameter bank: one byte per input port 0x01..=0x08
/// (`[np_lo, np_hi, na_lo, na_hi, pm_lo, pm_hi, tm_lo, tm_hi]`).
pub type ParamBank = [u8; 8];

/// What the reconfigurable Cryptographic Unit region currently contains
/// (paper §VII.B / Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Personality {
    /// The AES + GHASH unit running the block-cipher-mode firmware.
    AesUnit,
    /// The Twofish + GHASH unit (paper §IX: "AES core may be easily
    /// replaced by any other 128-bit block cipher (such as Twofish)").
    /// Runs the *same* firmware — the CU ISA is cipher-agnostic.
    TwofishUnit,
    /// The Whirlpool hash core (alternative bitstream).
    WhirlpoolUnit,
}

impl Personality {
    /// True if this personality executes the block-cipher-mode firmware.
    pub fn runs_mode_firmware(self) -> bool {
        matches!(self, Personality::AesUnit | Personality::TwofishUnit)
    }

    /// Static name, identical to the `Debug` rendering but allocation-free
    /// for hot telemetry paths.
    pub fn name(self) -> &'static str {
        match self {
            Personality::AesUnit => "AesUnit",
            Personality::TwofishUnit => "TwofishUnit",
            Personality::WhirlpoolUnit => "WhirlpoolUnit",
        }
    }
}

/// One Cryptographic Core.
pub struct CryptoCore {
    pub id: usize,
    cpu: PicoBlaze,
    cu: CryptoUnit,
    pub input: HwFifo,
    pub output: HwFifo,
    pub key_cache: KeyCache,
    params: ParamBank,
    result: Option<u8>,
    running: bool,
    /// Claimed by the Task Scheduler for a request whose key expansion is
    /// still in flight (allocated but not yet started).
    reserved: bool,
    firmware: Option<FirmwareId>,
    personality: Personality,
    wipes: u64,
    busy_cycles: u64,
    /// Remaining cycles of an injected clock stall: while positive the
    /// whole core — controller, CU and FIFO clocks — is frozen.
    stall: u64,
    /// Cycle at which the watchdog quarantined this core, if it has been.
    /// A quarantined core is skipped by the dispatcher until
    /// [`hard_reset`](Self::hard_reset) clears it.
    quarantined: Option<u64>,
}

impl CryptoCore {
    /// A fresh core with FIFOs of `fifo_depth` 32-bit words (512 in the
    /// paper's configuration).
    pub fn new(id: usize, fifo_depth: usize) -> Self {
        CryptoCore {
            id,
            cpu: PicoBlaze::new(&[]),
            cu: CryptoUnit::new(),
            input: HwFifo::new(fifo_depth),
            output: HwFifo::new(fifo_depth),
            key_cache: KeyCache::default(),
            params: [0; 8],
            result: None,
            running: false,
            reserved: false,
            firmware: None,
            personality: Personality::AesUnit,
            wipes: 0,
            busy_cycles: 0,
            stall: 0,
            quarantined: None,
        }
    }

    /// True when the core can accept a new task. Quarantined cores are
    /// never idle — the dispatcher must not allocate onto them.
    pub fn is_idle(&self) -> bool {
        !self.running && !self.reserved && self.quarantined.is_none()
    }

    /// Claims the core for a request before its firmware starts (the Task
    /// Scheduler allocates at ENCRYPT/DECRYPT time, §III.C).
    pub fn reserve(&mut self) {
        self.reserved = true;
    }

    /// The firmware currently loaded.
    pub fn firmware(&self) -> Option<FirmwareId> {
        self.firmware
    }

    /// The reconfigurable region's current contents.
    pub fn personality(&self) -> Personality {
        self.personality
    }

    /// Swaps the reconfigurable region (partial reconfiguration). Wipes
    /// all datapath state — a reconfiguration must never leak key material
    /// between personalities.
    pub fn set_personality(&mut self, p: Personality) {
        self.personality = p;
        self.cu.reset();
        self.key_cache.wipe();
        self.running = false;
        self.result = None;
        self.firmware = None;
    }

    /// Installs round keys into the Cryptographic Unit (from the Key
    /// Scheduler via the Key Cache).
    pub fn load_round_keys(&mut self, keys: RoundKeys) {
        self.cu.load_round_keys(keys);
    }

    /// Installs an arbitrary cipher engine (AES or Twofish) into the CU.
    pub fn load_engine(&mut self, engine: CipherEngine) {
        self.cu.load_engine(engine);
    }

    /// Loads a firmware image and task parameters, then starts the
    /// controller (the Task Scheduler's per-task setup, §VI.B).
    ///
    /// # Panics
    /// Panics if the core is reconfigured to a non-block-cipher personality.
    pub fn start(&mut self, firmware: FirmwareId, image: &[u32], params: ParamBank) {
        assert!(
            self.personality.runs_mode_firmware(),
            "core {} is reconfigured to {:?}; cannot run block-cipher firmware",
            self.id,
            self.personality
        );
        self.cpu.load_program(image);
        self.params = params;
        self.result = None;
        self.running = true;
        self.reserved = false;
        self.firmware = Some(firmware);
    }

    /// The latched result code, once the firmware reports.
    pub fn result(&self) -> Option<u8> {
        self.result
    }

    /// Acknowledges a finished task and returns the core to idle.
    pub fn finish(&mut self) -> Option<u8> {
        let r = self.result.take();
        self.running = false;
        self.reserved = false;
        self.firmware = None;
        r
    }

    /// Times the output FIFO was wiped by the auth-failure defense.
    pub fn wipes(&self) -> u64 {
        self.wipes
    }

    /// Cycles spent with a task loaded.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// True if either the controller or the CU flagged a fault.
    pub fn is_faulted(&self) -> bool {
        self.cpu.is_faulted() || self.cu.is_faulted()
    }

    /// Fault injection: wedges the controller mid-firmware (drives the
    /// PicoBlaze fault flag). Permanent until [`hard_reset`](Self::hard_reset).
    pub fn wedge(&mut self) {
        self.cpu.inject_fault();
    }

    /// Fault injection: freezes the core's clocks for `cycles` cycles.
    /// Stalls accumulate if injected while one is already in progress.
    pub fn stall(&mut self, cycles: u64) {
        self.stall = self.stall.saturating_add(cycles);
    }

    /// True while an injected clock stall is freezing the core.
    pub fn is_stalled(&self) -> bool {
        self.stall > 0
    }

    /// Quarantines the core at `cycle` (watchdog containment): the
    /// dispatcher treats it as permanently busy until a hard reset.
    pub fn quarantine(&mut self, cycle: u64) {
        self.quarantined = Some(cycle);
    }

    /// True while the core is fenced off from dispatch.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.is_some()
    }

    /// The cycle at which the core was quarantined, if it is.
    pub fn quarantined_at(&self) -> Option<u64> {
        self.quarantined
    }

    /// Full recovery reset: clears faults, stalls, quarantine, FIFOs, the
    /// key cache and any in-flight task. The core returns to the idle pool
    /// as if power-cycled; round keys must be re-expanded before reuse.
    pub fn hard_reset(&mut self) {
        self.cpu.reset();
        self.cu.reset();
        self.input.wipe();
        self.output.wipe();
        self.key_cache.wipe();
        self.result = None;
        self.running = false;
        self.reserved = false;
        self.firmware = None;
        self.stall = 0;
        self.quarantined = None;
    }

    /// Cryptographic Unit status (profiling/waveform introspection).
    pub fn cu_status(&self) -> mccp_cryptounit::CuStatus {
        self.cu.status()
    }

    /// Controller program counter (profiling/debug introspection).
    pub fn controller_pc(&self) -> u16 {
        self.cpu.pc()
    }

    /// Controller instructions retired (profiling/debug introspection).
    pub fn controller_retired(&self) -> u64 {
        self.cpu.retired()
    }

    /// True while the controller sleeps in a HALT (waiting on the CU).
    pub fn controller_sleeping(&self) -> bool {
        self.cpu.is_sleeping()
    }

    /// Cycles the controller has spent asleep in HALT (cumulative).
    pub fn controller_sleep_cycles(&self) -> u64 {
        self.cpu.sleep_cycles()
    }

    /// Cryptographic Unit retirements per ISA operation, indexed per
    /// `mccp_cryptounit::isa::MNEMONICS`.
    pub fn cu_op_counts(&self) -> &[u64; mccp_cryptounit::isa::OP_COUNT] {
        self.cu.op_counts()
    }

    /// Cycles this core's CU background AES engine spent computing.
    pub fn cu_aes_busy_cycles(&self) -> u64 {
        self.cu.aes_busy_cycles()
    }

    /// Cycles this core's CU background GHASH multiplier spent accumulating.
    pub fn cu_ghash_busy_cycles(&self) -> u64 {
        self.cu.ghash_busy_cycles()
    }

    /// Cycles a staged CU instruction waited on FIFO/mailbox resources.
    pub fn cu_fg_wait_cycles(&self) -> u64 {
        self.cu.fg_wait_cycles()
    }

    /// Conservative fast-forward horizon for the whole core (see
    /// `mccp_sim::Clocked`), given the occupancy of the inter-core
    /// mailboxes this core is wired to.
    pub fn quiescent_for(&self, from_left_full: bool, to_right_full: bool) -> u64 {
        // A stalled core is frozen solid: nothing observable happens until
        // the stall countdown runs out, so that span is exactly skippable.
        if self.stall > 0 {
            return self.stall;
        }
        let mut h = self.cu.quiescent_for(
            self.input.len(),
            self.output.free(),
            from_left_full,
            to_right_full,
        );
        if self.running {
            // The wake line is driven with `can_strobe` every tick; across
            // a quiescent span of the CU that level is frozen.
            h = h.min(self.cpu.quiescent_for(self.cu.can_strobe()));
        }
        h
    }

    /// Advances the core `n` cycles at once. Only valid for `n` up to the
    /// horizon just reported by [`CryptoCore::quiescent_for`].
    pub fn skip(&mut self, n: u64) {
        // Burn any stalled cycles first: the core is frozen through them,
        // so wall-clock advances but no component state does.
        let stalled = n.min(self.stall);
        self.stall -= stalled;
        if self.running {
            self.busy_cycles += stalled;
        }
        let n = n - stalled;
        if n == 0 {
            return;
        }
        self.cu.skip(n);
        if self.running {
            self.busy_cycles += n;
            // Mirror the per-tick wake-line drive (a frozen level).
            self.cpu.set_wake(self.cu.can_strobe());
            self.cpu.skip(n);
        }
    }

    /// Advances the core one clock cycle. `from_left` / `to_right` are the
    /// inter-core mailboxes this core is wired to.
    pub fn tick(&mut self, from_left: &mut Option<[u8; 16]>, to_right: &mut Option<[u8; 16]>) {
        // 0. Injected clock stall: the whole core is frozen this cycle.
        if self.stall > 0 {
            self.stall -= 1;
            if self.running {
                self.busy_cycles += 1;
            }
            return;
        }
        // 1. Cryptographic Unit.
        {
            let mut io = CuIo {
                input: &mut self.input,
                output: &mut self.output,
                to_right,
                from_left,
            };
            self.cu.tick(&mut io);
        }
        if !self.running {
            return;
        }
        self.busy_cycles += 1;

        // 2. Controller wake line: level = "instruction port free".
        self.cpu.set_wake(self.cu.can_strobe());

        // 3. Controller step with the port adapter.
        let mut ports = CorePorts {
            cu: &mut self.cu,
            output_fifo: &mut self.output,
            params: &self.params,
            result: &mut self.result,
            wipes: &mut self.wipes,
        };
        self.cpu.tick(&mut ports);
    }
}

/// The controller's port fabric (Fig. 2's dashed control connections).
struct CorePorts<'a> {
    cu: &'a mut CryptoUnit,
    output_fifo: &'a mut HwFifo,
    params: &'a ParamBank,
    result: &'a mut Option<u8>,
    wipes: &'a mut u64,
}

impl PortIo for CorePorts<'_> {
    fn input(&mut self, port: u8) -> u8 {
        match port {
            in_port::CU_STATUS => self.cu.status().0,
            p @ 0x01..=0x08 => self.params[(p - 1) as usize],
            _ => 0,
        }
    }

    fn output(&mut self, port: u8, value: u8) {
        match port {
            out_port::CU_INSTR => self.cu.strobe(value),
            out_port::RESULT => *self.result = Some(value),
            out_port::WIPE => {
                self.output_fifo.wipe();
                *self.wipes += 1;
            }
            out_port::MASK_LO => {
                let m = self.cu.mask();
                self.cu.set_mask((m & 0xFF00) | value as u16);
            }
            out_port::MASK_HI => {
                let m = self.cu.mask();
                self.cu.set_mask((m & 0x00FF) | ((value as u16) << 8));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firmware::{result_code, FirmwareLibrary};

    fn params(np: u16, na: u16, pm: u16, tm: u16) -> ParamBank {
        [
            (np & 0xFF) as u8,
            (np >> 8) as u8,
            (na & 0xFF) as u8,
            (na >> 8) as u8,
            (pm & 0xFF) as u8,
            (pm >> 8) as u8,
            (tm & 0xFF) as u8,
            (tm >> 8) as u8,
        ]
    }

    /// Runs a single core to completion on the CBC-MAC firmware and checks
    /// the MAC against the reference implementation.
    #[test]
    fn cbc_mac_firmware_end_to_end() {
        let lib = FirmwareLibrary::new();
        let mut core = CryptoCore::new(0, 512);
        let key = [0x11u8; 16];
        core.load_round_keys(RoundKeys::expand(&key));

        let data: Vec<u8> = (0..64u8).collect();
        assert!(core.input.push_bytes(&data));
        core.start(
            FirmwareId::CbcMac,
            lib.image(FirmwareId::CbcMac),
            params(4, 0, 0xFFFF, 0xFFFF),
        );

        let mut left = None;
        let mut right = None;
        for _ in 0..20_000 {
            core.tick(&mut left, &mut right);
            if core.result().is_some() {
                break;
            }
        }
        assert!(!core.is_faulted(), "core faulted");
        assert_eq!(core.result(), Some(result_code::OK));

        let aes = mccp_aes::Aes::new_128(&key);
        let expect = mccp_aes::modes::cbc_mac::cbc_mac_raw(&aes, &data).unwrap();
        let got = core.output.pop_bytes(16).unwrap();
        assert_eq!(got, expect.to_vec());
    }

    #[test]
    fn ctr_firmware_end_to_end() {
        let lib = FirmwareLibrary::new();
        let mut core = CryptoCore::new(0, 512);
        let key = [0x22u8; 16];
        core.load_round_keys(RoundKeys::expand(&key));

        let ctr0 = {
            let mut c = [0u8; 16];
            c[0] = 0xF0;
            c
        };
        let pt: Vec<u8> = (0..48u8).collect();
        assert!(core.input.push_bytes(&ctr0));
        assert!(core.input.push_bytes(&pt));
        // Trailing pad block for the firmware's pipelined final prefetch.
        assert!(core.input.push_bytes(&[0u8; 16]));
        core.start(
            FirmwareId::Ctr,
            lib.image(FirmwareId::Ctr),
            params(3, 0, 0xFFFF, 0xFFFF),
        );

        let (mut l, mut r) = (None, None);
        for _ in 0..20_000 {
            core.tick(&mut l, &mut r);
            if core.result().is_some() {
                break;
            }
        }
        assert!(!core.is_faulted());
        assert_eq!(core.result(), Some(result_code::OK));

        let aes = mccp_aes::Aes::new_128(&key);
        let mut expect = pt.clone();
        mccp_aes::modes::ctr::ctr_xcrypt(&aes, &ctr0, &mut expect).unwrap();
        let got = core.output.pop_bytes(48).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn reconfiguration_wipes_state() {
        let mut core = CryptoCore::new(1, 512);
        core.load_round_keys(RoundKeys::expand(&[1u8; 16]));
        core.set_personality(Personality::WhirlpoolUnit);
        assert_eq!(core.personality(), Personality::WhirlpoolUnit);
        assert!(core.is_idle());
        assert!(core.key_cache.cached_id().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot run block-cipher firmware")]
    fn start_on_whirlpool_personality_panics() {
        let lib = FirmwareLibrary::new();
        let mut core = CryptoCore::new(0, 512);
        core.set_personality(Personality::WhirlpoolUnit);
        core.start(
            FirmwareId::Ctr,
            lib.image(FirmwareId::Ctr),
            params(1, 0, 0xFFFF, 0xFFFF),
        );
    }

    /// The whole CBC-MAC firmware on a Twofish engine: the ISA really is
    /// cipher-agnostic (paper §IX).
    #[test]
    fn cbc_mac_firmware_runs_on_twofish() {
        use mccp_aes::twofish::Twofish;
        let lib = FirmwareLibrary::new();
        let mut core = CryptoCore::new(0, 512);
        core.set_personality(Personality::TwofishUnit);
        let key = [0x5Au8; 16];
        core.load_engine(CipherEngine::Twofish(Box::new(Twofish::new(&key))));

        let data: Vec<u8> = (0..64u8).collect();
        assert!(core.input.push_bytes(&data));
        core.start(
            FirmwareId::CbcMac,
            lib.image(FirmwareId::CbcMac),
            params(4, 0, 0xFFFF, 0xFFFF),
        );
        let (mut l, mut r) = (None, None);
        for _ in 0..30_000 {
            core.tick(&mut l, &mut r);
            if core.result().is_some() {
                break;
            }
        }
        assert!(!core.is_faulted());
        let tf = Twofish::new(&key);
        let expect = mccp_aes::modes::cbc_mac::cbc_mac_raw(&tf, &data).unwrap();
        assert_eq!(core.output.pop_bytes(16).unwrap(), expect.to_vec());
    }
}
