//! Packet formatting — the communication controller's half of the data
//! contract (paper §VI.B: "the communication controller must format data
//! prior to send them to the cryptographic cores": IV first, then packet
//! data, then the authentication tag).
//!
//! For each algorithm/direction this module builds the exact byte streams
//! the firmware expects in the input FIFO(s) (see [`crate::firmware`] for
//! the layouts), the parameter bank, and parses the output FIFO back into
//! ciphertext/plaintext + tag.
//!
//! Security note: everything here is computable *without* the session key
//! — the red/black boundary stays inside the MCCP. That is also why GCM is
//! limited to 96-bit IVs on this datapath: a non-96-bit IV would require
//! `GHASH_H(IV)` for `J0`, and `H` is key material the communication
//! controller must never see. (The reference implementation in `mccp-aes`
//! supports arbitrary IVs for comparison.)

use crate::core_unit::ParamBank;
use crate::firmware::FirmwareId;
use crate::protocol::{Algorithm, MccpError, Mode};
use mccp_aes::modes::ccm::{encode_aad_len, format_b0, format_counter, CcmParams};

/// Direction of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Encrypt,
    Decrypt,
}

/// Work for one Cryptographic Core.
#[derive(Clone, Debug)]
pub struct CoreJob {
    pub firmware: FirmwareId,
    pub params: ParamBank,
    /// The pre-formatted input-FIFO byte stream.
    pub stream: Vec<u8>,
    /// Bytes this core will deposit into its output FIFO.
    pub output_bytes: usize,
    /// True if this core's output FIFO carries the request's data.
    pub produces_output: bool,
}

/// A formatted request: one job (single core) or two (the CCM pair, in
/// pair order: `jobs[0]` runs on the *left* core, `jobs[1]` on the right —
/// the inter-core port points left → right).
#[derive(Clone, Debug)]
pub struct FormattedRequest {
    pub jobs: Vec<CoreJob>,
    pub payload_len: usize,
    pub tag_len: usize,
}

/// Zero-pads to a whole number of 16-byte blocks.
pub fn pad16(data: &[u8]) -> Vec<u8> {
    let mut v = data.to_vec();
    let rem = v.len() % 16;
    if rem != 0 {
        v.extend(std::iter::repeat_n(0u8, 16 - rem));
    }
    v
}

/// Number of 16-byte blocks covering `len` bytes.
pub fn blocks(len: usize) -> u16 {
    len.div_ceil(16) as u16
}

/// Byte mask keeping the first `k` bytes of a block (bit `15-j` gates byte
/// `j`). `k = 16` keeps everything.
pub fn byte_mask(k: usize) -> u16 {
    assert!((1..=16).contains(&k), "mask must keep 1..=16 bytes");
    if k == 16 {
        0xFFFF
    } else {
        !0u16 << (16 - k)
    }
}

/// Mask for the final block of a `len`-byte field (full mask when `len`
/// is block-aligned or empty).
pub fn final_block_mask(len: usize) -> u16 {
    if len == 0 || len.is_multiple_of(16) {
        0xFFFF
    } else {
        byte_mask(len % 16)
    }
}

fn param_bank(np: u16, na: u16, pm: u16, tm: u16) -> ParamBank {
    [
        (np & 0xFF) as u8,
        (np >> 8) as u8,
        (na & 0xFF) as u8,
        (na >> 8) as u8,
        (pm & 0xFF) as u8,
        (pm >> 8) as u8,
        (tm & 0xFF) as u8,
        (tm >> 8) as u8,
    ]
}

/// Builds GCM's pre-counter block `J0` for a 96-bit IV.
pub fn gcm_j0(iv: &[u8]) -> Result<[u8; 16], MccpError> {
    if iv.len() != 12 {
        return Err(MccpError::BadInstruction);
    }
    let mut j0 = [0u8; 16];
    j0[..12].copy_from_slice(iv);
    j0[15] = 1;
    Ok(j0)
}

/// The GHASH length block `len(A) || len(C)` in bits.
pub fn gcm_len_block(aad_len: usize, ct_len: usize) -> [u8; 16] {
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&((aad_len as u64) * 8).to_be_bytes());
    b[8..].copy_from_slice(&((ct_len as u64) * 8).to_be_bytes());
    b
}

/// The CCM authenticated prefix: `B0 · encoded(len(A)) · A`, zero-padded.
pub fn ccm_auth_blocks(ccm: &CcmParams, nonce: &[u8], aad: &[u8], payload_len: usize) -> Vec<u8> {
    let b0 = format_b0(ccm, nonce, aad.len(), payload_len);
    let mut v = Vec::with_capacity(16 + aad.len() + 16);
    v.extend_from_slice(&b0);
    if !aad.is_empty() {
        let mut a = encode_aad_len(aad.len());
        a.extend_from_slice(aad);
        v.extend_from_slice(&pad16(&a));
    }
    v
}

/// Formats a request into per-core jobs.
///
/// * `iv`: GCM — 12-byte IV; CCM — 7..13-byte nonce; CTR — 16-byte initial
///   counter; CBC-MAC — unused.
/// * `body`: plaintext (encrypt) or ciphertext (decrypt), true length.
/// * `tag`: the received tag (decrypt of authenticated modes only).
/// * `two_core`: use the two-core CCM schedule (ignored for other modes).
#[allow(clippy::too_many_arguments)] // mirrors the ENCRYPT/DECRYPT operand list
pub fn format_request(
    algorithm: Algorithm,
    direction: Direction,
    two_core: bool,
    iv: &[u8],
    aad: &[u8],
    body: &[u8],
    tag: Option<&[u8]>,
    tag_len: usize,
) -> Result<FormattedRequest, MccpError> {
    let np = blocks(body.len());
    let pm = final_block_mask(body.len());
    let padded_body = pad16(body);
    let decrypting = direction == Direction::Decrypt;
    if algorithm.is_authenticated() && !(1..=16).contains(&tag_len) {
        return Err(MccpError::BadInstruction);
    }
    if decrypting && algorithm.is_authenticated() && algorithm.mode() != Mode::CbcMac {
        let t = tag.ok_or(MccpError::BadInstruction)?;
        if t.len() != tag_len {
            return Err(MccpError::BadInstruction);
        }
    }

    let jobs = match (algorithm.mode(), direction) {
        (Mode::Gcm, dir) => {
            let j0 = gcm_j0(iv)?;
            let na = blocks(aad.len());
            let mut stream = Vec::with_capacity(16 * (2 + na as usize + np as usize) + 16);
            stream.extend_from_slice(&j0);
            stream.extend_from_slice(&pad16(aad));
            stream.extend_from_slice(&padded_body);
            stream.extend_from_slice(&gcm_len_block(aad.len(), body.len()));
            match dir {
                Direction::Encrypt => vec![CoreJob {
                    firmware: FirmwareId::GcmEnc,
                    params: param_bank(np, na, pm, 0xFFFF),
                    stream,
                    output_bytes: 16 * np as usize + 16,
                    produces_output: true,
                }],
                Direction::Decrypt => {
                    stream.extend_from_slice(&pad16(tag.expect("checked above")));
                    vec![CoreJob {
                        firmware: FirmwareId::GcmDec,
                        params: param_bank(np, na, pm, byte_mask(tag_len)),
                        stream,
                        output_bytes: 16 * np as usize,
                        produces_output: true,
                    }]
                }
            }
        }
        (Mode::Ccm, dir) => {
            let ccm = CcmParams {
                nonce_len: iv.len(),
                tag_len: if tag_len.is_multiple_of(2) {
                    tag_len
                } else {
                    tag_len + 1
                },
            };
            ccm.validate().map_err(|_| MccpError::BadInstruction)?;
            if (body.len() as u64) > ccm.max_payload() {
                return Err(MccpError::TooLarge);
            }
            let ctr0 = format_counter(&ccm, iv, 0);
            let auth = ccm_auth_blocks(&ccm, iv, aad, body.len());
            let na = blocks(auth.len());
            match (two_core, dir) {
                (false, Direction::Encrypt) => {
                    let mut stream = Vec::new();
                    stream.extend_from_slice(&ctr0);
                    stream.extend_from_slice(&auth);
                    stream.extend_from_slice(&padded_body);
                    stream.extend_from_slice(&ctr0);
                    vec![CoreJob {
                        firmware: FirmwareId::Ccm1Enc,
                        params: param_bank(np, na, pm, 0xFFFF),
                        stream,
                        output_bytes: 16 * np as usize + 16,
                        produces_output: true,
                    }]
                }
                (false, Direction::Decrypt) => {
                    let mut stream = Vec::new();
                    stream.extend_from_slice(&ctr0);
                    stream.extend_from_slice(&auth);
                    stream.extend_from_slice(&padded_body);
                    stream.extend_from_slice(&ctr0);
                    stream.extend_from_slice(&pad16(tag.expect("checked above")));
                    vec![CoreJob {
                        firmware: FirmwareId::Ccm1Dec,
                        params: param_bank(np, na, pm, byte_mask(tag_len)),
                        stream,
                        output_bytes: 16 * np as usize,
                        produces_output: true,
                    }]
                }
                (true, Direction::Encrypt) => {
                    // Left: CBC-MAC half (auth prefix + plaintext).
                    let mut cbc = Vec::new();
                    cbc.extend_from_slice(&auth);
                    cbc.extend_from_slice(&padded_body);
                    // Right: CTR half (counter + plaintext + counter).
                    let mut ctr = Vec::new();
                    ctr.extend_from_slice(&ctr0);
                    ctr.extend_from_slice(&padded_body);
                    ctr.extend_from_slice(&ctr0);
                    vec![
                        CoreJob {
                            firmware: FirmwareId::Ccm2CbcEnc,
                            params: param_bank(np, na, 0xFFFF, 0xFFFF),
                            stream: cbc,
                            output_bytes: 0,
                            produces_output: false,
                        },
                        CoreJob {
                            firmware: FirmwareId::Ccm2CtrEnc,
                            params: param_bank(np, 0, pm, 0xFFFF),
                            stream: ctr,
                            output_bytes: 16 * np as usize + 16,
                            produces_output: true,
                        },
                    ]
                }
                (true, Direction::Decrypt) => {
                    // Left: CTR half decrypts and forwards pt blocks.
                    let mut ctr = Vec::new();
                    ctr.extend_from_slice(&ctr0);
                    ctr.extend_from_slice(&padded_body);
                    ctr.extend_from_slice(&ctr0);
                    // Right: CBC half re-MACs and verdicts.
                    let mut cbc = Vec::new();
                    cbc.extend_from_slice(&auth);
                    cbc.extend_from_slice(&ctr0);
                    cbc.extend_from_slice(&pad16(tag.expect("checked above")));
                    vec![
                        CoreJob {
                            firmware: FirmwareId::Ccm2CtrDec,
                            params: param_bank(np, 0, pm, 0xFFFF),
                            stream: ctr,
                            output_bytes: 16 * np as usize,
                            produces_output: true,
                        },
                        CoreJob {
                            firmware: FirmwareId::Ccm2CbcDec,
                            params: param_bank(np, na, 0xFFFF, byte_mask(tag_len)),
                            stream: cbc,
                            output_bytes: 0,
                            produces_output: false,
                        },
                    ]
                }
            }
        }
        (Mode::Ctr, _) => {
            if iv.len() != 16 {
                return Err(MccpError::BadInstruction);
            }
            let mut stream = Vec::new();
            stream.extend_from_slice(iv);
            stream.extend_from_slice(&padded_body);
            // One trailing pad block feeds the firmware's pipelined final
            // LOAD prefetch (GCM uses the length block for this, CCM the
            // trailing counter copy).
            stream.extend_from_slice(&[0u8; 16]);
            vec![CoreJob {
                firmware: FirmwareId::Ctr,
                params: param_bank(np, 0, pm, 0xFFFF),
                stream,
                output_bytes: 16 * np as usize,
                produces_output: true,
            }]
        }
        (Mode::CbcMac, _) => {
            // Both directions compute the MAC; the consumer compares on
            // verify. Data is zero-padded per FIPS-113 practice.
            vec![CoreJob {
                firmware: FirmwareId::CbcMac,
                params: param_bank(np, 0, 0xFFFF, 0xFFFF),
                stream: padded_body,
                output_bytes: 16,
                produces_output: true,
            }]
        }
    };

    Ok(FormattedRequest {
        jobs,
        payload_len: body.len(),
        tag_len,
    })
}

/// A parsed output packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessedPacket {
    /// Ciphertext (encrypt) or plaintext (decrypt), true length.
    pub body: Vec<u8>,
    /// The (truncated) tag, for encrypt on authenticated modes and for
    /// CBC-MAC.
    pub tag: Option<Vec<u8>>,
}

/// Parses the producing core's output-FIFO bytes.
pub fn parse_output(
    algorithm: Algorithm,
    direction: Direction,
    payload_len: usize,
    tag_len: usize,
    raw: &[u8],
) -> ProcessedPacket {
    let npad = 16 * blocks(payload_len) as usize;
    match (algorithm.mode(), direction) {
        (Mode::Gcm | Mode::Ccm, Direction::Encrypt) => ProcessedPacket {
            body: raw[..payload_len].to_vec(),
            tag: Some(raw[npad..npad + tag_len].to_vec()),
        },
        (Mode::Gcm | Mode::Ccm, Direction::Decrypt) | (Mode::Ctr, _) => ProcessedPacket {
            body: raw[..payload_len].to_vec(),
            tag: None,
        },
        (Mode::CbcMac, _) => ProcessedPacket {
            body: Vec::new(),
            tag: Some(raw[..tag_len].to_vec()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_and_masks() {
        assert_eq!(pad16(&[1, 2, 3]).len(), 16);
        assert_eq!(pad16(&[0; 16]).len(), 16);
        assert_eq!(pad16(&[]).len(), 0);
        assert_eq!(blocks(0), 0);
        assert_eq!(blocks(1), 1);
        assert_eq!(blocks(16), 1);
        assert_eq!(blocks(17), 2);
        assert_eq!(byte_mask(16), 0xFFFF);
        assert_eq!(byte_mask(1), 0x8000);
        assert_eq!(byte_mask(12), 0xFFF0);
        assert_eq!(final_block_mask(0), 0xFFFF);
        assert_eq!(final_block_mask(32), 0xFFFF);
        assert_eq!(final_block_mask(33), 0x8000);
        assert_eq!(final_block_mask(47), 0xFFFE);
    }

    #[test]
    fn gcm_j0_layout() {
        let iv = [0xAB; 12];
        let j0 = gcm_j0(&iv).unwrap();
        assert_eq!(&j0[..12], &iv);
        assert_eq!(&j0[12..], &[0, 0, 0, 1]);
        assert!(gcm_j0(&[0u8; 8]).is_err());
    }

    #[test]
    fn gcm_len_block_layout() {
        let b = gcm_len_block(20, 60);
        assert_eq!(u64::from_be_bytes(b[..8].try_into().unwrap()), 160);
        assert_eq!(u64::from_be_bytes(b[8..].try_into().unwrap()), 480);
    }

    #[test]
    fn gcm_encrypt_stream_layout() {
        let r = format_request(
            Algorithm::AesGcm128,
            Direction::Encrypt,
            false,
            &[1u8; 12],
            &[2u8; 20],
            &[3u8; 50],
            None,
            16,
        )
        .unwrap();
        assert_eq!(r.jobs.len(), 1);
        let j = &r.jobs[0];
        // J0 + 2 AAD blocks + 4 PT blocks + LEN = 8 blocks.
        assert_eq!(j.stream.len(), 16 * 8);
        assert_eq!(j.params[0], 4); // np
        assert_eq!(j.params[2], 2); // na
        assert_eq!(j.output_bytes, 16 * 4 + 16);
        assert_eq!(j.firmware, FirmwareId::GcmEnc);
    }

    #[test]
    fn gcm_decrypt_requires_tag() {
        let e = format_request(
            Algorithm::AesGcm128,
            Direction::Decrypt,
            false,
            &[1u8; 12],
            &[],
            &[0u8; 16],
            None,
            16,
        );
        assert!(e.is_err());
    }

    #[test]
    fn ccm_two_core_jobs() {
        let r = format_request(
            Algorithm::AesCcm128,
            Direction::Encrypt,
            true,
            &[7u8; 7],
            b"hdr",
            &[9u8; 64],
            None,
            8,
        )
        .unwrap();
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.jobs[0].firmware, FirmwareId::Ccm2CbcEnc);
        assert_eq!(r.jobs[1].firmware, FirmwareId::Ccm2CtrEnc);
        assert!(!r.jobs[0].produces_output);
        assert!(r.jobs[1].produces_output);
        // CBC stream: B0 + 1 encoded-AAD block + 4 PT = 6 blocks.
        assert_eq!(r.jobs[0].stream.len(), 16 * 6);
        // CTR stream: CTR0 + 4 PT + CTR0 = 6 blocks.
        assert_eq!(r.jobs[1].stream.len(), 16 * 6);
    }

    #[test]
    fn ccm_two_core_decrypt_orientation() {
        let r = format_request(
            Algorithm::AesCcm128,
            Direction::Decrypt,
            true,
            &[7u8; 7],
            b"hdr",
            &[9u8; 32],
            Some(&[1u8; 8]),
            8,
        )
        .unwrap();
        assert_eq!(r.jobs[0].firmware, FirmwareId::Ccm2CtrDec);
        assert_eq!(r.jobs[1].firmware, FirmwareId::Ccm2CbcDec);
        assert!(r.jobs[0].produces_output);
    }

    #[test]
    fn ctr_requires_full_counter_block() {
        assert!(format_request(
            Algorithm::AesCtr128,
            Direction::Encrypt,
            false,
            &[0u8; 12],
            &[],
            &[1u8; 16],
            None,
            0,
        )
        .is_err());
    }

    #[test]
    fn parse_outputs() {
        // 20-byte payload → 2 padded blocks + tag block.
        let mut raw = vec![0u8; 48];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = i as u8;
        }
        let p = parse_output(Algorithm::AesGcm128, Direction::Encrypt, 20, 12, &raw);
        assert_eq!(p.body.len(), 20);
        assert_eq!(p.body[..4], [0, 1, 2, 3]);
        let tag = p.tag.unwrap();
        assert_eq!(tag.len(), 12);
        assert_eq!(tag[0], 32);

        let p = parse_output(Algorithm::AesCcm128, Direction::Decrypt, 20, 8, &raw[..32]);
        assert_eq!(p.body.len(), 20);
        assert!(p.tag.is_none());

        let p = parse_output(
            Algorithm::AesCbcMac128,
            Direction::Encrypt,
            0,
            16,
            &raw[..16],
        );
        assert!(p.body.is_empty());
        assert_eq!(p.tag.unwrap().len(), 16);
    }

    #[test]
    fn ccm_nonce_validation() {
        assert!(format_request(
            Algorithm::AesCcm128,
            Direction::Encrypt,
            false,
            &[0u8; 5],
            &[],
            &[1u8; 16],
            None,
            8,
        )
        .is_err());
    }
}
