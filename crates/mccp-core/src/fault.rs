//! Deterministic fault injection for the MCCP.
//!
//! The paper's Task Scheduler assumes cores are always healthy; this
//! module supplies the adversary that assumption needs to be tested
//! against. A [`FaultPlan`] is a seeded, reproducible schedule of
//! hardware failures — wedged controllers, frozen cores, flipped FIFO
//! bits, corrupted key caches, lost DMA words — each fired at a configured
//! cycle or packet point. [`Mccp::arm_faults`](crate::Mccp::arm_faults)
//! installs a plan; every injection is emitted as a telemetry
//! `FaultInjected` event so any downstream failure is attributable to its
//! cause.
//!
//! The plan is *data*, not behavior: with no plan armed the simulator
//! executes exactly the same instruction stream as before this module
//! existed (the cycle-identity suite pins that).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where in a run a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// When the engine clock reaches this absolute cycle.
    AtCycle(u64),
    /// When the `n`-th accepted submission (1-based) enters the engine.
    AtPacket(u64),
}

/// What breaks when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Drives the PicoBlaze fault flag: the controller halts mid-firmware
    /// and never reports a result (permanent until the core is reset).
    WedgeCore { core: usize },
    /// Freezes a whole core — controller, Cryptographic Unit and FIFO
    /// clocks — for `cycles` cycles. Short stalls recover on their own;
    /// stalls past the watchdog deadline get the core quarantined.
    StallCore { core: usize, cycles: u64 },
    /// Flips one bit of a word queued in a core FIFO. The hardware's
    /// per-word parity catches it and the request fails with
    /// [`MccpError::DataIntegrity`](crate::MccpError::DataIntegrity)
    /// instead of returning silently wrong bytes.
    FlipFifoBit {
        core: usize,
        /// `true` = output FIFO, `false` = input FIFO.
        output: bool,
        /// Bit position 0..32 within the queued word.
        bit: u8,
    },
    /// Marks a core's cached key schedule corrupt. The integrity check at
    /// the next dispatch to that core wipes the cache and rejects the
    /// submission with [`MccpError::KeyCorrupt`](crate::MccpError::KeyCorrupt);
    /// a retry re-expands from the write-protected Key Memory.
    CorruptKeyCache { core: usize },
    /// Loses one 32-bit word on the DMA bus into a core's input FIFO.
    /// The firmware starves waiting for data that never arrives and the
    /// watchdog fails the request at its deadline.
    DropDmaWord { core: usize },
    /// Cluster-level: the shard stops serving after `after_packets` more
    /// completions (a whole-engine outage). Ignored by a single [`Mccp`];
    /// consumed by `MccpCluster`, which redistributes the dead shard's
    /// queue.
    KillShard { shard: usize, after_packets: u64 },
}

impl FaultKind {
    /// The core an engine-level fault targets (`None` for shard kills).
    pub fn target_core(&self) -> Option<usize> {
        match *self {
            FaultKind::WedgeCore { core }
            | FaultKind::StallCore { core, .. }
            | FaultKind::FlipFifoBit { core, .. }
            | FaultKind::CorruptKeyCache { core }
            | FaultKind::DropDmaWord { core } => Some(core),
            FaultKind::KillShard { .. } => None,
        }
    }

    /// Short label for telemetry (`FaultInjected.fault`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WedgeCore { .. } => "wedge_core",
            FaultKind::StallCore { .. } => "stall_core",
            FaultKind::FlipFifoBit { .. } => "flip_fifo_bit",
            FaultKind::CorruptKeyCache { .. } => "corrupt_key_cache",
            FaultKind::DropDmaWord { .. } => "drop_dma_word",
            FaultKind::KillShard { .. } => "kill_shard",
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    pub trigger: FaultTrigger,
    pub kind: FaultKind,
}

/// A deterministic, seeded fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (arming it is a no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds one entry (builder style).
    pub fn with(mut self, trigger: FaultTrigger, kind: FaultKind) -> Self {
        self.entries.push(FaultEntry { trigger, kind });
        self
    }

    /// Generates a reproducible engine-level schedule: `faults` entries
    /// spread over `n_cores` cores, cycle triggers drawn from
    /// `1..cycle_horizon` and packet triggers from `1..=packet_horizon`.
    /// The same arguments always yield the same plan.
    pub fn random(
        seed: u64,
        faults: usize,
        n_cores: usize,
        cycle_horizon: u64,
        packet_horizon: u64,
    ) -> Self {
        assert!(n_cores >= 1, "at least one core");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::with_capacity(faults);
        for _ in 0..faults {
            let core = rng.gen_range(0..n_cores);
            let kind = match rng.gen_range(0..5u32) {
                0 => FaultKind::WedgeCore { core },
                1 => FaultKind::StallCore {
                    core,
                    cycles: rng.gen_range(1_000u64..200_000),
                },
                2 => FaultKind::FlipFifoBit {
                    core,
                    output: rng.gen_range(0..2u32) == 1,
                    bit: rng.gen_range(0..32u32) as u8,
                },
                3 => FaultKind::CorruptKeyCache { core },
                _ => FaultKind::DropDmaWord { core },
            };
            // Key-cache corruption is only observable at dispatch, so pin
            // it to a packet trigger; everything else can fire mid-flight.
            let trigger = match kind {
                FaultKind::CorruptKeyCache { .. } => {
                    FaultTrigger::AtPacket(rng.gen_range(1..=packet_horizon.max(1)))
                }
                _ => {
                    if rng.gen_range(0..2u32) == 0 {
                        FaultTrigger::AtCycle(rng.gen_range(1..cycle_horizon.max(2)))
                    } else {
                        FaultTrigger::AtPacket(rng.gen_range(1..=packet_horizon.max(1)))
                    }
                }
            };
            entries.push(FaultEntry { trigger, kind });
        }
        FaultPlan { entries }
    }

    /// The shard-kill entries (the cluster consumes these; a lone engine
    /// ignores them).
    pub fn shard_kills(&self) -> Vec<(usize, u64)> {
        self.entries
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::KillShard {
                    shard,
                    after_packets,
                } => Some((shard, after_packets)),
                _ => None,
            })
            .collect()
    }
}

/// The armed half of a plan inside a running engine: entries not yet
/// fired, plus the injection counter.
pub(crate) struct FaultState {
    pending: Vec<FaultEntry>,
    pub(crate) injected: u64,
}

impl FaultState {
    /// Arms a plan. Shard-kill entries are dropped here — they belong to
    /// the cluster dispatcher, not to a single engine.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        FaultState {
            pending: plan
                .entries
                .iter()
                .filter(|e| !matches!(e.kind, FaultKind::KillShard { .. }))
                .copied()
                .collect(),
            injected: 0,
        }
    }

    /// Removes and returns every entry due at or before `cycle`.
    pub(crate) fn take_due_cycle(&mut self, cycle: u64) -> Vec<FaultEntry> {
        let mut due = Vec::new();
        self.pending.retain(|e| match e.trigger {
            FaultTrigger::AtCycle(c) if c <= cycle => {
                due.push(*e);
                false
            }
            _ => true,
        });
        due
    }

    /// Removes and returns every entry due at or before accepted
    /// submission number `packet` (1-based).
    pub(crate) fn take_due_packet(&mut self, packet: u64) -> Vec<FaultEntry> {
        let mut due = Vec::new();
        self.pending.retain(|e| match e.trigger {
            FaultTrigger::AtPacket(p) if p <= packet => {
                due.push(*e);
                false
            }
            _ => true,
        });
        due
    }

    /// The earliest pending cycle trigger, if any — a bound the
    /// fast-forward horizon must not leap past.
    pub(crate) fn next_cycle_trigger(&self) -> Option<u64> {
        self.pending
            .iter()
            .filter_map(|e| match e.trigger {
                FaultTrigger::AtCycle(c) => Some(c),
                FaultTrigger::AtPacket(_) => None,
            })
            .min()
    }

    /// True when every entry has fired.
    pub(crate) fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8, 4, 100_000, 50);
        let b = FaultPlan::random(42, 8, 4, 100_000, 50);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), 8);
        let c = FaultPlan::random(43, 8, 4, 100_000, 50);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn random_plan_targets_valid_cores() {
        let plan = FaultPlan::random(7, 32, 3, 10_000, 20);
        for e in &plan.entries {
            let core = e.kind.target_core().expect("engine-level only");
            assert!(core < 3, "{e:?}");
            match e.trigger {
                FaultTrigger::AtCycle(c) => assert!((1..10_000).contains(&c)),
                FaultTrigger::AtPacket(p) => assert!((1..=20).contains(&p)),
            }
        }
    }

    #[test]
    fn state_fires_each_entry_once() {
        let plan = FaultPlan::new()
            .with(FaultTrigger::AtCycle(10), FaultKind::WedgeCore { core: 0 })
            .with(
                FaultTrigger::AtPacket(2),
                FaultKind::CorruptKeyCache { core: 1 },
            )
            .with(
                FaultTrigger::AtCycle(20),
                FaultKind::DropDmaWord { core: 2 },
            );
        let mut st = FaultState::new(&plan);
        assert_eq!(st.next_cycle_trigger(), Some(10));
        assert!(st.take_due_cycle(5).is_empty());
        assert_eq!(st.take_due_cycle(10).len(), 1);
        assert_eq!(st.next_cycle_trigger(), Some(20));
        assert_eq!(st.take_due_packet(2).len(), 1);
        assert!(st.take_due_packet(2).is_empty(), "fires once");
        assert_eq!(st.take_due_cycle(100).len(), 1);
        assert!(st.exhausted());
    }

    #[test]
    fn shard_kills_split_from_engine_entries() {
        let plan = FaultPlan::new()
            .with(
                FaultTrigger::AtPacket(1),
                FaultKind::KillShard {
                    shard: 1,
                    after_packets: 5,
                },
            )
            .with(FaultTrigger::AtCycle(9), FaultKind::WedgeCore { core: 0 });
        assert_eq!(plan.shard_kills(), vec![(1, 5)]);
        let st = FaultState::new(&plan);
        assert_eq!(st.pending.len(), 1, "kill entries stay with the cluster");
    }
}
