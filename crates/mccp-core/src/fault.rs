//! Deterministic fault injection for the MCCP.
//!
//! The paper's Task Scheduler assumes cores are always healthy; this
//! module supplies the adversary that assumption needs to be tested
//! against. A [`FaultPlan`] is a seeded, reproducible schedule of
//! hardware failures — wedged controllers, frozen cores, flipped FIFO
//! bits, corrupted key caches, lost DMA words — each fired at a configured
//! cycle or packet point. [`Mccp::arm_faults`](crate::Mccp::arm_faults)
//! installs a plan; every injection is emitted as a telemetry
//! `FaultInjected` event so any downstream failure is attributable to its
//! cause.
//!
//! The plan is *data*, not behavior: with no plan armed the simulator
//! executes exactly the same instruction stream as before this module
//! existed (the cycle-identity suite pins that).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where in a run a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// When the engine clock reaches this absolute cycle.
    AtCycle(u64),
    /// When the `n`-th accepted submission (1-based) enters the engine.
    AtPacket(u64),
}

/// What breaks when a fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Drives the PicoBlaze fault flag: the controller halts mid-firmware
    /// and never reports a result (permanent until the core is reset).
    WedgeCore { core: usize },
    /// Freezes a whole core — controller, Cryptographic Unit and FIFO
    /// clocks — for `cycles` cycles. Short stalls recover on their own;
    /// stalls past the watchdog deadline get the core quarantined.
    StallCore { core: usize, cycles: u64 },
    /// Flips one bit of a word queued in a core FIFO. The hardware's
    /// per-word parity catches it and the request fails with
    /// [`MccpError::DataIntegrity`](crate::MccpError::DataIntegrity)
    /// instead of returning silently wrong bytes.
    FlipFifoBit {
        core: usize,
        /// `true` = output FIFO, `false` = input FIFO.
        output: bool,
        /// Bit position 0..32 within the queued word.
        bit: u8,
    },
    /// Marks a core's cached key schedule corrupt. The integrity check at
    /// the next dispatch to that core wipes the cache and rejects the
    /// submission with [`MccpError::KeyCorrupt`](crate::MccpError::KeyCorrupt);
    /// a retry re-expands from the write-protected Key Memory.
    CorruptKeyCache { core: usize },
    /// Loses one 32-bit word on the DMA bus into a core's input FIFO.
    /// The firmware starves waiting for data that never arrives and the
    /// watchdog fails the request at its deadline.
    DropDmaWord { core: usize },
    /// Cluster-level: the shard stops serving after `after_packets` more
    /// completions (a whole-engine outage). Ignored by a single [`Mccp`];
    /// consumed by `MccpCluster`, which redistributes the dead shard's
    /// queue.
    KillShard { shard: usize, after_packets: u64 },
}

impl FaultKind {
    /// The core an engine-level fault targets (`None` for shard kills).
    pub fn target_core(&self) -> Option<usize> {
        match *self {
            FaultKind::WedgeCore { core }
            | FaultKind::StallCore { core, .. }
            | FaultKind::FlipFifoBit { core, .. }
            | FaultKind::CorruptKeyCache { core }
            | FaultKind::DropDmaWord { core } => Some(core),
            FaultKind::KillShard { .. } => None,
        }
    }

    /// Short label for telemetry (`FaultInjected.fault`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WedgeCore { .. } => "wedge_core",
            FaultKind::StallCore { .. } => "stall_core",
            FaultKind::FlipFifoBit { .. } => "flip_fifo_bit",
            FaultKind::CorruptKeyCache { .. } => "corrupt_key_cache",
            FaultKind::DropDmaWord { .. } => "drop_dma_word",
            FaultKind::KillShard { .. } => "kill_shard",
        }
    }

    /// Number of fault classes the seeded generators draw from.
    /// [`FaultKind::variant_index`] is the matching exhaustive match:
    /// adding a variant without teaching the generator about it fails to
    /// compile there, and the coverage test pins that every class is
    /// actually reachable from [`FaultPlan::random_with_shards`].
    pub const VARIANTS: u32 = 6;

    /// Stable index of this fault class in `0..VARIANTS`. The match is
    /// deliberately wildcard-free so a new variant cannot be added
    /// without extending the random generators in lock-step.
    pub fn variant_index(&self) -> u32 {
        match self {
            FaultKind::WedgeCore { .. } => 0,
            FaultKind::StallCore { .. } => 1,
            FaultKind::FlipFifoBit { .. } => 2,
            FaultKind::CorruptKeyCache { .. } => 3,
            FaultKind::DropDmaWord { .. } => 4,
            FaultKind::KillShard { .. } => 5,
        }
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    pub trigger: FaultTrigger,
    pub kind: FaultKind,
}

/// A deterministic, seeded fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (arming it is a no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds one entry (builder style).
    pub fn with(mut self, trigger: FaultTrigger, kind: FaultKind) -> Self {
        self.entries.push(FaultEntry { trigger, kind });
        self
    }

    /// Generates a reproducible engine-level schedule: `faults` entries
    /// spread over `n_cores` cores, cycle triggers drawn from
    /// `1..cycle_horizon` and packet triggers from `1..=packet_horizon`.
    /// The same arguments always yield the same plan. Every engine-level
    /// [`FaultKind`] is reachable; shard kills need a shard count, so use
    /// [`FaultPlan::random_with_shards`] for cluster soaks.
    pub fn random(
        seed: u64,
        faults: usize,
        n_cores: usize,
        cycle_horizon: u64,
        packet_horizon: u64,
    ) -> Self {
        FaultPlan::random_with_shards(seed, faults, n_cores, 0, cycle_horizon, packet_horizon)
    }

    /// Like [`FaultPlan::random`] but covering *every* [`FaultKind`],
    /// including cluster-level shard kills over `n_shards` shards (pass
    /// `0` to stay engine-level). The draw runs over
    /// `0..FaultKind::VARIANTS` and the constructor match is kept in sync
    /// by [`FaultKind::variant_index`]'s exhaustiveness, so a new fault
    /// class cannot be silently skipped by chaos soaks.
    pub fn random_with_shards(
        seed: u64,
        faults: usize,
        n_cores: usize,
        n_shards: usize,
        cycle_horizon: u64,
        packet_horizon: u64,
    ) -> Self {
        assert!(n_cores >= 1, "at least one core");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::with_capacity(faults);
        for _ in 0..faults {
            let core = rng.gen_range(0..n_cores);
            let mut pick = rng.gen_range(0..FaultKind::VARIANTS);
            if n_shards == 0 && pick == 5 {
                // No shards to kill: redraw among the engine-level kinds.
                pick = rng.gen_range(0..FaultKind::VARIANTS - 1);
            }
            let kind = match pick {
                0 => FaultKind::WedgeCore { core },
                1 => FaultKind::StallCore {
                    core,
                    cycles: rng.gen_range(1_000u64..200_000),
                },
                2 => FaultKind::FlipFifoBit {
                    core,
                    output: rng.gen_range(0..2u32) == 1,
                    bit: rng.gen_range(0..32u32) as u8,
                },
                3 => FaultKind::CorruptKeyCache { core },
                4 => FaultKind::DropDmaWord { core },
                _ => FaultKind::KillShard {
                    shard: rng.gen_range(0..n_shards),
                    after_packets: rng.gen_range(1..=packet_horizon.max(1)),
                },
            };
            debug_assert!(kind.variant_index() < FaultKind::VARIANTS);
            // Key-cache corruption is only observable at dispatch, so pin
            // it to a packet trigger; shard kills carry their own packet
            // count and the trigger is ignored by the cluster, but keep it
            // a packet trigger for symmetry. Everything else can fire
            // mid-flight.
            let trigger = match kind {
                FaultKind::CorruptKeyCache { .. } | FaultKind::KillShard { .. } => {
                    FaultTrigger::AtPacket(rng.gen_range(1..=packet_horizon.max(1)))
                }
                _ => {
                    if rng.gen_range(0..2u32) == 0 {
                        FaultTrigger::AtCycle(rng.gen_range(1..cycle_horizon.max(2)))
                    } else {
                        FaultTrigger::AtPacket(rng.gen_range(1..=packet_horizon.max(1)))
                    }
                }
            };
            entries.push(FaultEntry { trigger, kind });
        }
        FaultPlan { entries }
    }

    /// The shard-kill entries (the cluster consumes these; a lone engine
    /// ignores them).
    pub fn shard_kills(&self) -> Vec<(usize, u64)> {
        self.entries
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::KillShard {
                    shard,
                    after_packets,
                } => Some((shard, after_packets)),
                _ => None,
            })
            .collect()
    }
}

/// One attacker-shaped mutation of otherwise-legitimate traffic.
///
/// Where [`FaultKind`] models the *hardware* misbehaving, `AdversaryKind`
/// models the *network* misbehaving: frames that arrive tampered,
/// replayed, resized, or aimed at channels the attacker should not be
/// able to reach. Every class must be rejected with a typed error (or a
/// failed authentication with no plaintext released) and must burn no
/// nonce — the adversary harness in `mccp-sdr` asserts exactly that on
/// both engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryKind {
    /// XORs `xor` (never zero) into ciphertext byte `byte % len`:
    /// authenticated decryption must fail and release no plaintext.
    TamperCiphertext { byte: usize, xor: u8 },
    /// Flips bit `bit % (8 * tag_len)` of the authentication tag.
    FlipTagBit { bit: u8 },
    /// Resubmits an already-delivered frame unchanged — a replayed IV the
    /// receiver's replay window must reject before the engine sees it.
    ReplayFrame,
    /// Drops `bytes` (≥ 1) from the end of the ciphertext, keeping the
    /// original tag: the length is authenticated, so auth must fail.
    TruncateFrame { bytes: usize },
    /// Appends `bytes` (≥ 1) of `fill` to the ciphertext, keeping the
    /// original tag.
    ExtendFrame { bytes: usize, fill: u8 },
    /// Submits a frame tagged with the key epoch the channel already
    /// rotated past — rejected with
    /// [`MccpError::StaleEpoch`](crate::MccpError::StaleEpoch) before any
    /// core, IV, or nonce accounting happens.
    StaleEpochSubmit,
    /// Aims a frame at a forged or recycled channel id derived from
    /// `salt` — the generational id check must reject it even when the
    /// underlying slot has been reused by a new tenant.
    ForgeChannelId { salt: u64 },
}

impl AdversaryKind {
    /// Number of attack classes; [`AdversaryKind::variant_index`] is the
    /// matching exhaustive match, keeping [`AdversaryPlan::random`] in
    /// lock-step with the enum the same way [`FaultKind::VARIANTS`] does
    /// for hardware faults.
    pub const VARIANTS: u32 = 7;

    /// Stable index of this attack class in `0..VARIANTS` (wildcard-free
    /// match — extending the enum forces the generator to follow).
    pub fn variant_index(&self) -> u32 {
        match self {
            AdversaryKind::TamperCiphertext { .. } => 0,
            AdversaryKind::FlipTagBit { .. } => 1,
            AdversaryKind::ReplayFrame => 2,
            AdversaryKind::TruncateFrame { .. } => 3,
            AdversaryKind::ExtendFrame { .. } => 4,
            AdversaryKind::StaleEpochSubmit => 5,
            AdversaryKind::ForgeChannelId { .. } => 6,
        }
    }

    /// Short label for reports and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryKind::TamperCiphertext { .. } => "tamper_ciphertext",
            AdversaryKind::FlipTagBit { .. } => "flip_tag_bit",
            AdversaryKind::ReplayFrame => "replay_frame",
            AdversaryKind::TruncateFrame { .. } => "truncate_frame",
            AdversaryKind::ExtendFrame { .. } => "extend_frame",
            AdversaryKind::StaleEpochSubmit => "stale_epoch_submit",
            AdversaryKind::ForgeChannelId { .. } => "forge_channel_id",
        }
    }
}

/// A deterministic, seeded schedule of attack traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdversaryPlan {
    pub attacks: Vec<AdversaryKind>,
}

impl AdversaryPlan {
    /// An empty plan.
    pub fn new() -> Self {
        AdversaryPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Adds one attack (builder style).
    pub fn with(mut self, kind: AdversaryKind) -> Self {
        self.attacks.push(kind);
        self
    }

    /// Generates a reproducible attack schedule. The first
    /// [`AdversaryKind::VARIANTS`] entries walk every attack class once —
    /// so even a short plan exercises the whole surface — and the
    /// remainder draws uniformly. The same arguments always yield the
    /// same plan.
    pub fn random(seed: u64, attacks: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut list = Vec::with_capacity(attacks);
        for i in 0..attacks {
            let pick = if (i as u64) < AdversaryKind::VARIANTS as u64 {
                i as u32
            } else {
                rng.gen_range(0..AdversaryKind::VARIANTS)
            };
            let kind = match pick {
                0 => AdversaryKind::TamperCiphertext {
                    byte: rng.gen_range(0..4096),
                    xor: rng.gen_range(1..=255u32) as u8,
                },
                1 => AdversaryKind::FlipTagBit {
                    bit: rng.gen_range(0..128u32) as u8,
                },
                2 => AdversaryKind::ReplayFrame,
                3 => AdversaryKind::TruncateFrame {
                    bytes: rng.gen_range(1..=16),
                },
                4 => AdversaryKind::ExtendFrame {
                    bytes: rng.gen_range(1..=16),
                    fill: rng.gen_range(0..=255u32) as u8,
                },
                5 => AdversaryKind::StaleEpochSubmit,
                _ => AdversaryKind::ForgeChannelId {
                    salt: rng.gen_range(0..u64::MAX),
                },
            };
            debug_assert!(kind.variant_index() < AdversaryKind::VARIANTS);
            list.push(kind);
        }
        AdversaryPlan { attacks: list }
    }
}

/// The armed half of a plan inside a running engine: entries not yet
/// fired, plus the injection counter.
pub(crate) struct FaultState {
    pending: Vec<FaultEntry>,
    pub(crate) injected: u64,
}

impl FaultState {
    /// Arms a plan. Shard-kill entries are dropped here — they belong to
    /// the cluster dispatcher, not to a single engine.
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        FaultState {
            pending: plan
                .entries
                .iter()
                .filter(|e| !matches!(e.kind, FaultKind::KillShard { .. }))
                .copied()
                .collect(),
            injected: 0,
        }
    }

    /// Removes and returns every entry due at or before `cycle`.
    pub(crate) fn take_due_cycle(&mut self, cycle: u64) -> Vec<FaultEntry> {
        let mut due = Vec::new();
        self.pending.retain(|e| match e.trigger {
            FaultTrigger::AtCycle(c) if c <= cycle => {
                due.push(*e);
                false
            }
            _ => true,
        });
        due
    }

    /// Removes and returns every entry due at or before accepted
    /// submission number `packet` (1-based).
    pub(crate) fn take_due_packet(&mut self, packet: u64) -> Vec<FaultEntry> {
        let mut due = Vec::new();
        self.pending.retain(|e| match e.trigger {
            FaultTrigger::AtPacket(p) if p <= packet => {
                due.push(*e);
                false
            }
            _ => true,
        });
        due
    }

    /// The earliest pending cycle trigger, if any — a bound the
    /// fast-forward horizon must not leap past.
    pub(crate) fn next_cycle_trigger(&self) -> Option<u64> {
        self.pending
            .iter()
            .filter_map(|e| match e.trigger {
                FaultTrigger::AtCycle(c) => Some(c),
                FaultTrigger::AtPacket(_) => None,
            })
            .min()
    }

    /// True when every entry has fired.
    pub(crate) fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8, 4, 100_000, 50);
        let b = FaultPlan::random(42, 8, 4, 100_000, 50);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), 8);
        let c = FaultPlan::random(43, 8, 4, 100_000, 50);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn random_plan_targets_valid_cores() {
        let plan = FaultPlan::random(7, 32, 3, 10_000, 20);
        for e in &plan.entries {
            let core = e.kind.target_core().expect("engine-level only");
            assert!(core < 3, "{e:?}");
            match e.trigger {
                FaultTrigger::AtCycle(c) => assert!((1..10_000).contains(&c)),
                FaultTrigger::AtPacket(p) => assert!((1..=20).contains(&p)),
            }
        }
    }

    #[test]
    fn random_covers_every_engine_level_kind() {
        // Satellite contract: the seeded generator must be able to emit
        // every fault class, so chaos soaks can't silently skip one.
        let plan = FaultPlan::random(3, 512, 4, 100_000, 64);
        let mut seen = [false; FaultKind::VARIANTS as usize];
        for e in &plan.entries {
            seen[e.kind.variant_index() as usize] = true;
        }
        for (i, hit) in seen.iter().enumerate().take(5) {
            assert!(hit, "engine-level fault class {i} never generated");
        }
        assert!(!seen[5], "no shard kills when n_shards == 0");
    }

    #[test]
    fn random_with_shards_covers_every_kind() {
        let plan = FaultPlan::random_with_shards(3, 512, 4, 2, 100_000, 64);
        let mut seen = [false; FaultKind::VARIANTS as usize];
        for e in &plan.entries {
            seen[e.kind.variant_index() as usize] = true;
            if let FaultKind::KillShard { shard, .. } = e.kind {
                assert!(shard < 2, "{e:?}");
            }
        }
        for (i, hit) in seen.iter().enumerate() {
            assert!(hit, "fault class {i} never generated");
        }
        assert!(!plan.shard_kills().is_empty());
    }

    #[test]
    fn adversary_plans_are_deterministic_and_exhaustive() {
        let a = AdversaryPlan::random(11, 64);
        let b = AdversaryPlan::random(11, 64);
        assert_eq!(a, b);
        assert_ne!(a, AdversaryPlan::random(12, 64), "seeds diverge");
        // The leading deck walks every attack class once, so even the
        // shortest full plan exercises the whole surface.
        let short = AdversaryPlan::random(0, AdversaryKind::VARIANTS as usize);
        let mut seen = [false; AdversaryKind::VARIANTS as usize];
        for k in &short.attacks {
            seen[k.variant_index() as usize] = true;
        }
        for (i, hit) in seen.iter().enumerate() {
            assert!(hit, "attack class {i} never generated");
        }
        // Structural invariants the harness relies on.
        for k in a.attacks.iter().chain(&short.attacks) {
            match *k {
                AdversaryKind::TamperCiphertext { xor, .. } => assert_ne!(xor, 0),
                AdversaryKind::TruncateFrame { bytes }
                | AdversaryKind::ExtendFrame { bytes, .. } => assert!(bytes >= 1),
                _ => {}
            }
        }
    }

    #[test]
    fn state_fires_each_entry_once() {
        let plan = FaultPlan::new()
            .with(FaultTrigger::AtCycle(10), FaultKind::WedgeCore { core: 0 })
            .with(
                FaultTrigger::AtPacket(2),
                FaultKind::CorruptKeyCache { core: 1 },
            )
            .with(
                FaultTrigger::AtCycle(20),
                FaultKind::DropDmaWord { core: 2 },
            );
        let mut st = FaultState::new(&plan);
        assert_eq!(st.next_cycle_trigger(), Some(10));
        assert!(st.take_due_cycle(5).is_empty());
        assert_eq!(st.take_due_cycle(10).len(), 1);
        assert_eq!(st.next_cycle_trigger(), Some(20));
        assert_eq!(st.take_due_packet(2).len(), 1);
        assert!(st.take_due_packet(2).is_empty(), "fires once");
        assert_eq!(st.take_due_cycle(100).len(), 1);
        assert!(st.exhausted());
    }

    #[test]
    fn shard_kills_split_from_engine_entries() {
        let plan = FaultPlan::new()
            .with(
                FaultTrigger::AtPacket(1),
                FaultKind::KillShard {
                    shard: 1,
                    after_packets: 5,
                },
            )
            .with(FaultTrigger::AtCycle(9), FaultKind::WedgeCore { core: 0 });
        assert_eq!(plan.shard_kills(), vec![(1, 5)]);
        let st = FaultState::new(&plan);
        assert_eq!(st.pending.len(), 1, "kill entries stay with the cluster");
    }
}
