//! The communication controller's DMA paths: word-per-cycle upload into
//! the core input FIFOs (with backpressure accounting), the streaming
//! drain for oversize packets, and the DMA contributions to the
//! event-driven fast path (`quiescent` test and bulk `skip`).
//!
//! Split out of the `Mccp` monolith; every method here is an `impl Mccp`
//! block so the public API surface is unchanged.

use crate::mccp::Mccp;
use crate::scheduler::{ReqState, Request};
use mccp_telemetry::{Event, FifoPort};

/// One core's upload stream: `(core index, bytes, next offset, stalled)`.
/// `stalled` marks a stream currently refused by a full FIFO, so the
/// backpressure event fires once per stall instead of every cycle.
pub(crate) type PendingInput = (usize, Vec<u8>, usize, bool);

impl Mccp {
    /// One DMA cycle: pushes one 32-bit word per pending stream into its
    /// core's input FIFO (modeling the 32-bit data bus) and drains one
    /// output word for streaming requests.
    pub(crate) fn dma_cycle(&mut self) {
        for req in self.requests.values_mut() {
            if !matches!(req.state, ReqState::Running | ReqState::KeyWait(_)) {
                continue;
            }
            for (core, stream, offset, stalled) in req.pending_input.iter_mut() {
                if *offset < stream.len() {
                    let end = (*offset + 4).min(stream.len());
                    // Injected DMA loss: the word vanishes on the bus at
                    // the instant it would have transferred (the FIFO had
                    // space), keeping the tick and fast-forward schedules
                    // identical. The firmware starves on the missing word
                    // and the watchdog fails the request at its deadline.
                    if !self.pending_dma_drops.is_empty() && !self.cores[*core].input.is_full() {
                        if let Some(pos) = self.pending_dma_drops.iter().position(|d| d == core) {
                            self.pending_dma_drops.remove(pos);
                            *offset = end;
                            *stalled = false;
                            continue;
                        }
                    }
                    let mut w = [0u8; 4];
                    w[..end - *offset].copy_from_slice(&stream[*offset..end]);
                    if self.cores[*core].input.push(u32::from_be_bytes(w)) {
                        *offset = end;
                        *stalled = false;
                        // Architectural accumulator (published at snapshot):
                        // a registry lookup per word would dominate the
                        // observability overhead budget.
                        self.dma_words += 1;
                        if self.telemetry.is_enabled() && *offset == stream.len() {
                            // One push event per completed upload, not
                            // per word, to keep the log proportional to
                            // requests rather than bytes.
                            let level = self.cores[*core].input.len();
                            let core = *core;
                            self.telemetry.emit_with(self.cycle, || Event::FifoPush {
                                core,
                                port: FifoPort::Input,
                                level,
                            });
                        }
                    } else {
                        self.dma_backpressure_cycles += 1;
                        if !*stalled {
                            *stalled = true;
                            if self.telemetry.is_enabled() {
                                let core = *core;
                                self.telemetry.emit_with(self.cycle, || Event::FifoFull {
                                    core,
                                    port: FifoPort::Input,
                                });
                            }
                        }
                    }
                }
            }
            // Streaming drain for oversize packets only (standard packets
            // stay resident until RETRIEVE_DATA, preserving the
            // wipe-on-auth-failure defense).
            if req.streaming {
                if let Some(w) = self.cores[req.producing_core].output.pop() {
                    req.collected.extend_from_slice(&w.to_be_bytes());
                }
            }
        }
    }

    /// Whether a request's DMA machinery is provably idle for the next
    /// cycle: an upload stream with words left and FIFO space is active;
    /// a not-yet-stalled stream facing a full FIFO is active (it emits the
    /// `FifoFull` edge); a streaming request with resident output words
    /// drains one word per cycle.
    pub(crate) fn dma_is_quiescent(&self, req: &Request) -> bool {
        for (core, stream, offset, stalled) in &req.pending_input {
            if *offset < stream.len() {
                if self.cores[*core].input.free() > 0 {
                    return false;
                }
                if !*stalled {
                    // The stall edge (flag flip + backpressure accounting +
                    // optional FifoFull event) needs one live tick; the
                    // schedule is identical with telemetry on or off.
                    return false;
                }
            }
        }
        if req.streaming && !self.cores[req.producing_core].output.is_empty() {
            return false;
        }
        true
    }

    /// Bulk-advances the per-cycle DMA-backpressure counter for streams
    /// stalled on a full FIFO (the only DMA state that moves during a
    /// quiescent span).
    pub(crate) fn dma_skip(&mut self, n: u64) {
        let mut stalled_streams = 0u64;
        for req in self.requests.values() {
            if !matches!(req.state, ReqState::KeyWait(_) | ReqState::Running) {
                continue;
            }
            for (_, stream, offset, stalled) in &req.pending_input {
                if *offset < stream.len() && *stalled {
                    stalled_streams += 1;
                }
            }
        }
        self.dma_backpressure_cycles += stalled_streams * n;
    }
}
