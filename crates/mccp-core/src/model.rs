//! The closed-form performance model (paper §VII.A).
//!
//! The paper derives Table II's *theoretical* throughputs directly from
//! the mode-loop cycle budgets: `tput = 128 bits / T_loop × f`, with the
//! per-core figure floored to an integer Mbps and then multiplied by the
//! number of independently processing cores. This module reproduces that
//! arithmetic exactly and provides the paper's own reported numbers for
//! side-by-side comparison with the cycle-accurate simulator.

use mccp_aes::KeySize;
use mccp_cryptounit::timing::{t_cbc_loop, t_ccm_loop_1core, t_gcm_loop};
use mccp_sim::CLOCK_HZ;

/// The six Table II scheduling columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One GCM packet on one core.
    Gcm1Core,
    /// Four GCM packets on four cores.
    Gcm4x1,
    /// One CCM packet on one core (CTR + CBC interleaved).
    Ccm1Core,
    /// Four CCM packets on four cores.
    Ccm4x1,
    /// One CCM packet split across two cores (inter-core port).
    Ccm2Core,
    /// Two CCM packets, each on a two-core pair (four cores total).
    Ccm2x2,
}

impl Schedule {
    pub const ALL: [Schedule; 6] = [
        Schedule::Gcm1Core,
        Schedule::Gcm4x1,
        Schedule::Ccm1Core,
        Schedule::Ccm4x1,
        Schedule::Ccm2Core,
        Schedule::Ccm2x2,
    ];

    /// Steady-state cycles per 128-bit block for one packet stream.
    pub fn loop_cycles(self, key: KeySize) -> u32 {
        match self {
            Schedule::Gcm1Core | Schedule::Gcm4x1 => t_gcm_loop(key),
            Schedule::Ccm1Core | Schedule::Ccm4x1 => t_ccm_loop_1core(key),
            Schedule::Ccm2Core | Schedule::Ccm2x2 => t_cbc_loop(key),
        }
    }

    /// Number of independent packet streams in flight.
    pub fn streams(self) -> u32 {
        match self {
            Schedule::Gcm1Core | Schedule::Ccm1Core | Schedule::Ccm2Core => 1,
            Schedule::Ccm2x2 => 2,
            Schedule::Gcm4x1 | Schedule::Ccm4x1 => 4,
        }
    }

    /// Cores consumed.
    pub fn cores(self) -> u32 {
        match self {
            Schedule::Gcm1Core | Schedule::Ccm1Core => 1,
            Schedule::Ccm2Core => 2,
            Schedule::Gcm4x1 | Schedule::Ccm4x1 | Schedule::Ccm2x2 => 4,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Schedule::Gcm1Core => "GCM 1 core",
            Schedule::Gcm4x1 => "GCM 4x1 cores",
            Schedule::Ccm1Core => "CCM 1 core",
            Schedule::Ccm4x1 => "CCM 4x1 cores",
            Schedule::Ccm2Core => "CCM 2 cores",
            Schedule::Ccm2x2 => "CCM 2x2 cores",
        }
    }
}

/// Theoretical per-stream throughput in Mbps (un-floored).
pub fn stream_mbps(schedule: Schedule, key: KeySize) -> f64 {
    128.0 * CLOCK_HZ as f64 / schedule.loop_cycles(key) as f64 / 1e6
}

/// Table II "theoretical" entry: floor the per-stream Mbps, multiply by
/// the stream count — the paper's exact arithmetic.
pub fn theoretical_mbps(schedule: Schedule, key: KeySize) -> u32 {
    stream_mbps(schedule, key) as u32 * schedule.streams()
}

/// Modeled cost of one channel establishment: an ECC scalar
/// multiplication on the platform's asymmetric unit, expressed in MCCP
/// clock cycles so the scheduler can hide it behind live traffic.
///
/// The ECC-on-FPGA evaluation (Agarwal et al., arXiv:1401.3421) places a
/// GF(2^163) point multiplication at roughly two hundred microseconds on
/// embedded-class fabric — about 30–50× the MCCP's worst-case 2 KiB
/// GCM packet service time. At the paper's 190 MHz clock that ratio
/// lands the handshake at ~40k cycles, which is what we charge: long
/// enough that serializing establishments would visibly dent throughput,
/// short enough that a scheduler overlapping them with traffic hides the
/// cost entirely.
pub const ECC_SCALAR_MULT_CYCLES: u64 = 40_000;

/// Throughput of a finite packet given a measured per-packet overhead
/// (pre/post-loop cycles), for analysis and ablation.
pub fn packet_mbps(
    schedule: Schedule,
    key: KeySize,
    packet_bytes: usize,
    overhead_cycles: u32,
) -> f64 {
    let blocks = packet_bytes.div_ceil(16) as u64;
    let cycles = blocks * schedule.loop_cycles(key) as u64 + overhead_cycles as u64;
    let per_stream = (packet_bytes as f64 * 8.0) * CLOCK_HZ as f64 / cycles as f64 / 1e6;
    per_stream * schedule.streams() as f64
}

/// One row of the paper's Table II (throughputs in Mbps at 190 MHz,
/// `theoretical / 2 KB packet`).
#[derive(Clone, Copy, Debug)]
pub struct PaperTable2Row {
    pub key: KeySize,
    /// `[GCM 1, GCM 4x1, CCM 1, CCM 4x1, CCM 2, CCM 2x2]`, (theoretical, 2KB).
    pub entries: [(u32, u32); 6],
}

/// The paper's Table II, verbatim.
pub const PAPER_TABLE2: [PaperTable2Row; 3] = [
    PaperTable2Row {
        key: KeySize::Aes128,
        entries: [
            (496, 437),
            (1984, 1748),
            (233, 214),
            (932, 856),
            (442, 393),
            (884, 786),
        ],
    },
    PaperTable2Row {
        key: KeySize::Aes192,
        entries: [
            (426, 382),
            (1704, 1528),
            (202, 187),
            (808, 748),
            (386, 348),
            (772, 696),
        ],
    },
    PaperTable2Row {
        key: KeySize::Aes256,
        entries: [
            (374, 337),
            (1496, 1348),
            (178, 171),
            (712, 684),
            (342, 313),
            (684, 626),
        ],
    },
];

/// The paper's Table III comparison rows (Mbps/MHz, frequency, area).
#[derive(Clone, Copy, Debug)]
pub struct ComparisonRow {
    pub name: &'static str,
    pub platform: &'static str,
    pub programmable: bool,
    pub algorithm: &'static str,
    pub mbps_per_mhz: f64,
    pub frequency_mhz: u32,
    /// Slices (FPGA rows only).
    pub slices: Option<u32>,
    pub brams: Option<u32>,
}

/// Literature rows of Table III, verbatim.
pub const PAPER_TABLE3: [ComparisonRow; 5] = [
    ComparisonRow {
        name: "Cryptonite [4]",
        platform: "ASIC",
        programmable: true,
        algorithm: "ECB",
        mbps_per_mhz: 5.62,
        frequency_mhz: 400,
        slices: None,
        brams: None,
    },
    ComparisonRow {
        name: "Celator [15]",
        platform: "ASIC",
        programmable: true,
        algorithm: "CBC",
        mbps_per_mhz: 0.24,
        frequency_mhz: 190,
        slices: None,
        brams: None,
    },
    ComparisonRow {
        name: "Cryptomaniac [16]",
        platform: "ASIC",
        programmable: true,
        algorithm: "ECB",
        mbps_per_mhz: 1.42,
        frequency_mhz: 360,
        slices: None,
        brams: None,
    },
    ComparisonRow {
        name: "A. Aziz et al. [3]",
        platform: "x3s200-5",
        programmable: false,
        algorithm: "CCM",
        mbps_per_mhz: 2.78,
        frequency_mhz: 247,
        slices: Some(487),
        brams: Some(4),
    },
    ComparisonRow {
        name: "S. Lemsitzer et al. [1]",
        platform: "v4-FX100",
        programmable: false,
        algorithm: "GCM",
        mbps_per_mhz: 32.0,
        frequency_mhz: 140,
        slices: Some(6000),
        brams: Some(30),
    },
];

/// The paper's own Table III row ("Our work": GCM / CCM Mbps/MHz).
pub const PAPER_OUR_WORK: (f64, f64) = (9.91, 4.43);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_column_matches_paper_exactly() {
        for row in PAPER_TABLE2 {
            for (i, schedule) in Schedule::ALL.iter().enumerate() {
                let ours = theoretical_mbps(*schedule, row.key);
                let paper = row.entries[i].0;
                assert_eq!(
                    ours,
                    paper,
                    "{} @ {:?}: model {} vs paper {}",
                    schedule.label(),
                    row.key,
                    ours,
                    paper
                );
            }
        }
    }

    #[test]
    fn ccm_4x1_beats_2x2_but_doubles_latency() {
        // §VII.A: "AES-CCM 4x1 cores provides better throughput than
        // AES-CCM 2x2 cores ... However, latency of the first solution is
        // almost two times greater."
        for key in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let t4x1 = theoretical_mbps(Schedule::Ccm4x1, key);
            let t2x2 = theoretical_mbps(Schedule::Ccm2x2, key);
            assert!(t4x1 > t2x2, "{key:?}");
            // Per-packet latency ratio = loop-cycle ratio ≈ 104/55 ≈ 1.9.
            let ratio = Schedule::Ccm1Core.loop_cycles(key) as f64
                / Schedule::Ccm2Core.loop_cycles(key) as f64;
            assert!(ratio > 1.7 && ratio < 2.0, "{key:?}: {ratio}");
        }
    }

    #[test]
    fn max_throughput_is_1_7_gbps() {
        // Abstract: "a maximum throughput of 1.7 Gbps at 190 MHz" — the
        // 4x1 GCM-128 schedule on 2 KB packets (1748 Mbps measured, 1984
        // theoretical).
        assert!(theoretical_mbps(Schedule::Gcm4x1, KeySize::Aes128) >= 1700);
        let paper_2kb = PAPER_TABLE2[0].entries[1].1;
        assert_eq!(paper_2kb, 1748);
    }

    #[test]
    fn packet_throughput_grows_with_packet_size() {
        let small = packet_mbps(Schedule::Gcm1Core, KeySize::Aes128, 64, 851);
        let big = packet_mbps(Schedule::Gcm1Core, KeySize::Aes128, 2048, 851);
        assert!(big > small * 2.0, "small={small}, big={big}");
        // And approaches the theoretical bound from below.
        assert!(big < stream_mbps(Schedule::Gcm1Core, KeySize::Aes128));
    }

    #[test]
    fn paper_overhead_is_consistent() {
        // With the ~851-cycle overhead implied by the paper's 437 Mbps
        // 2 KB figure, the model reproduces that figure to within 1 Mbps.
        let mbps = packet_mbps(Schedule::Gcm1Core, KeySize::Aes128, 2048, 851);
        assert!((mbps - 437.0).abs() < 1.5, "got {mbps}");
    }

    #[test]
    fn comparison_table_sanity() {
        // The pipelined non-programmable GCM core leads Mbps/MHz; among
        // programmable designs, the MCCP's GCM figure leads.
        let lemsitzer = PAPER_TABLE3
            .iter()
            .find(|r| r.name.contains("Lemsitzer"))
            .unwrap();
        assert!(lemsitzer.mbps_per_mhz > PAPER_OUR_WORK.0);
        for row in PAPER_TABLE3.iter().filter(|r| r.programmable) {
            assert!(
                PAPER_OUR_WORK.0 > row.mbps_per_mhz,
                "MCCP should beat {}",
                row.name
            );
        }
    }
}
