//! The MCCP control protocol (paper §III.B).
//!
//! The communication controller drives the MCCP through a 32-bit
//! **Instruction Register** and reads results back from an 8-bit **Return
//! Register**, synchronized by *start*/*done* signals. Six instructions
//! exist: `OPEN`, `CLOSE`, `ENCRYPT`, `DECRYPT`, `RETRIEVE_DATA` and
//! `TRANSFER_DONE`. This module defines the instruction encoding, the
//! identifier types, the algorithm catalogue and the error codes.

use mccp_aes::KeySize;
use std::fmt;

/// A session-key slot in the Key Memory (written only by the platform's
/// main controller, never by the MCCP itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u8);

/// An open channel (algorithm + session key binding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u8);

/// An in-flight ENCRYPT/DECRYPT request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u16);

/// The block cipher a channel runs on (paper §IX: any 128-bit block
/// cipher can replace AES through partial reconfiguration; Twofish is the
/// paper's example and is fully implemented here).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CipherSel {
    Aes,
    Twofish,
}

/// Block-cipher mode of operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Galois/Counter Mode — authenticated encryption, pipeline-friendly.
    Gcm,
    /// Counter with CBC-MAC — authenticated encryption with a serial MAC.
    Ccm,
    /// Counter mode — confidentiality only.
    Ctr,
    /// CBC-MAC — authentication only.
    CbcMac,
}

/// An algorithm a channel can be opened with: mode × key size.
///
/// The paper's OPEN instruction carries an algorithm ID; these twelve cover
/// the supported mode/key-size grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    AesGcm128,
    AesGcm192,
    AesGcm256,
    AesCcm128,
    AesCcm192,
    AesCcm256,
    AesCtr128,
    AesCtr192,
    AesCtr256,
    AesCbcMac128,
    AesCbcMac192,
    AesCbcMac256,
}

impl Algorithm {
    /// All algorithms, in ID order.
    pub const ALL: [Algorithm; 12] = [
        Algorithm::AesGcm128,
        Algorithm::AesGcm192,
        Algorithm::AesGcm256,
        Algorithm::AesCcm128,
        Algorithm::AesCcm192,
        Algorithm::AesCcm256,
        Algorithm::AesCtr128,
        Algorithm::AesCtr192,
        Algorithm::AesCtr256,
        Algorithm::AesCbcMac128,
        Algorithm::AesCbcMac192,
        Algorithm::AesCbcMac256,
    ];

    /// The mode of operation.
    pub fn mode(self) -> Mode {
        use Algorithm::*;
        match self {
            AesGcm128 | AesGcm192 | AesGcm256 => Mode::Gcm,
            AesCcm128 | AesCcm192 | AesCcm256 => Mode::Ccm,
            AesCtr128 | AesCtr192 | AesCtr256 => Mode::Ctr,
            AesCbcMac128 | AesCbcMac192 | AesCbcMac256 => Mode::CbcMac,
        }
    }

    /// The AES key size.
    pub fn key_size(self) -> KeySize {
        use Algorithm::*;
        match self {
            AesGcm128 | AesCcm128 | AesCtr128 | AesCbcMac128 => KeySize::Aes128,
            AesGcm192 | AesCcm192 | AesCtr192 | AesCbcMac192 => KeySize::Aes192,
            AesGcm256 | AesCcm256 | AesCtr256 | AesCbcMac256 => KeySize::Aes256,
        }
    }

    /// Wire ID for the OPEN instruction.
    pub fn id(self) -> u8 {
        Self::ALL.iter().position(|&a| a == self).expect("in table") as u8
    }

    /// Decodes a wire ID.
    pub fn from_id(id: u8) -> Option<Algorithm> {
        Self::ALL.get(id as usize).copied()
    }

    /// Whether the mode authenticates (produces/validates a tag).
    pub fn is_authenticated(self) -> bool {
        matches!(self.mode(), Mode::Gcm | Mode::Ccm | Mode::CbcMac)
    }

    /// Static display name, identical to the [`fmt::Display`] rendering
    /// (e.g. `AES-128-GCM`) but allocation-free for hot telemetry paths.
    pub fn name(self) -> &'static str {
        use Algorithm::*;
        match self {
            AesGcm128 => "AES-128-GCM",
            AesGcm192 => "AES-192-GCM",
            AesGcm256 => "AES-256-GCM",
            AesCcm128 => "AES-128-CCM",
            AesCcm192 => "AES-192-CCM",
            AesCcm256 => "AES-256-CCM",
            AesCtr128 => "AES-128-CTR",
            AesCtr192 => "AES-192-CTR",
            AesCtr256 => "AES-256-CTR",
            AesCbcMac128 => "AES-128-CBC-MAC",
            AesCbcMac192 => "AES-192-CBC-MAC",
            AesCbcMac256 => "AES-256-CBC-MAC",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The six MCCP instructions with their operands (paper §III.B).
///
/// `header_size` / `data_size` are in bytes: the authenticated-only field
/// and the plaintext field respectively, exactly as the paper's ENCRYPT
/// operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MccpInstruction {
    Open {
        algorithm: Algorithm,
        key: KeyId,
    },
    Close {
        channel: ChannelId,
    },
    Encrypt {
        channel: ChannelId,
        header_size: u16,
        data_size: u16,
    },
    Decrypt {
        channel: ChannelId,
        header_size: u16,
        data_size: u16,
    },
    RetrieveData,
    TransferDone {
        request: RequestId,
    },
}

impl MccpInstruction {
    /// Encodes to the 32-bit Instruction Register format:
    ///
    /// ```text
    /// [31:28] opcode
    /// OPEN:      [27:20] algorithm  [19:12] key id
    /// CLOSE:     [27:20] channel
    /// ENC/DEC:   [27:22] channel    [21:11] header size  [10:0] data size
    /// TRANSFER:  [27:12] request id
    /// ```
    ///
    /// The 11-bit size fields carry byte counts up to the 2048-byte FIFO
    /// limit, as in the paper's 2 KB packet budget.
    pub fn encode(self) -> u32 {
        use MccpInstruction::*;
        match self {
            Open { algorithm, key } => {
                (0x1 << 28) | ((algorithm.id() as u32) << 20) | ((key.0 as u32) << 12)
            }
            Close { channel } => (0x2 << 28) | ((channel.0 as u32) << 20),
            Encrypt {
                channel,
                header_size,
                data_size,
            } => {
                (0x3 << 28)
                    | (((channel.0 as u32) & 0x3F) << 22)
                    | (((header_size as u32) & 0x7FF) << 11)
                    | ((data_size as u32) & 0x7FF)
            }
            Decrypt {
                channel,
                header_size,
                data_size,
            } => {
                (0x4 << 28)
                    | (((channel.0 as u32) & 0x3F) << 22)
                    | (((header_size as u32) & 0x7FF) << 11)
                    | ((data_size as u32) & 0x7FF)
            }
            RetrieveData => 0x5 << 28,
            TransferDone { request } => (0x6 << 28) | ((request.0 as u32) << 12),
        }
    }

    /// Decodes from the Instruction Register.
    pub fn decode(word: u32) -> Option<MccpInstruction> {
        use MccpInstruction::*;
        match word >> 28 {
            0x1 => Some(Open {
                algorithm: Algorithm::from_id(((word >> 20) & 0xFF) as u8)?,
                key: KeyId(((word >> 12) & 0xFF) as u8),
            }),
            0x2 => Some(Close {
                channel: ChannelId(((word >> 20) & 0xFF) as u8),
            }),
            0x3 => Some(Encrypt {
                channel: ChannelId(((word >> 22) & 0x3F) as u8),
                header_size: ((word >> 11) & 0x7FF) as u16,
                data_size: (word & 0x7FF) as u16,
            }),
            0x4 => Some(Decrypt {
                channel: ChannelId(((word >> 22) & 0x3F) as u8),
                header_size: ((word >> 11) & 0x7FF) as u16,
                data_size: (word & 0x7FF) as u16,
            }),
            0x5 => Some(RetrieveData),
            0x6 => Some(TransferDone {
                request: RequestId(((word >> 12) & 0xFFFF) as u16),
            }),
            _ => None,
        }
    }
}

/// Return-register codes (8-bit).
pub mod ret {
    pub const OK: u8 = 0x00;
    pub const AUTH_FAIL: u8 = 0x01;
    pub const ERR_NO_RESOURCE: u8 = 0xF0;
    pub const ERR_BAD_CHANNEL: u8 = 0xF1;
    pub const ERR_BAD_KEY: u8 = 0xF2;
    pub const ERR_BUSY: u8 = 0xF3;
    pub const ERR_TOO_LARGE: u8 = 0xF4;
    pub const ERR_CORE_FAULT: u8 = 0xF5;
    pub const ERR_DEADLINE: u8 = 0xF6;
    pub const ERR_INTEGRITY: u8 = 0xF7;
    pub const ERR_KEY_CORRUPT: u8 = 0xF8;
    pub const ERR_STALE_EPOCH: u8 = 0xF9;
    pub const ERR_HANDSHAKE_PENDING: u8 = 0xFA;
    pub const ERR_BAD_INSTRUCTION: u8 = 0xFF;
}

/// MCCP-level errors, mirroring the return-register error codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MccpError {
    /// No idle Cryptographic Core (the paper's "error flag if no more
    /// resources are available").
    NoResource,
    /// Unknown or closed channel.
    BadChannel,
    /// Key ID not present in the Key Memory.
    BadKey,
    /// Request/target busy or in a wrong state.
    Busy,
    /// Packet exceeds the FIFO capacity.
    TooLarge,
    /// Authentication tag mismatch (DECRYPT + RETRIEVE_DATA path).
    AuthFail,
    /// All channel IDs are in use.
    NoChannelId,
    /// Malformed instruction word.
    BadInstruction,
    /// A Cryptographic Core faulted mid-request (wedged controller or
    /// Cryptographic Unit fault); the core is quarantined.
    CoreFault,
    /// The per-request watchdog deadline expired (stalled or starved
    /// core); the involved cores are quarantined.
    Deadline,
    /// A FIFO parity check failed — the data was corrupted in flight and
    /// the output has been wiped rather than returned wrong.
    DataIntegrity,
    /// A core's Key Cache failed its integrity check; the cache has been
    /// wiped and a resubmission re-expands from the Key Memory.
    KeyCorrupt,
    /// The submission was tagged with a key epoch the channel has already
    /// rotated past. Rejected before any core, IV or nonce accounting is
    /// touched — a replayed or attacker-delayed frame burns nothing.
    StaleEpoch,
    /// The channel's modeled asymmetric establishment (ECC scalar
    /// multiplication) has not completed yet; resubmit after the engine
    /// advances past the handshake horizon.
    HandshakePending,
}

impl MccpError {
    /// The return-register code for this error.
    pub fn code(self) -> u8 {
        match self {
            MccpError::NoResource | MccpError::NoChannelId => ret::ERR_NO_RESOURCE,
            MccpError::BadChannel => ret::ERR_BAD_CHANNEL,
            MccpError::BadKey => ret::ERR_BAD_KEY,
            MccpError::Busy => ret::ERR_BUSY,
            MccpError::TooLarge => ret::ERR_TOO_LARGE,
            MccpError::AuthFail => ret::AUTH_FAIL,
            MccpError::BadInstruction => ret::ERR_BAD_INSTRUCTION,
            MccpError::CoreFault => ret::ERR_CORE_FAULT,
            MccpError::Deadline => ret::ERR_DEADLINE,
            MccpError::DataIntegrity => ret::ERR_INTEGRITY,
            MccpError::KeyCorrupt => ret::ERR_KEY_CORRUPT,
            MccpError::StaleEpoch => ret::ERR_STALE_EPOCH,
            MccpError::HandshakePending => ret::ERR_HANDSHAKE_PENDING,
        }
    }

    /// True for the fault-plane errors a cluster may recover from by
    /// retrying on another core or shard (transient or contained faults,
    /// as opposed to protocol misuse like [`MccpError::BadChannel`]).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            MccpError::CoreFault
                | MccpError::Deadline
                | MccpError::DataIntegrity
                | MccpError::KeyCorrupt
        )
    }
}

impl fmt::Display for MccpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MccpError::NoResource => "no idle cryptographic core",
            MccpError::BadChannel => "unknown channel",
            MccpError::BadKey => "unknown key id",
            MccpError::Busy => "resource busy",
            MccpError::TooLarge => "packet exceeds FIFO capacity",
            MccpError::AuthFail => "authentication failed",
            MccpError::NoChannelId => "channel table full",
            MccpError::BadInstruction => "malformed instruction",
            MccpError::CoreFault => "cryptographic core faulted",
            MccpError::Deadline => "watchdog deadline exceeded",
            MccpError::DataIntegrity => "FIFO parity error: data corrupted in flight",
            MccpError::KeyCorrupt => "key cache integrity check failed",
            MccpError::StaleEpoch => "submission tagged with a retired key epoch",
            MccpError::HandshakePending => "channel establishment (handshake) still in progress",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MccpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_table_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::from_id(alg.id()), Some(alg));
        }
        assert_eq!(Algorithm::from_id(200), None);
    }

    #[test]
    fn algorithm_properties() {
        assert_eq!(Algorithm::AesGcm128.mode(), Mode::Gcm);
        assert_eq!(Algorithm::AesCcm256.key_size(), KeySize::Aes256);
        assert!(Algorithm::AesCcm128.is_authenticated());
        assert!(!Algorithm::AesCtr128.is_authenticated());
        assert_eq!(Algorithm::AesGcm192.to_string(), "AES-192-GCM");
    }

    #[test]
    fn static_names_cover_the_mode_keysize_grid() {
        for alg in Algorithm::ALL {
            let mode = match alg.mode() {
                Mode::Gcm => "GCM",
                Mode::Ccm => "CCM",
                Mode::Ctr => "CTR",
                Mode::CbcMac => "CBC-MAC",
            };
            let expect = format!("AES-{}-{}", alg.key_size().key_bits(), mode);
            assert_eq!(alg.name(), expect);
            assert_eq!(alg.to_string(), expect);
        }
    }

    #[test]
    fn instruction_encoding_roundtrip() {
        let samples = [
            MccpInstruction::Open {
                algorithm: Algorithm::AesCcm192,
                key: KeyId(7),
            },
            MccpInstruction::Close {
                channel: ChannelId(3),
            },
            MccpInstruction::Encrypt {
                channel: ChannelId(5),
                header_size: 60,
                data_size: 1500,
            },
            MccpInstruction::Decrypt {
                channel: ChannelId(63),
                header_size: 2047,
                data_size: 0,
            },
            MccpInstruction::RetrieveData,
            MccpInstruction::TransferDone {
                request: RequestId(0xBEEF),
            },
        ];
        for ins in samples {
            assert_eq!(MccpInstruction::decode(ins.encode()), Some(ins), "{ins:?}");
        }
    }

    #[test]
    fn bad_opcode_decodes_none() {
        assert_eq!(MccpInstruction::decode(0x0), None);
        assert_eq!(MccpInstruction::decode(0xF << 28), None);
    }

    #[test]
    fn error_codes_distinct_from_ok() {
        for e in [
            MccpError::NoResource,
            MccpError::BadChannel,
            MccpError::BadKey,
            MccpError::Busy,
            MccpError::TooLarge,
            MccpError::AuthFail,
            MccpError::BadInstruction,
        ] {
            assert_ne!(e.code(), ret::OK);
        }
    }
}
