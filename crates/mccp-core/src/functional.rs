//! The fast functional mode: the MCCP's *architecture* (independent cores
//! consuming a multi-channel packet stream) mapped onto OS threads, with
//! the reference `mccp-aes` implementations as the datapath.
//!
//! Bit-identical results to the cycle-accurate simulator, no cycle
//! accounting — this is what the Criterion wall-clock benchmarks drive,
//! and it doubles as a loosely coupled work-queue demonstration: one
//! crossbeam channel feeds `n` workers (the Task Scheduler's first-idle
//! dispatch degenerates to work stealing from a shared queue), each worker
//! owns a private key cache (its Key Cache), and results flow back over a
//! second channel.

use crate::backend::{ChannelBackend, Completion, EngineHealth};
use crate::fault::{FaultKind, FaultPlan, FaultTrigger};
use crate::format::Direction;
use crate::pipeline::{run_stages_functional, PipelineGraph, PipelineKind};
use crate::protocol::{Algorithm, ChannelId, MccpError, Mode, RequestId};
use crate::warmcache::{WarmCache, WarmStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use mccp_aes::modes::{
    cbc_mac, ccm_open_detached, ccm_seal, ctr_xcrypt, CcmParams, GcmContext, ModeError,
};
use mccp_aes::Aes;
use mccp_telemetry::{Event, Snapshot, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One packet's worth of work.
#[derive(Clone, Debug)]
pub struct PacketJob {
    pub id: u64,
    pub algorithm: Algorithm,
    pub direction: Direction,
    pub key: Vec<u8>,
    pub iv: Vec<u8>,
    pub aad: Vec<u8>,
    /// Plaintext (encrypt) or ciphertext (decrypt).
    pub body: Vec<u8>,
    /// Received tag (decrypt of authenticated modes).
    pub tag: Option<Vec<u8>>,
    pub tag_len: usize,
}

/// The outcome of one job.
#[derive(Clone, Debug)]
pub struct PacketOutcome {
    pub id: u64,
    /// Worker that processed the packet (which "core").
    pub core: usize,
    /// `body || tag` for encryption, plaintext for decryption; or the
    /// mode error (e.g. `AuthFail`).
    pub result: Result<Vec<u8>, ModeError>,
}

/// A Key Cache entry: the expanded AES key schedule plus, lazily, the GCM
/// hash-key powers `H^1..H^8`.
///
/// Building the GHASH tables costs far more than a packet's worth of field
/// multiplications, so it must happen once per key, not once per packet —
/// exactly like the hardware, where the Key Scheduler expands a key into
/// the Key Cache when the channel opens, not on every frame.
struct KeyCtx {
    aes: Aes,
    gcm: Option<GcmContext<Aes>>,
}

impl KeyCtx {
    fn new(key: &[u8]) -> Self {
        KeyCtx {
            aes: Aes::new(key),
            gcm: None,
        }
    }

    /// The GCM context for this key, built on first GCM packet.
    fn gcm(&mut self) -> &GcmContext<Aes> {
        self.gcm
            .get_or_insert_with(|| GcmContext::new(self.aes.clone()))
    }
}

/// The mode dispatch shared by the worker pool and [`FunctionalBackend`]:
/// one packet through the reference implementation of its mode, using the
/// per-key cached state (key schedule + GHASH powers) in `ctx`.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    ctx: &mut KeyCtx,
    algorithm: Algorithm,
    direction: Direction,
    iv: &[u8],
    aad: &[u8],
    body: &[u8],
    tag: Option<&[u8]>,
    tag_len: usize,
) -> Result<Vec<u8>, ModeError> {
    let tag = tag.unwrap_or(&[]);
    match (algorithm.mode(), direction) {
        (Mode::Gcm, Direction::Encrypt) => ctx.gcm().seal(iv, aad, body, tag_len),
        (Mode::Gcm, Direction::Decrypt) => ctx.gcm().open_detached(iv, aad, body, tag),
        (Mode::Ccm, dir) => {
            let params = CcmParams {
                nonce_len: iv.len(),
                tag_len,
            };
            match dir {
                Direction::Encrypt => ccm_seal(&ctx.aes, &params, iv, aad, body),
                Direction::Decrypt => ccm_open_detached(&ctx.aes, &params, iv, aad, body, tag),
            }
        }
        (Mode::Ctr, _) => {
            let mut body = body.to_vec();
            let ctr0: [u8; 16] = iv
                .try_into()
                .map_err(|_| ModeError::InvalidParams("CTR needs a 16-byte counter"))?;
            ctr_xcrypt(&ctx.aes, &ctr0, &mut body)?;
            Ok(body)
        }
        (Mode::CbcMac, _) => cbc_mac(&ctx.aes, body, tag_len),
    }
}

/// Default warm-set bound for key contexts: far above any batch
/// workload's key count, far below a million-channel service's — idle
/// channels' schedules age out instead of pinning memory.
pub const DEFAULT_KEY_CACHE_CAPACITY: usize = 4096;

fn process(job: &PacketJob, cache: &mut WarmCache<Vec<u8>, KeyCtx>) -> Result<Vec<u8>, ModeError> {
    let ctx = cache.get_or_insert_with(&job.key, || KeyCtx::new(&job.key));
    run_mode(
        ctx,
        job.algorithm,
        job.direction,
        &job.iv,
        &job.aad,
        &job.body,
        job.tag.as_deref(),
        job.tag_len,
    )
}

/// The thread-parallel MCCP.
pub struct ParallelMccp {
    job_tx: Option<Sender<PacketJob>>,
    outcome_rx: Receiver<PacketOutcome>,
    workers: Vec<JoinHandle<()>>,
    n_workers: usize,
    /// Packets processed per worker (relaxed counters; exact once the
    /// batch has been fully collected).
    packet_counts: Arc<Vec<AtomicU64>>,
}

impl ParallelMccp {
    /// Spawns `n_cores` worker threads.
    ///
    /// # Panics
    /// Panics if `n_cores` is zero.
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores >= 1, "at least one core");
        let (job_tx, job_rx) = unbounded::<PacketJob>();
        let (outcome_tx, outcome_rx) = unbounded::<PacketOutcome>();
        let packet_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..n_cores).map(|_| AtomicU64::new(0)).collect());
        let workers = (0..n_cores)
            .map(|core| {
                let rx: Receiver<PacketJob> = job_rx.clone();
                let tx = outcome_tx.clone();
                let counts = Arc::clone(&packet_counts);
                std::thread::Builder::new()
                    .name(format!("mccp-core-{core}"))
                    .spawn(move || {
                        // Per-core key cache, like the hardware Key Cache:
                        // bounded, LRU — idle keys' schedules age out.
                        let mut cache: WarmCache<Vec<u8>, KeyCtx> =
                            WarmCache::new(DEFAULT_KEY_CACHE_CAPACITY);
                        while let Ok(job) = rx.recv() {
                            let result = process(&job, &mut cache);
                            counts[core].fetch_add(1, Ordering::Relaxed);
                            if tx
                                .send(PacketOutcome {
                                    id: job.id,
                                    core,
                                    result,
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        ParallelMccp {
            job_tx: Some(job_tx),
            outcome_rx,
            workers,
            n_workers: n_cores,
            packet_counts,
        }
    }

    /// Worker count.
    pub fn n_cores(&self) -> usize {
        self.n_workers
    }

    /// Packets processed so far, per worker (the functional-mode analogue
    /// of the simulator's per-core utilization telemetry). Exact after the
    /// batch's outcomes have all been collected.
    pub fn per_core_packets(&self) -> Vec<u64> {
        self.packet_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Enqueues a job (non-blocking).
    pub fn submit(&self, job: PacketJob) {
        self.job_tx
            .as_ref()
            .expect("not shut down")
            .send(job)
            .expect("workers alive");
    }

    /// Receives one outcome, blocking.
    pub fn collect_one(&self) -> PacketOutcome {
        self.outcome_rx.recv().expect("workers alive")
    }

    /// Processes a batch and returns outcomes sorted by job id.
    pub fn process_batch(&self, jobs: Vec<PacketJob>) -> Vec<PacketOutcome> {
        let n = jobs.len();
        for job in jobs {
            self.submit(job);
        }
        let mut out: Vec<PacketOutcome> = (0..n).map(|_| self.collect_one()).collect();
        out.sort_by_key(|o| o.id);
        out
    }
}

impl Drop for ParallelMccp {
    fn drop(&mut self) {
        // Close the queue and join the workers.
        self.job_tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A live channel on the functional engine.
#[derive(Clone, Debug)]
struct FunctionalChannel {
    algorithm: Algorithm,
    key: Vec<u8>,
    tag_len: usize,
    /// Stage-chain transform for pipeline channels (the graph itself is
    /// the datapath here — no cores to map stages onto).
    pipeline: Option<PipelineGraph>,
    /// Key epoch, bumped by every rekey (mirrors the cycle engine's
    /// channel epoch; completions are stamped with it at submission).
    epoch: u32,
    /// Virtual-clock cycle the channel's modeled establishment completes;
    /// submissions before it are refused with `HandshakePending`.
    ready_at: u64,
}

/// The functional engine behind the [`ChannelBackend`] trait: the same
/// control protocol as the cycle-accurate [`Mccp`](crate::Mccp), with the
/// reference `mccp-aes` implementations as the datapath. Packets are
/// processed synchronously at submission (bit-identical output to the
/// simulator), so it never refuses work with `NoResource`; the clock is a
/// virtual cycle counter advanced by [`step`](ChannelBackend::step) so
/// arrival-paced drivers behave, and completion latency is reported as 0
/// (service time is not modeled — wall-clock is what this engine trades
/// cycle fidelity for).
pub struct FunctionalBackend {
    channels: BTreeMap<u8, FunctionalChannel>,
    /// Per-key context cache (the hardware Key Cache, degenerated to one
    /// shared cache since there is no per-core state to model): expanded
    /// key schedule plus lazily-built GCM hash-key powers. Bounded LRU —
    /// under channel churn the schedules of keys no longer seen age out
    /// instead of growing the cache without limit.
    cache: WarmCache<Vec<u8>, KeyCtx>,
    /// Finished packets in submission order, tagged with their channel so
    /// CLOSE can refuse while results are undrained.
    completions: VecDeque<(u8, Completion)>,
    next_request: u16,
    now: u64,
    telemetry: Telemetry,
    /// Armed packet-triggered faults: accepted-submission ordinal → the
    /// error that submission completes with. The functional engine has no
    /// cycle model, so cycle-triggered entries are ignored.
    faults: BTreeMap<u64, MccpError>,
    /// Accepted submissions, 1-based (drives the packet triggers).
    packets_submitted: u64,
    /// Per-channel packet ordinals (1-based), for failure attribution.
    channel_seq: BTreeMap<u8, u64>,
}

impl FunctionalBackend {
    pub fn new() -> Self {
        Self::with_key_cache_capacity(DEFAULT_KEY_CACHE_CAPACITY)
    }

    /// A backend whose key-context warm set holds at most `capacity`
    /// expanded schedules (0 = unbounded). The service plane sizes this
    /// to its hot working set; batch drivers keep the default.
    pub fn with_key_cache_capacity(capacity: usize) -> Self {
        FunctionalBackend {
            channels: BTreeMap::new(),
            cache: WarmCache::new(capacity),
            completions: VecDeque::new(),
            next_request: 1,
            now: 0,
            telemetry: Telemetry::disabled(),
            faults: BTreeMap::new(),
            packets_submitted: 0,
            channel_seq: BTreeMap::new(),
        }
    }

    /// Warm-set hit/miss/eviction counters for the key-context cache.
    pub fn key_cache_stats(&self) -> WarmStats {
        self.cache.stats()
    }

    /// Expanded key schedules currently resident.
    pub fn key_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// OPEN a pipeline channel — the functional mirror of
    /// [`Mccp::open_pipeline`](crate::Mccp::open_pipeline). Stage chains
    /// run through [`run_stages_functional`] at submission; the `FusedCcm2`
    /// form is an ordinary CCM channel (no cores to schedule in pairs).
    pub fn open_pipeline(&mut self, graph: &PipelineGraph) -> Result<ChannelId, MccpError> {
        graph.validate()?;
        let id = (0..=u8::MAX)
            .find(|i| !self.channels.contains_key(i))
            .ok_or(MccpError::NoChannelId)?;
        let ch = match &graph.kind {
            PipelineKind::FusedCcm2 { algorithm } => FunctionalChannel {
                algorithm: *algorithm,
                key: graph.fused_key().unwrap_or_default().to_vec(),
                tag_len: graph.tag_len,
                pipeline: None,
                epoch: 0,
                ready_at: 0,
            },
            // The algorithm field is bookkeeping only for stage chains
            // (telemetry labels); the graph drives the processing.
            PipelineKind::Stages(_) => FunctionalChannel {
                algorithm: Algorithm::AesCtr128,
                key: Vec::new(),
                tag_len: graph.tag_len,
                pipeline: Some(graph.clone()),
                epoch: 0,
                ready_at: 0,
            },
        };
        self.channels.insert(id, ch);
        Ok(ChannelId(id))
    }

    /// Arms the packet-triggered subset of a fault schedule: the `n`-th
    /// accepted submission completes as failed with the error its fault
    /// kind maps to (wedge/stall → `CoreFault`, FIFO flip →
    /// `DataIntegrity`, key corruption → `KeyCorrupt`, DMA loss →
    /// `Deadline`). Cycle triggers and shard kills are ignored — the
    /// functional engine models neither a clock nor shards.
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        for e in &plan.entries {
            let FaultTrigger::AtPacket(p) = e.trigger else {
                continue;
            };
            let error = match e.kind {
                FaultKind::WedgeCore { .. } | FaultKind::StallCore { .. } => MccpError::CoreFault,
                FaultKind::FlipFifoBit { .. } => MccpError::DataIntegrity,
                FaultKind::CorruptKeyCache { .. } => MccpError::KeyCorrupt,
                FaultKind::DropDmaWord { .. } => MccpError::Deadline,
                FaultKind::KillShard { .. } => continue,
            };
            self.faults.insert(p, error);
        }
    }
}

impl Default for FunctionalBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelBackend for FunctionalBackend {
    fn backend_name(&self) -> &'static str {
        "functional"
    }

    fn open_channel(
        &mut self,
        algorithm: Algorithm,
        key: &[u8],
        tag_len: usize,
    ) -> Result<ChannelId, MccpError> {
        if key.len() != algorithm.key_size().key_bytes() {
            return Err(MccpError::BadKey);
        }
        let id = (0..=u8::MAX)
            .find(|i| !self.channels.contains_key(i))
            .ok_or(MccpError::NoChannelId)?;
        self.channels.insert(
            id,
            FunctionalChannel {
                algorithm,
                key: key.to_vec(),
                tag_len,
                pipeline: None,
                epoch: 0,
                ready_at: 0,
            },
        );
        Ok(ChannelId(id))
    }

    fn open_channel_handshake(
        &mut self,
        algorithm: Algorithm,
        key: &[u8],
        tag_len: usize,
        handshake_cycles: u64,
    ) -> Result<ChannelId, MccpError> {
        let id = self.open_channel(algorithm, key, tag_len)?;
        if let Some(ch) = self.channels.get_mut(&id.0) {
            ch.ready_at = self.now + handshake_cycles;
        }
        Ok(id)
    }

    /// Rotates the channel's key bytes in place: the replaced key is
    /// zeroized immediately (processing is synchronous here, so nothing
    /// can still be in flight on it) and its expanded context is dropped
    /// from the warm set.
    fn rekey_channel(&mut self, channel: ChannelId, new_key: &[u8]) -> Result<u32, MccpError> {
        let ch = self
            .channels
            .get_mut(&channel.0)
            .ok_or(MccpError::BadChannel)?;
        if new_key.len() != ch.algorithm.key_size().key_bytes() {
            return Err(MccpError::BadKey);
        }
        let old = std::mem::replace(&mut ch.key, new_key.to_vec());
        ch.epoch += 1;
        let epoch = ch.epoch;
        self.cache.remove(&old);
        let mut old = old;
        old.fill(0);
        Ok(epoch)
    }

    fn channel_epoch(&self, channel: ChannelId) -> Result<u32, MccpError> {
        self.channels
            .get(&channel.0)
            .map(|c| c.epoch)
            .ok_or(MccpError::BadChannel)
    }

    fn close_channel(&mut self, channel: ChannelId) -> Result<(), MccpError> {
        if self.completions.iter().any(|(ch, _)| *ch == channel.0) {
            return Err(MccpError::Busy);
        }
        let mut ch = self
            .channels
            .remove(&channel.0)
            .ok_or(MccpError::BadChannel)?;
        self.cache.remove(&ch.key);
        ch.key.fill(0);
        Ok(())
    }

    fn submit_packet(
        &mut self,
        channel: ChannelId,
        direction: Direction,
        iv: &[u8],
        aad: &[u8],
        body: &[u8],
        tag: Option<&[u8]>,
    ) -> Result<RequestId, MccpError> {
        // Disjoint field borrows: the channel table is read-only here while
        // the key-context cache is mutated, so no per-submit clone of the
        // channel (and its key bytes) is needed. A warm-set hit costs one
        // hash probe; a miss re-expands the schedule and may age out the
        // least-recently-used key.
        let ch = self.channels.get(&channel.0).ok_or(MccpError::BadChannel)?;
        if ch.ready_at > self.now {
            return Err(MccpError::HandshakePending);
        }
        let epoch = ch.epoch;
        // Pipeline channels carry their whole transform in the graph: AAD
        // and caller-side tags have no stage to run on (mirrors the
        // cycle-accurate engine's pipeline admission).
        if ch.pipeline.is_some()
            && (direction != Direction::Encrypt || !aad.is_empty() || tag.is_some())
        {
            return Err(MccpError::BadInstruction);
        }

        let id = RequestId(self.next_request);
        self.next_request = self.next_request.wrapping_add(1).max(1);
        self.packets_submitted += 1;
        let sequence = {
            let seq = self.channel_seq.entry(channel.0).or_insert(0);
            *seq += 1;
            *seq
        };
        self.telemetry
            .emit_with(self.now, || Event::RequestSubmitted {
                request: id.0,
                channel: channel.0,
                algorithm: ch.algorithm.name(),
                direction: match direction {
                    Direction::Encrypt => "Encrypt",
                    Direction::Decrypt => "Decrypt",
                },
                cores: Vec::new(),
            });

        // Armed packet fault: this submission fails instead of producing
        // output (the functional analogue of the simulator's fault plane).
        if let Some(error) = self.faults.remove(&self.packets_submitted) {
            self.telemetry.emit_with(self.now, || Event::FaultInjected {
                fault: error.to_string(),
                core: 0,
            });
            self.telemetry.emit_with(self.now, || Event::FaultDetected {
                request: id.0,
                core: 0,
                error: error.to_string(),
            });
            self.telemetry.emit_with(self.now, || Event::RequestFailed {
                request: id.0,
                error: error.to_string(),
                cycles: 0,
            });
            self.completions.push_back((
                channel.0,
                Completion {
                    request: id,
                    auth_ok: false,
                    body: Vec::new(),
                    tag: Vec::new(),
                    latency_cycles: 0,
                    fault: Some(error),
                    epoch,
                },
            ));
            return Ok(id);
        }

        let (auth_ok, out_body, out_tag) = if let Some(graph) = &ch.pipeline {
            let (out_body, out_tag) =
                run_stages_functional(graph.stages(), iv, body, graph.tag_len)?;
            (true, out_body, out_tag.unwrap_or_default())
        } else {
            let ctx = self
                .cache
                .get_or_insert_with(&ch.key, || KeyCtx::new(&ch.key));
            let result = run_mode(ctx, ch.algorithm, direction, iv, aad, body, tag, ch.tag_len);
            match result {
                Ok(out) => match (ch.algorithm.mode(), direction) {
                    (Mode::Gcm | Mode::Ccm, Direction::Encrypt) => {
                        let split = out.len() - ch.tag_len;
                        let mut out = out;
                        let tag = out.split_off(split);
                        (true, out, tag)
                    }
                    (Mode::Gcm | Mode::Ccm, Direction::Decrypt) => (true, out, Vec::new()),
                    (Mode::Ctr, _) => (true, out, Vec::new()),
                    (Mode::CbcMac, _) => (true, Vec::new(), out),
                },
                Err(ModeError::AuthFail) => {
                    let (request, channel) = (id.0, channel.0);
                    self.telemetry.emit_with(self.now, || Event::AuthFailWipe {
                        request,
                        channel,
                        sequence,
                    });
                    (false, Vec::new(), Vec::new())
                }
                Err(_) => return Err(MccpError::BadInstruction),
            }
        };
        self.telemetry
            .emit_with(self.now, || Event::RequestCompleted {
                request: id.0,
                auth_ok,
                cycles: 0,
            });
        self.completions.push_back((
            channel.0,
            Completion {
                request: id,
                auth_ok,
                body: out_body,
                tag: out_tag,
                latency_cycles: 0,
                fault: None,
                epoch,
            },
        ));
        Ok(id)
    }

    fn step(&mut self, bound: u64) -> u64 {
        if !self.completions.is_empty() {
            return 0;
        }
        self.now = self.now.saturating_add(bound);
        bound
    }

    fn poll_completion(&mut self) -> Option<Completion> {
        self.completions.pop_front().map(|(_, c)| c)
    }

    fn in_flight(&self) -> usize {
        self.completions.len()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn enable_telemetry(&mut self, capacity: usize) {
        self.telemetry = Telemetry::with_capacity(capacity);
    }

    fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_enabled()
    }

    fn telemetry_counter_add(&mut self, key: &str, delta: u64) {
        if self.telemetry.is_enabled() {
            self.telemetry.registry_mut().counter_add(key, delta);
        }
    }

    fn telemetry_snapshot(&mut self) -> Snapshot {
        if self.telemetry.is_enabled() {
            self.telemetry
                .registry_mut()
                .gauge_set("mccp_cycles", self.now);
        }
        self.telemetry.snapshot()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Processing is synchronous at submission — everything accepted is
    /// already pollable.
    fn drain(&mut self, _max_cycles: u64) -> u64 {
        0
    }

    /// No persistent core pool to get sick: always healthy.
    fn health(&self) -> EngineHealth {
        EngineHealth::default()
    }

    /// No cores to reset; the recovery call is accepted as a no-op so
    /// cluster self-healing code is engine-agnostic.
    fn reset_core(&mut self, _core: usize) -> Result<(), MccpError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mccp_aes::modes::gcm_seal;

    fn gcm_job(id: u64, payload: &[u8]) -> PacketJob {
        PacketJob {
            id,
            algorithm: Algorithm::AesGcm128,
            direction: Direction::Encrypt,
            key: vec![7u8; 16],
            iv: vec![id as u8; 12],
            aad: b"hdr".to_vec(),
            body: payload.to_vec(),
            tag: None,
            tag_len: 16,
        }
    }

    #[test]
    fn batch_matches_reference_and_uses_workers() {
        let m = ParallelMccp::new(4);
        let jobs: Vec<PacketJob> = (0..32).map(|i| gcm_job(i, &[i as u8; 100])).collect();
        let outcomes = m.process_batch(jobs.clone());
        assert_eq!(outcomes.len(), 32);
        for (job, out) in jobs.iter().zip(outcomes.iter()) {
            assert_eq!(job.id, out.id);
            let aes = Aes::new(&job.key);
            let expect = gcm_seal(&aes, &job.iv, &job.aad, &job.body, 16).unwrap();
            assert_eq!(out.result.as_ref().unwrap(), &expect);
        }
        // Core attribution is well-formed. (Whether >1 worker participates
        // is scheduling-dependent — a single fast worker can legitimately
        // drain a small queue — so distribution is asserted statistically
        // by the Criterion scaling bench, not here.)
        assert!(outcomes.iter().all(|o| o.core < 4));
    }

    #[test]
    fn decrypt_roundtrip_and_authfail() {
        let m = ParallelMccp::new(2);
        let enc = m.process_batch(vec![gcm_job(1, b"secret data")]);
        let sealed = enc[0].result.clone().unwrap();
        let (ct, tag) = sealed.split_at(sealed.len() - 16);

        let mut dec_job = gcm_job(2, ct);
        dec_job.direction = Direction::Decrypt;
        dec_job.iv = vec![1u8; 12];
        dec_job.tag = Some(tag.to_vec());
        let out = m.process_batch(vec![dec_job.clone()]);
        assert_eq!(out[0].result.as_ref().unwrap(), b"secret data");

        dec_job.tag = Some(vec![0u8; 16]);
        dec_job.id = 3;
        let out = m.process_batch(vec![dec_job]);
        assert_eq!(out[0].result, Err(ModeError::AuthFail));
    }

    #[test]
    fn all_modes_run() {
        let m = ParallelMccp::new(2);
        let mk = |id, alg, iv: Vec<u8>, tag_len| PacketJob {
            id,
            algorithm: alg,
            direction: Direction::Encrypt,
            key: vec![1u8; 16],
            iv,
            aad: vec![],
            body: vec![0xAB; 64],
            tag: None,
            tag_len,
        };
        let jobs = vec![
            mk(0, Algorithm::AesGcm128, vec![0; 12], 16),
            mk(1, Algorithm::AesCcm128, vec![0; 11], 8),
            mk(2, Algorithm::AesCtr128, vec![0; 16], 0),
            mk(3, Algorithm::AesCbcMac128, vec![], 16),
        ];
        let out = m.process_batch(jobs);
        assert!(out.iter().all(|o| o.result.is_ok()));
        assert_eq!(out[0].result.as_ref().unwrap().len(), 64 + 16);
        assert_eq!(out[1].result.as_ref().unwrap().len(), 64 + 8);
        assert_eq!(out[2].result.as_ref().unwrap().len(), 64);
        assert_eq!(out[3].result.as_ref().unwrap().len(), 16);
    }

    #[test]
    fn per_core_packet_counts_sum_to_batch() {
        let m = ParallelMccp::new(4);
        let jobs: Vec<PacketJob> = (0..32).map(|i| gcm_job(i, &[i as u8; 64])).collect();
        let outcomes = m.process_batch(jobs);
        let counts = m.per_core_packets();
        assert_eq!(counts.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), 32);
        // Counts agree with the outcome attribution.
        for (core, &count) in counts.iter().enumerate() {
            let attributed = outcomes.iter().filter(|o| o.core == core).count() as u64;
            assert_eq!(count, attributed, "core {core}");
        }
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let m = ParallelMccp::new(3);
        m.process_batch(vec![gcm_job(0, b"x")]);
        drop(m); // must not hang
    }
}
