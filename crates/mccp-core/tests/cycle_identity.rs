//! Cycle-identity property test for the event-driven fast path: scripted
//! pseudo-random multi-channel workloads — every mode, every key size,
//! oversize streaming packets, two-core CCM, mid-run partial
//! reconfiguration, telemetry on and off — run twice, per-tick and
//! fast-forwarded, and the full observable transcript (submission cycles,
//! completion latencies, output bytes, auth verdicts, final cycle, both
//! telemetry exports) must match exactly.

use mccp_core::core_unit::Personality;
use mccp_core::protocol::{Algorithm, ChannelId, KeyId, MccpError, RequestId};
use mccp_core::reconfig::{Bitstream, BitstreamSource};
use mccp_core::{Direction, Mccp, MccpConfig};
use mccp_sim::resources::Resources;
use std::collections::HashMap;

/// Deterministic 64-bit LCG (the vendored `rand` stays out of the loop so
/// the script is stable against stub changes).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn below(&mut self, n: u32) -> u32 {
        self.next() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[derive(Clone, Copy)]
struct Scenario {
    seed: u64,
    telemetry: bool,
    reconfig: bool,
    ccm_two_core: bool,
    n_cores: usize,
    packets: usize,
}

struct Chan {
    id: ChannelId,
    iv_len: usize,
    /// Authenticated modes produce a tag and support hardware decrypt.
    authenticated: bool,
    /// CBC-MAC wants whole blocks and takes no AAD/IV.
    mac_only: bool,
    takes_aad: bool,
}

fn open_channels(m: &mut Mccp) -> Vec<Chan> {
    let table: [(Algorithm, usize, usize, usize, bool, bool, bool); 6] = [
        (Algorithm::AesGcm128, 16, 16, 12, true, false, true),
        (Algorithm::AesGcm192, 24, 16, 12, true, false, true),
        (Algorithm::AesGcm256, 32, 16, 12, true, false, true),
        (Algorithm::AesCcm128, 16, 8, 12, true, false, true),
        (Algorithm::AesCtr128, 16, 4, 16, false, false, false),
        (Algorithm::AesCbcMac128, 16, 16, 0, false, true, false),
    ];
    table
        .iter()
        .enumerate()
        .map(
            |(i, &(algorithm, key_len, tag_len, iv_len, authenticated, mac_only, takes_aad))| {
                let kid = KeyId(i as u8 + 1);
                let key: Vec<u8> = (0..key_len as u8).map(|b| b ^ (i as u8 * 17)).collect();
                m.key_memory_mut().store(kid, &key);
                let id = m.open_with_tag_len(algorithm, kid, tag_len).expect("open");
                Chan {
                    id,
                    iv_len,
                    authenticated,
                    mac_only,
                    takes_aad,
                }
            },
        )
        .collect()
}

/// One quiescent-aware simulation step: an active tick, or a bounded leap.
/// With `fast` off this is exactly one `tick()` — the reference schedule.
fn advance_step(m: &mut Mccp, fast: bool) {
    let span = if fast {
        m.quiescent_horizon().min(2_000_000)
    } else {
        0
    };
    if span == 0 {
        m.tick();
    } else {
        m.skip(span);
    }
}

/// What a submission needs remembered so its completion can seed the
/// decrypt-replay pool: `(channel index, iv, aad, eligible)`.
type Meta = HashMap<u16, (usize, Vec<u8>, Vec<u8>, bool)>;

/// Sealed packets available for decrypt replay:
/// `(channel index, iv, aad, ciphertext, tag)`.
type Sealed = Vec<(usize, Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>)>;

fn drain(
    m: &mut Mccp,
    outstanding: &mut Vec<RequestId>,
    meta: &Meta,
    sealed: &mut Sealed,
    log: &mut Vec<String>,
) {
    while let Some(id) = m.poll_data_available() {
        let cycle = m.cycle();
        match m.retrieve(id) {
            Ok(out) => {
                log.push(format!(
                    "done {} cycle={cycle} latency={} body_len={} body_sum={} tag={:02x?}",
                    id.0,
                    m.request_cycles(id).expect("done"),
                    out.body.len(),
                    out.body.iter().map(|&b| b as u64).sum::<u64>(),
                    out.tag
                ));
                if let Some((ch_idx, iv, aad, true)) = meta.get(&id.0) {
                    sealed.push((
                        *ch_idx,
                        iv.clone(),
                        aad.clone(),
                        out.body,
                        out.tag.unwrap_or_default(),
                    ));
                }
            }
            Err(MccpError::AuthFail) => {
                log.push(format!("authfail {} cycle={cycle}", id.0));
            }
            Err(e) => panic!("retrieve {id:?}: {e}"),
        }
        m.transfer_done(id).expect("release");
        outstanding.retain(|&r| r != id);
    }
}

fn run_scenario(s: Scenario, fast: bool) -> Vec<String> {
    let mut m = Mccp::new(MccpConfig {
        n_cores: s.n_cores,
        ccm_two_core: s.ccm_two_core,
        ..MccpConfig::default()
    });
    m.set_fast_forward(fast);
    if s.telemetry {
        m.enable_telemetry(4096);
    }
    let channels = open_channels(&mut m);
    let mut lcg = Lcg(s.seed);
    let mut log = Vec::new();
    let mut outstanding: Vec<RequestId> = Vec::new();
    let mut meta: Meta = HashMap::new();
    let mut sealed: Sealed = Vec::new();
    let mut reconfig_pending = s.reconfig;

    for i in 0..s.packets {
        let gap = lcg.below(12_000) as u64;
        m.run_until(m.cycle() + gap);
        drain(&mut m, &mut outstanding, &meta, &mut sealed, &mut log);

        // One mid-run partial reconfiguration, once a core happens to be
        // idle (tiny synthetic AES bitstream so per-tick mode stays fast;
        // the personality is unchanged so dispatch keeps working).
        if reconfig_pending && i >= s.packets / 3 {
            let bs = Bitstream {
                personality: Personality::AesUnit,
                resources: Resources::new(10, 1),
                size_kb: 1,
            };
            match m.begin_reconfiguration(s.n_cores - 1, bs, BitstreamSource::Ram) {
                Ok(budget) => {
                    log.push(format!("reconfig cycle={} budget={budget}", m.cycle()));
                    reconfig_pending = false;
                }
                Err(MccpError::Busy) => {}
                Err(e) => panic!("reconfiguration: {e}"),
            }
        }

        // Pick the packet: a fresh encrypt, or a decrypt replay of an
        // earlier sealed packet (tag tampered half the time to exercise
        // the auth-fail wipe under both schedules).
        let replay = !sealed.is_empty() && lcg.below(4) == 0;
        let (ch_idx, direction, iv, aad, body, tag) = if replay {
            let (ch_idx, iv, aad, ct, mut tag) =
                sealed[lcg.below(sealed.len() as u32) as usize].clone();
            if lcg.below(2) == 0 && !tag.is_empty() {
                tag[0] ^= 1;
            }
            (ch_idx, Direction::Decrypt, iv, aad, ct, Some(tag))
        } else {
            let ch_idx = lcg.below(channels.len() as u32) as usize;
            let ch = &channels[ch_idx];
            let mut len = if lcg.below(8) == 0 {
                // Oversize: exceeds the 512-word FIFO, streaming mode.
                2048 + lcg.below(2048) as usize
            } else {
                16 + lcg.below(704) as usize
            };
            if ch.mac_only {
                len = (len / 16).max(1) * 16;
            }
            let iv = lcg.bytes(ch.iv_len);
            let aad = if ch.takes_aad {
                let n = lcg.below(32) as usize;
                lcg.bytes(n)
            } else {
                Vec::new()
            };
            (ch_idx, Direction::Encrypt, iv, aad, lcg.bytes(len), None)
        };

        // Submit, waiting out core exhaustion one step at a time.
        let id = loop {
            match m.submit(
                channels[ch_idx].id,
                direction,
                &iv,
                &aad,
                &body,
                tag.as_deref(),
            ) {
                Ok(id) => break id,
                Err(MccpError::NoResource) => {
                    advance_step(&mut m, fast);
                    drain(&mut m, &mut outstanding, &meta, &mut sealed, &mut log);
                }
                Err(e) => panic!("submit: {e}"),
            }
        };
        log.push(format!(
            "submit {} cycle={} ch={ch_idx} dir={direction:?} len={}",
            id.0,
            m.cycle(),
            body.len()
        ));
        outstanding.push(id);
        let record_seal = direction == Direction::Encrypt && channels[ch_idx].authenticated;
        meta.insert(id.0, (ch_idx, iv, aad, record_seal));

        // Half the time, wait this request out so the replay pool fills;
        // the rest stay in flight for multi-core overlap.
        if record_seal && lcg.below(2) == 0 {
            m.run_until_done(id, 100_000_000);
            drain(&mut m, &mut outstanding, &meta, &mut sealed, &mut log);
        }
    }

    // Let everything in flight (requests and the reconfiguration) finish.
    let mut guard = 0u64;
    while !outstanding.is_empty() {
        advance_step(&mut m, fast);
        drain(&mut m, &mut outstanding, &meta, &mut sealed, &mut log);
        guard += 1;
        assert!(guard < 200_000_000, "scenario wedged");
    }
    if s.reconfig {
        while m.is_reconfiguring(s.n_cores - 1) {
            advance_step(&mut m, fast);
        }
        log.push(format!(
            "reconfigured cycle={} personality={:?}",
            m.cycle(),
            m.core(s.n_cores - 1).personality()
        ));
    }
    log.push(format!(
        "end cycle={} expansions={}",
        m.cycle(),
        m.expansions()
    ));
    if s.telemetry {
        let events = m.telemetry_mut().take_events();
        log.push(mccp_telemetry::export::json_lines(&events));
        log.push(mccp_telemetry::export::prometheus_text(
            &m.telemetry_snapshot(),
        ));
    }
    log
}

fn assert_identical(s: Scenario) {
    let per_tick = run_scenario(s, false);
    let fast = run_scenario(s, true);
    for (i, (a, b)) in per_tick.iter().zip(fast.iter()).enumerate() {
        assert_eq!(a, b, "seed {} transcript line {i}", s.seed);
    }
    assert_eq!(per_tick.len(), fast.len(), "seed {}", s.seed);
}

#[test]
fn identity_plain() {
    assert_identical(Scenario {
        seed: 1,
        telemetry: false,
        reconfig: false,
        ccm_two_core: false,
        n_cores: 4,
        packets: 16,
    });
}

#[test]
fn identity_with_telemetry() {
    assert_identical(Scenario {
        seed: 2,
        telemetry: true,
        reconfig: false,
        ccm_two_core: false,
        n_cores: 4,
        packets: 16,
    });
}

#[test]
fn identity_with_reconfig() {
    assert_identical(Scenario {
        seed: 3,
        telemetry: false,
        reconfig: true,
        ccm_two_core: false,
        n_cores: 4,
        packets: 16,
    });
}

#[test]
fn identity_with_telemetry_and_reconfig() {
    assert_identical(Scenario {
        seed: 4,
        telemetry: true,
        reconfig: true,
        ccm_two_core: false,
        n_cores: 4,
        packets: 16,
    });
}

#[test]
fn identity_two_core_ccm() {
    assert_identical(Scenario {
        seed: 5,
        telemetry: true,
        reconfig: false,
        ccm_two_core: true,
        n_cores: 4,
        packets: 16,
    });
}

#[test]
fn identity_two_cores_with_reconfig() {
    assert_identical(Scenario {
        seed: 6,
        telemetry: true,
        reconfig: true,
        ccm_two_core: true,
        n_cores: 2,
        packets: 12,
    });
}
