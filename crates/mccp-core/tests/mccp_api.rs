//! Public-API tests for the `Mccp` top level: the control protocol, the
//! reference-checked mode firmware, key caching, telemetry and the
//! event-driven fast path. (Formerly unit tests inside `mccp.rs`; they
//! exercise only the public surface, so they live here as integration
//! tests and double as a facade-stability check for the
//! scheduler/DMA/dispatch decomposition.)

use mccp_aes::modes::{ccm_seal, gcm_seal, CcmParams};
use mccp_aes::Aes;
use mccp_core::core_unit::Personality;
use mccp_core::protocol::{Algorithm, CipherSel, KeyId, MccpError, RequestId};
use mccp_core::reconfig::{Bitstream, BitstreamSource};
use mccp_core::{Direction, Mccp, MccpConfig};

fn mccp_with_key(key: &[u8]) -> (Mccp, KeyId) {
    let mut m = Mccp::new(MccpConfig::default());
    let kid = KeyId(1);
    m.key_memory_mut().store(kid, key);
    (m, kid)
}

#[test]
fn open_validates_key() {
    let (mut m, kid) = mccp_with_key(&[1u8; 16]);
    assert!(m.open(Algorithm::AesGcm128, kid).is_ok());
    assert_eq!(
        m.open(Algorithm::AesGcm128, KeyId(9)),
        Err(MccpError::BadKey)
    );
    // Key size mismatch.
    assert_eq!(m.open(Algorithm::AesGcm256, kid), Err(MccpError::BadKey));
}

#[test]
fn gcm_encrypt_matches_reference() {
    let key = [0x42u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let iv = [7u8; 12];
    let aad = b"packet-header";
    let payload: Vec<u8> = (0..100u8).collect();

    let pkt = m.encrypt_packet(ch, aad, &payload, &iv).unwrap();

    let aes = Aes::new_128(&key);
    let reference = gcm_seal(&aes, &iv, aad, &payload, 16).unwrap();
    assert_eq!(pkt.ciphertext, reference[..payload.len()]);
    assert_eq!(pkt.tag, reference[payload.len()..]);
    assert!(pkt.cycles > 0);
}

#[test]
fn gcm_decrypt_roundtrip_and_tamper() {
    let key = [0x24u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let iv = [3u8; 12];
    let payload = b"the quick brown fox jumps over the lazy dog";

    let pkt = m.encrypt_packet(ch, b"hdr", payload, &iv).unwrap();
    let dec = m
        .decrypt_packet(ch, b"hdr", &pkt.ciphertext, &pkt.tag, &iv)
        .unwrap();
    assert_eq!(dec.plaintext, payload);

    // Tampered ciphertext must fail and release nothing.
    let mut bad = pkt.ciphertext.clone();
    bad[0] ^= 1;
    let err = m.decrypt_packet(ch, b"hdr", &bad, &pkt.tag, &iv);
    assert_eq!(err.unwrap_err(), MccpError::AuthFail);
}

#[test]
fn ccm_single_core_matches_reference() {
    let key = [0x11u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open_with_tag_len(Algorithm::AesCcm128, kid, 8).unwrap();
    let nonce = [9u8; 12];
    let aad = b"associated";
    let payload: Vec<u8> = (0..60u8).collect();

    let pkt = m.encrypt_packet(ch, aad, &payload, &nonce).unwrap();

    let aes = Aes::new_128(&key);
    let params = CcmParams {
        nonce_len: 12,
        tag_len: 8,
    };
    let reference = ccm_seal(&aes, &params, &nonce, aad, &payload).unwrap();
    assert_eq!(pkt.ciphertext, reference[..payload.len()]);
    assert_eq!(pkt.tag, reference[payload.len()..]);
}

#[test]
fn ccm_decrypt_roundtrip() {
    let key = [0x33u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open_with_tag_len(Algorithm::AesCcm128, kid, 8).unwrap();
    let nonce = [5u8; 7];
    let payload = b"ccm payload with an odd length..";
    let pkt = m.encrypt_packet(ch, b"a", payload, &nonce).unwrap();
    let dec = m
        .decrypt_packet(ch, b"a", &pkt.ciphertext, &pkt.tag, &nonce)
        .unwrap();
    assert_eq!(dec.plaintext, payload);
    // Wrong AAD fails auth.
    let e = m.decrypt_packet(ch, b"b", &pkt.ciphertext, &pkt.tag, &nonce);
    assert_eq!(e.unwrap_err(), MccpError::AuthFail);
}

#[test]
fn ccm_two_core_matches_single_core() {
    let key = [0x55u8; 16];
    let mut m = Mccp::new(MccpConfig {
        ccm_two_core: true,
        ..MccpConfig::default()
    });
    let kid = KeyId(1);
    m.key_memory_mut().store(kid, &key);
    let ch = m.open_with_tag_len(Algorithm::AesCcm128, kid, 16).unwrap();
    let nonce = [1u8; 11];
    let payload: Vec<u8> = (0..128u8).collect();

    let id = m
        .submit(ch, Direction::Encrypt, &nonce, b"hh", &payload, None)
        .unwrap();
    assert_eq!(m.request_cores(id).unwrap().len(), 2, "pair allocated");
    m.run_until_done(id, 10_000_000);
    let out = m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();

    let aes = Aes::new_128(&key);
    let params = CcmParams {
        nonce_len: 11,
        tag_len: 16,
    };
    let reference = ccm_seal(&aes, &params, &nonce, b"hh", &payload).unwrap();
    assert_eq!(out.body, reference[..payload.len()]);
    assert_eq!(out.tag.unwrap(), reference[payload.len()..]);
}

#[test]
fn ccm_two_core_decrypt_roundtrip() {
    let key = [0x66u8; 16];
    let mut m = Mccp::new(MccpConfig {
        ccm_two_core: true,
        ..MccpConfig::default()
    });
    let kid = KeyId(1);
    m.key_memory_mut().store(kid, &key);
    let ch = m.open_with_tag_len(Algorithm::AesCcm128, kid, 8).unwrap();
    let nonce = [2u8; 12];
    let payload = b"two-core ccm decrypt test payload!!";
    let pkt = m.encrypt_packet(ch, b"hdr", payload, &nonce).unwrap();
    let dec = m
        .decrypt_packet(ch, b"hdr", &pkt.ciphertext, &pkt.tag, &nonce)
        .unwrap();
    assert_eq!(dec.plaintext, payload);
    // Tamper: tag flip.
    let mut bad_tag = pkt.tag.clone();
    bad_tag[0] ^= 0x80;
    let e = m.decrypt_packet(ch, b"hdr", &pkt.ciphertext, &bad_tag, &nonce);
    assert_eq!(e.unwrap_err(), MccpError::AuthFail);
}

#[test]
fn ctr_and_cbcmac_channels() {
    let key = [0x77u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let aes = Aes::new_128(&key);

    let ctr_ch = m.open(Algorithm::AesCtr128, kid).unwrap();
    let ctr0 = [0xF0u8; 16];
    let payload = b"counter mode payload";
    let pkt = m.encrypt_packet(ctr_ch, &[], payload, &ctr0).unwrap();
    let mut expect = payload.to_vec();
    mccp_aes::modes::ctr::ctr_xcrypt(&aes, &ctr0, &mut expect).unwrap();
    assert_eq!(pkt.ciphertext, expect);
    assert!(pkt.tag.is_empty());

    let mac_ch = m.open(Algorithm::AesCbcMac128, kid).unwrap();
    let data = [0xABu8; 32];
    let pkt = m.encrypt_packet(mac_ch, &[], &data, &[]).unwrap();
    let expect = mccp_aes::modes::cbc_mac::cbc_mac_raw(&aes, &data).unwrap();
    assert_eq!(pkt.tag, expect.to_vec());
}

#[test]
fn four_concurrent_packets_on_four_cores() {
    let key = [0x88u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let payload = vec![0xCDu8; 256];

    let ids: Vec<RequestId> = (0..4)
        .map(|i| {
            let iv = [i as u8 + 1; 12];
            m.submit(ch, Direction::Encrypt, &iv, &[], &payload, None)
                .unwrap()
        })
        .collect();
    // All four cores busy → a fifth submit is refused.
    let iv = [9u8; 12];
    assert_eq!(
        m.submit(ch, Direction::Encrypt, &iv, &[], &payload, None),
        Err(MccpError::NoResource)
    );
    for &id in &ids {
        m.run_until_done(id, 10_000_000);
    }
    let aes = Aes::new_128(&key);
    for (i, &id) in ids.iter().enumerate() {
        let out = m.retrieve(id).unwrap();
        let iv = [i as u8 + 1; 12];
        let reference = gcm_seal(&aes, &iv, &[], &payload, 16).unwrap();
        assert_eq!(out.body, reference[..payload.len()]);
        m.transfer_done(id).unwrap();
    }
}

#[test]
fn gcm_2kb_packet_cycle_count_matches_paper_shape() {
    // Table II: a 2 KB GCM-128 packet sustains ~437 Mbps at 190 MHz,
    // i.e. ~7123 cycles. Our firmware's pre/post-loop overhead differs
    // from the authors' unpublished code, so assert the loop-dominated
    // budget: 128 blocks x 49 cycles, plus a sub-1500-cycle overhead.
    let key = [0x42u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let payload = vec![0u8; 2048];
    let pkt = m.encrypt_packet(ch, &[], &payload, &[1u8; 12]).unwrap();
    let loop_cycles = 128 * 49;
    assert!(
        pkt.cycles >= loop_cycles,
        "cannot beat the AES-bound loop: {}",
        pkt.cycles
    );
    assert!(
        pkt.cycles < loop_cycles + 1500,
        "overhead too large: {} cycles",
        pkt.cycles
    );
}

#[test]
fn key_cache_avoids_reexpansion() {
    let key = [0x99u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let payload = [0u8; 64];
    // Two sequential packets: the first expands the key, the second
    // hits the cache of the same (first-idle) core.
    m.encrypt_packet(ch, &[], &payload, &[1u8; 12]).unwrap();
    let before = m.expansions();
    m.encrypt_packet(ch, &[], &payload, &[2u8; 12]).unwrap();
    assert_eq!(m.expansions(), before);
}

#[test]
fn retrieve_before_done_is_busy() {
    let key = [0xAAu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let id = m
        .submit(ch, Direction::Encrypt, &[1u8; 12], &[], &[0u8; 32], None)
        .unwrap();
    assert_eq!(m.retrieve(id).unwrap_err(), MccpError::Busy);
    m.run_until_done(id, 10_000_000);
    assert!(m.retrieve(id).is_ok());
    m.transfer_done(id).unwrap();
}

#[test]
fn data_available_signals_once() {
    let key = [0xBBu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let id = m
        .submit(ch, Direction::Encrypt, &[1u8; 12], &[], &[0u8; 16], None)
        .unwrap();
    m.run_until_done(id, 10_000_000);
    assert_eq!(m.poll_data_available(), Some(id));
    assert_eq!(m.poll_data_available(), None);
}

#[test]
fn close_rules() {
    let key = [0xCCu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let id = m
        .submit(ch, Direction::Encrypt, &[1u8; 12], &[], &[0u8; 16], None)
        .unwrap();
    assert_eq!(m.close(ch), Err(MccpError::Busy));
    m.run_until_done(id, 10_000_000);
    m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();
    assert!(m.close(ch).is_ok());
    assert_eq!(m.close(ch), Err(MccpError::BadChannel));
}

#[test]
fn empty_payload_gcm() {
    // AAD-only GCM packet (pure authentication).
    let key = [0xDDu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let pkt = m.encrypt_packet(ch, b"only-aad", &[], &[4u8; 12]).unwrap();
    assert!(pkt.ciphertext.is_empty());
    let aes = Aes::new_128(&key);
    let reference = gcm_seal(&aes, &[4u8; 12], b"only-aad", &[], 16).unwrap();
    assert_eq!(pkt.tag, reference);
}

#[test]
fn twofish_gcm_channel_matches_reference() {
    // Paper §IX realized: reconfigure a core to the Twofish unit and
    // run the *same* GCM firmware on it.
    use mccp_aes::twofish::Twofish;
    let key = [0x5Au8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    m.core_mut(0).set_personality(Personality::TwofishUnit);
    let ch = m
        .open_with_cipher(Algorithm::AesGcm128, kid, 16, CipherSel::Twofish)
        .unwrap();
    let iv = [8u8; 12];
    let payload: Vec<u8> = (0..100u8).collect();
    let id = m
        .submit(ch, Direction::Encrypt, &iv, b"hdr", &payload, None)
        .unwrap();
    // Routed to the Twofish core.
    assert_eq!(m.request_cores(id).unwrap(), &[0]);
    m.run_until_done(id, 10_000_000);
    let out = m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();

    let tf = Twofish::new(&key);
    let reference = gcm_seal(&tf, &iv, b"hdr", &payload, 16).unwrap();
    assert_eq!(out.body, reference[..payload.len()]);
    assert_eq!(out.tag.unwrap(), reference[payload.len()..]);

    // And the Twofish packet decrypts back through the hardware.
    let (ct, tag) = reference.split_at(payload.len());
    let dec = m.decrypt_packet(ch, b"hdr", ct, tag, &iv).unwrap();
    assert_eq!(dec.plaintext, payload);
}

#[test]
fn cipher_routing_is_strict() {
    // AES channels never land on a Twofish core, and vice versa.
    let key = [0x11u8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    m.core_mut(2).set_personality(Personality::TwofishUnit);
    let aes_ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let tf_ch = m
        .open_with_cipher(Algorithm::AesCcm128, kid, 8, CipherSel::Twofish)
        .unwrap();
    for i in 0..3u8 {
        let id = m
            .submit(
                aes_ch,
                Direction::Encrypt,
                &[i + 1; 12],
                &[],
                &[0u8; 32],
                None,
            )
            .unwrap();
        assert!(!m.request_cores(id).unwrap().contains(&2), "AES on TF core");
        m.run_until_done(id, 10_000_000);
        m.retrieve(id).unwrap();
        m.transfer_done(id).unwrap();
    }
    let id = m
        .submit(tf_ch, Direction::Encrypt, &[9u8; 12], &[], &[0u8; 32], None)
        .unwrap();
    assert_eq!(m.request_cores(id).unwrap(), &[2]);
    m.run_until_done(id, 10_000_000);
    m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();
}

/// One encrypt + one tampered decrypt on a fresh default MCCP, with
/// telemetry enabled. Shared by the end-to-end and determinism tests.
fn telemetry_workload() -> Mccp {
    let key = [0x3Cu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    m.enable_telemetry(256);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    let pkt = m
        .encrypt_packet(ch, b"hdr", &[0u8; 64], &[1u8; 12])
        .unwrap();
    let err = m.decrypt_packet(ch, b"hdr", &pkt.ciphertext, &[0u8; 16], &[1u8; 12]);
    assert_eq!(err.unwrap_err(), MccpError::AuthFail);
    m
}

#[test]
fn telemetry_records_full_lifecycle() {
    let mut m = telemetry_workload();

    let kinds: Vec<&str> = m.telemetry().events().map(|e| e.event.kind()).collect();
    for want in [
        "request_submitted",
        "request_dispatched",
        "core_started",
        "fifo_push",
        "request_completed",
        "request_retrieved",
        "fifo_pop",
        "key_cache_miss",
        "key_cache_hit",
        "auth_fail_wipe",
    ] {
        assert!(kinds.contains(&want), "missing {want} in {kinds:?}");
    }
    // Events are cycle-stamped and monotone.
    let cycles: Vec<u64> = m.telemetry().events().map(|e| e.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]));

    // Spans: request 1 completed ok and was retrieved; request 2
    // failed authentication.
    let spans = m.telemetry().spans();
    let ok = spans.get(1).expect("span for request 1");
    assert_eq!(ok.auth_ok, Some(true));
    assert!(ok.completion_latency().unwrap() > 0);
    assert!(ok.retrieved.is_some());
    let bad = spans.get(2).expect("span for request 2");
    assert_eq!(bad.auth_ok, Some(false));

    // Registry counters derived from the events.
    let snap = m.telemetry_snapshot();
    assert_eq!(snap.counter("mccp_requests_submitted_total"), 2);
    assert_eq!(snap.counter("mccp_requests_completed_total"), 2);
    assert_eq!(snap.counter("mccp_auth_failures_total"), 1);
    assert_eq!(snap.counter("mccp_fifo_wipes_total"), 1);
    assert_eq!(snap.counter("mccp_key_cache_misses_total"), 1);
    assert_eq!(snap.counter("mccp_key_cache_hits_total"), 1);
    assert!(snap.counter("mccp_dma_words_total") > 0);
    // Scheduler-owned gauges published at snapshot time.
    assert!(snap.gauge("mccp_cycles") > 0);
    assert!(snap.gauge("mccp_core_busy_cycles{core=\"0\"}") > 0);
    assert!(snap.gauge("mccp_fifo_highwater_words{core=\"0\",port=\"output\"}") > 0);
}

#[test]
fn telemetry_is_deterministic_across_runs() {
    let mut a = telemetry_workload();
    let mut b = telemetry_workload();
    let lines_a = mccp_telemetry::export::json_lines(&a.telemetry_mut().take_events());
    let lines_b = mccp_telemetry::export::json_lines(&b.telemetry_mut().take_events());
    assert_eq!(lines_a, lines_b);
    let prom_a = mccp_telemetry::export::prometheus_text(&a.telemetry_snapshot());
    let prom_b = mccp_telemetry::export::prometheus_text(&b.telemetry_snapshot());
    assert_eq!(prom_a, prom_b);
    assert!(prom_a.contains("mccp_requests_submitted_total 2"));
}

#[test]
fn telemetry_disabled_is_inert() {
    let key = [0x3Cu8; 16];
    let (mut m, kid) = mccp_with_key(&key);
    let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
    m.encrypt_packet(ch, b"hdr", &[0u8; 64], &[1u8; 12])
        .unwrap();
    assert!(!m.telemetry().is_enabled());
    assert_eq!(m.telemetry().events().count(), 0);
    assert_eq!(m.telemetry().dropped(), 0);
    assert!(m.telemetry().spans().is_empty());
    let snap = m.telemetry_snapshot();
    assert_eq!(snap.counter("mccp_events_total"), 0);
    assert_eq!(snap.gauge("mccp_cycles"), 0);
}

#[test]
fn reconfiguration_blocks_then_retargets_core() {
    use mccp_sim::resources::Resources;
    let key = [0x7Eu8; 16];
    let mut m = Mccp::new(MccpConfig {
        n_cores: 2,
        ..MccpConfig::default()
    });
    m.enable_telemetry(64);
    m.key_memory_mut().store(KeyId(1), &key);

    // A tiny synthetic bitstream so the test stays fast (the real
    // Twofish partial bitstream models ~12M cycles from CompactFlash).
    let bs = Bitstream {
        personality: Personality::TwofishUnit,
        resources: Resources::new(10, 1),
        size_kb: 1,
    };
    let budget = m
        .begin_reconfiguration(0, bs, BitstreamSource::Ram)
        .unwrap();
    assert!(budget > 0);
    assert!(m.is_reconfiguring(0));
    // Mid-flight: the region is locked against double loads and the
    // scheduler keeps AES traffic off the core.
    assert_eq!(
        m.begin_reconfiguration(0, bs, BitstreamSource::Ram),
        Err(MccpError::Busy)
    );
    let ch = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
    let id = m
        .submit(ch, Direction::Encrypt, &[1u8; 12], &[], &[0u8; 16], None)
        .unwrap();
    assert_eq!(m.request_cores(id).unwrap(), &[1]);
    m.run_until_done(id, 10_000_000);
    m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();

    for _ in 0..budget {
        if !m.is_reconfiguring(0) {
            break;
        }
        m.tick();
    }
    assert!(!m.is_reconfiguring(0));
    assert_eq!(m.core(0).personality(), Personality::TwofishUnit);

    // The reconfigured core now serves Twofish channels.
    let tf_ch = m
        .open_with_cipher(Algorithm::AesGcm128, KeyId(1), 16, CipherSel::Twofish)
        .unwrap();
    let id = m
        .submit(tf_ch, Direction::Encrypt, &[2u8; 12], &[], &[0u8; 16], None)
        .unwrap();
    assert_eq!(m.request_cores(id).unwrap(), &[0]);
    m.run_until_done(id, 10_000_000);
    m.retrieve(id).unwrap();
    m.transfer_done(id).unwrap();

    // Telemetry saw the begin/end pair and the cycle cost.
    let kinds: Vec<&str> = m.telemetry().events().map(|e| e.event.kind()).collect();
    assert!(kinds.contains(&"reconfig_begin"), "{kinds:?}");
    assert!(kinds.contains(&"reconfig_end"), "{kinds:?}");
    let snap = m.telemetry_snapshot();
    assert_eq!(snap.counter("mccp_reconfigurations_total"), 1);
}

#[test]
fn fast_forward_matches_per_tick() {
    // Same packet, fast path vs per-tick reference: identical cycle
    // counts, outputs and final simulation time.
    let key = [0x42u8; 16];
    let run = |ff: bool| {
        let (mut m, kid) = mccp_with_key(&key);
        m.set_fast_forward(ff);
        let ch = m.open(Algorithm::AesGcm128, kid).unwrap();
        let payload = vec![7u8; 512];
        let pkt = m.encrypt_packet(ch, b"hdr", &payload, &[2u8; 12]).unwrap();
        (pkt.cycles, pkt.ciphertext, pkt.tag, m.cycle())
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn run_until_leaps_idle_machine() {
    let (mut m, _) = mccp_with_key(&[1u8; 16]);
    m.run_until(1_000_000);
    assert_eq!(m.cycle(), 1_000_000);
}

#[test]
fn all_key_sizes_gcm() {
    for (len, alg) in [
        (16usize, Algorithm::AesGcm128),
        (24, Algorithm::AesGcm192),
        (32, Algorithm::AesGcm256),
    ] {
        let key: Vec<u8> = (0..len as u8).collect();
        let mut m = Mccp::new(MccpConfig::default());
        m.key_memory_mut().store(KeyId(1), &key);
        let ch = m.open(alg, KeyId(1)).unwrap();
        let payload = [0x5Au8; 48];
        let pkt = m.encrypt_packet(ch, &[], &payload, &[6u8; 12]).unwrap();
        let aes = Aes::new(&key);
        let reference = gcm_seal(&aes, &[6u8; 12], &[], &payload, 16).unwrap();
        assert_eq!(pkt.ciphertext, reference[..48], "key len {len}");
        assert_eq!(pkt.tag, reference[48..], "key len {len}");
    }
}
