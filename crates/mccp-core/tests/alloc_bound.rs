//! Asserts the arena contract of the functional packet path: in the steady
//! state (channel open, key context warm) a GCM packet through
//! [`FunctionalBackend`] performs only the handful of allocations that own
//! the output (`Completion.body` / `Completion.tag`) — no per-packet key
//! schedule, no GHASH table build, no channel clone, no formatting scratch.
//!
//! A counting `#[global_allocator]` wraps the system allocator; everything
//! runs in one `#[test]` so parallel test threads can't perturb the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_packet_allocs_are_bounded() {
    use mccp_core::backend::ChannelBackend;
    use mccp_core::format::Direction;
    use mccp_core::functional::FunctionalBackend;
    use mccp_core::protocol::Algorithm;

    let mut be = FunctionalBackend::new();
    let ch = be
        .open_channel(Algorithm::AesGcm128, &[0x41u8; 16], 16)
        .unwrap();
    let iv = [5u8; 12];
    let aad = [1u8; 16];
    let body = [0xC3u8; 512];

    // Warm-up: first packet expands the key schedule, builds the GHASH
    // powers and grows the completion queue.
    be.submit_packet(ch, Direction::Encrypt, &iv, &aad, &body, None)
        .unwrap();
    be.poll_completion().unwrap();

    const PACKETS: usize = 100;
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for _ in 0..PACKETS {
        be.submit_packet(ch, Direction::Encrypt, &iv, &aad, &body, None)
            .unwrap();
        be.poll_completion().unwrap();
    }
    let per_packet = (ALLOC_CALLS.load(Ordering::Relaxed) - before) as f64 / PACKETS as f64;

    // Output ownership costs: the sealed buffer, the split-off tag, and
    // amortized queue churn. Anything above this bound means per-packet
    // key-schedule / GHASH-table / clone work crept back in.
    assert!(
        per_packet <= 4.0,
        "functional path allocates {per_packet} times per packet (expected <= 4)"
    );
}
