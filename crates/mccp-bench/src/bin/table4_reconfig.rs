//! Table IV — partial reconfiguration results: bitstream sizes and
//! reconfiguration times for the AES and Whirlpool Cryptographic Unit
//! configurations, from CompactFlash and from RAM.
//!
//! The load latencies are charged through the demand-policy swap path
//! ([`Mccp::policy_swap`]) — the same accounting every policy-driven
//! personality flip uses — and cross-checked against the bitstreams'
//! published budgets, so the table reports what the engine actually
//! charges.

use mccp_core::core_unit::Personality;
use mccp_core::reconfig::{
    BitstreamSource, PolicyConfig, AES_BITSTREAM, REGION, WHIRLPOOL_BITSTREAM,
};
use mccp_core::{Mccp, MccpConfig};

/// Charges one AES and one Whirlpool personality load through the policy
/// engine's swap path, returning the (aes, whirlpool) cycle budgets.
fn charge_swaps(source: BitstreamSource) -> (u64, u64) {
    let mut m = Mccp::new(MccpConfig::default());
    m.enable_reconfig_policy(PolicyConfig {
        source,
        ..PolicyConfig::default()
    });
    // Core 0 starts as an AES unit: make the AES load a real flip.
    m.core_mut(0).set_personality(Personality::WhirlpoolUnit);
    let aes = m.policy_swap(0, Personality::AesUnit).unwrap();
    let wp = m.policy_swap(1, Personality::WhirlpoolUnit).unwrap();
    assert_eq!(m.policy().unwrap().swaps(), 2);
    (aes, wp)
}

fn main() {
    println!("Table IV — Partial reconfiguration results");
    println!(
        "(reconfigurable region: {} slices, {} BRAM)\n",
        REGION.slices, REGION.brams
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Core", "AES Encryption (KS)", "Whirlpool"
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Slices (BRAM)",
        format!(
            "{} ({})",
            AES_BITSTREAM.resources.slices, AES_BITSTREAM.resources.brams
        ),
        format!(
            "{} ({})",
            WHIRLPOOL_BITSTREAM.resources.slices, WHIRLPOOL_BITSTREAM.resources.brams
        )
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Bitstream Size (kB)", AES_BITSTREAM.size_kb, WHIRLPOOL_BITSTREAM.size_kb
    );
    for (label, src, paper) in [
        (
            "Reconf. time, CF (ms)",
            BitstreamSource::CompactFlash,
            (380.0, 416.0),
        ),
        ("Reconf. time, RAM (ms)", BitstreamSource::Ram, (63.0, 69.0)),
    ] {
        let aes = AES_BITSTREAM.load_time_ms(src);
        let wp = WHIRLPOOL_BITSTREAM.load_time_ms(src);
        println!(
            "{:<28} {:>18} {:>12}   (paper: {} / {})",
            label,
            format!("{aes:.0}"),
            format!("{wp:.0}"),
            paper.0,
            paper.1
        );
        assert!((aes - paper.0).abs() / paper.0 < 0.02);
        assert!((wp - paper.1).abs() / paper.1 < 0.02);
        // The policy engine must charge exactly these budgets when it
        // flips a core — Table IV is what swaps actually cost.
        let (aes_cycles, wp_cycles) = charge_swaps(src);
        assert_eq!(aes_cycles, AES_BITSTREAM.load_time_cycles(src));
        assert_eq!(wp_cycles, WHIRLPOOL_BITSTREAM.load_time_cycles(src));
    }

    let cycles = AES_BITSTREAM.load_time_cycles(BitstreamSource::Ram);
    let packet = 128u64 * 49;
    println!("\nInterpretation (paper §VII.B):");
    println!(
        "  RAM reconfiguration = {cycles} cycles at 190 MHz ≈ {} 2 KB GCM packets;",
        cycles / packet
    );
    println!("  => no real-time (per-packet) reconfiguration, but occasional");
    println!("  algorithm swaps are practical, and the other cores keep running.");
    println!("  Bitstream caching in RAM is ~6x faster than CompactFlash.");
}
