//! Table IV — partial reconfiguration results: bitstream sizes and
//! reconfiguration times for the AES and Whirlpool Cryptographic Unit
//! configurations, from CompactFlash and from RAM.

use mccp_core::reconfig::{BitstreamSource, AES_BITSTREAM, REGION, WHIRLPOOL_BITSTREAM};

fn main() {
    println!("Table IV — Partial reconfiguration results");
    println!(
        "(reconfigurable region: {} slices, {} BRAM)\n",
        REGION.slices, REGION.brams
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Core", "AES Encryption (KS)", "Whirlpool"
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Slices (BRAM)",
        format!(
            "{} ({})",
            AES_BITSTREAM.resources.slices, AES_BITSTREAM.resources.brams
        ),
        format!(
            "{} ({})",
            WHIRLPOOL_BITSTREAM.resources.slices, WHIRLPOOL_BITSTREAM.resources.brams
        )
    );
    println!(
        "{:<28} {:>18} {:>12}",
        "Bitstream Size (kB)", AES_BITSTREAM.size_kb, WHIRLPOOL_BITSTREAM.size_kb
    );
    for (label, src, paper) in [
        (
            "Reconf. time, CF (ms)",
            BitstreamSource::CompactFlash,
            (380.0, 416.0),
        ),
        ("Reconf. time, RAM (ms)", BitstreamSource::Ram, (63.0, 69.0)),
    ] {
        let aes = AES_BITSTREAM.load_time_ms(src);
        let wp = WHIRLPOOL_BITSTREAM.load_time_ms(src);
        println!(
            "{:<28} {:>18} {:>12}   (paper: {} / {})",
            label,
            format!("{aes:.0}"),
            format!("{wp:.0}"),
            paper.0,
            paper.1
        );
        assert!((aes - paper.0).abs() / paper.0 < 0.02);
        assert!((wp - paper.1).abs() / paper.1 < 0.02);
    }

    let cycles = AES_BITSTREAM.load_time_cycles(BitstreamSource::Ram);
    let packet = 128u64 * 49;
    println!("\nInterpretation (paper §VII.B):");
    println!(
        "  RAM reconfiguration = {cycles} cycles at 190 MHz ≈ {} 2 KB GCM packets;",
        cycles / packet
    );
    println!("  => no real-time (per-packet) reconfiguration, but occasional");
    println!("  algorithm swaps are practical, and the other cores keep running.");
    println!("  Bitstream caching in RAM is ~6x faster than CompactFlash.");
}
