//! Chaos soak: the fault-injection acceptance run, emitted as
//! `BENCH_chaos.json` (hand-formatted; no serde).
//!
//! One multi-standard workload is served twice per engine — once clean,
//! once under a seeded [`FaultPlan`] (core wedges, stalls, FIFO bit
//! flips, key-cache corruption, DMA word drops, plus one shard kill when
//! the cluster has a spare) — and the report quantifies what the fault
//! plane costs and what it saves:
//!
//! - **recovery rate** — delivered / offered under faults. Abandoned
//!   packets are reported, never silently dropped.
//! - **added latency** — p95 service latency, faulted vs clean.
//! - **degraded throughput** — aggregate Mbps retention under faults
//!   (a killed shard halves a 2-shard cluster's capacity; that is the
//!   honest number).
//!
//! Every delivered record (both runs, both engines) is verified against
//! the `mccp-aes` references: zero silent corruption is an assertion,
//! not a hope. The whole run is deterministic — same arguments, same
//! JSON bytes.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin chaos_soak -- --packets 200
//! cargo run --release -p mccp-bench --bin chaos_soak -- --packets 400 --seed 7 --faults 12
//! ```

use mccp_core::{FaultPlan, MccpConfig};
use mccp_sdr::cluster::{ClusterConfig, ClusterReport, MccpCluster};
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::Standard;

struct EngineRow {
    engine: &'static str,
    baseline_cycles: u64,
    chaos_cycles: u64,
    baseline_mbps: f64,
    chaos_mbps: f64,
    baseline_p95: u64,
    chaos_p95: u64,
    delivered: usize,
    abandoned: usize,
    retries: u64,
    core_resets: u64,
    dead_shards: usize,
    recovery_rate: f64,
}

fn main() {
    let mut packets = 200usize;
    let mut seed = 0xC405u64;
    let mut faults_per_shard = 6usize;
    let mut shards = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--packets" => packets = next("--packets").parse().expect("packet count"),
            "--seed" => seed = next("--seed").parse().expect("seed"),
            "--faults" => faults_per_shard = next("--faults").parse().expect("fault count"),
            "--shards" => shards = next("--shards").parse().expect("shard count"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(shards >= 1 && packets >= 1);

    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let spec = WorkloadSpec {
        standards: standards.clone(),
        packets,
        seed,
        fixed_payload_len: None,
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec);
    println!(
        "chaos_soak: {packets} packets across {} standards, {shards} shard(s), \
         {faults_per_shard} engine faults per shard, seed {seed:#x}",
        standards.len()
    );

    let cfg = ClusterConfig {
        shards,
        ..ClusterConfig::default()
    };
    let n_cores = MccpConfig::default().n_cores;

    // Clean baselines first: the cycle baseline's makespan also sets the
    // horizon the random plan spreads its cycle-triggered faults over.
    let mut cycle = MccpCluster::cycle_accurate(cfg, MccpConfig::default(), &standards, seed);
    let baseline_cycle = cycle.run(&workload, DispatchPolicy::Fifo);
    assert_eq!(
        cycle.verify(&workload, &baseline_cycle).expect("baseline"),
        packets
    );
    let mut functional = MccpCluster::functional(cfg, &standards, seed);
    let baseline_fn = functional.run(&workload, DispatchPolicy::Fifo);
    assert_eq!(
        functional
            .verify(&workload, &baseline_fn)
            .expect("baseline"),
        packets
    );

    let plans: Vec<FaultPlan> = (0..shards)
        .map(|s| {
            FaultPlan::random(
                seed.wrapping_add(s as u64),
                faults_per_shard,
                n_cores,
                baseline_cycle.merged.cycles.max(2),
                (packets / shards.max(1)) as u64,
            )
        })
        .collect();
    // With a spare shard available, also take a whole engine down partway
    // through — the dispatcher must redistribute its queue.
    let kills = if shards > 1 {
        vec![(shards - 1, (packets / (2 * shards)) as u64)]
    } else {
        Vec::new()
    };

    let chaos_cycle = {
        let mut cluster = MccpCluster::cycle_accurate(cfg, MccpConfig::default(), &standards, seed);
        for (s, plan) in plans.iter().enumerate() {
            cluster.backend_mut(s).arm_faults(plan);
            cluster.backend_mut(s).arm_watchdog(4);
        }
        cluster.set_shard_kills(kills.clone());
        let report = cluster.run(&workload, DispatchPolicy::Fifo);
        cluster
            .verify(&workload, &report)
            .expect("no silent corruption on the cycle engine");
        report
    };
    let chaos_fn = {
        let mut cluster = MccpCluster::functional(cfg, &standards, seed);
        for (s, plan) in plans.iter().enumerate() {
            cluster.backend_mut(s).arm_faults(plan);
        }
        cluster.set_shard_kills(kills.clone());
        let report = cluster.run(&workload, DispatchPolicy::Fifo);
        cluster
            .verify(&workload, &report)
            .expect("no silent corruption on the functional engine");
        report
    };

    let rows = [
        summarize("cycle", packets, &baseline_cycle, &chaos_cycle),
        summarize("functional", packets, &baseline_fn, &chaos_fn),
    ];
    for row in &rows {
        println!(
            "  {}: {}/{} delivered ({:.1}% recovery), {} retries, {} core resets, \
             {} dead shard(s); p95 latency {} -> {} cyc; {:.0} -> {:.0} Mbps",
            row.engine,
            row.delivered,
            packets,
            100.0 * row.recovery_rate,
            row.retries,
            row.core_resets,
            row.dead_shards,
            row.baseline_p95,
            row.chaos_p95,
            row.baseline_mbps,
            row.chaos_mbps,
        );
        assert_eq!(
            row.delivered + row.abandoned,
            packets,
            "every packet is delivered or reported failed"
        );
        assert!(
            row.recovery_rate >= 0.99,
            "{}: recovery rate {:.3} below the 99% floor",
            row.engine,
            row.recovery_rate
        );
    }

    let fault_labels: Vec<String> = plans
        .iter()
        .enumerate()
        .flat_map(|(s, p)| {
            p.entries
                .iter()
                .map(move |e| format!("\"s{s}:{}\"", e.kind.label()))
        })
        .chain(kills.iter().map(|(s, _)| format!("\"s{s}:kill_shard\"")))
        .collect();
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"engine\": \"{}\", \"delivered\": {}, \"abandoned\": {}, \
                 \"recovery_rate\": {:.4}, \"retries\": {}, \"core_resets\": {}, \
                 \"dead_shards\": {}, \"baseline_cycles\": {}, \"chaos_cycles\": {}, \
                 \"baseline_p95_latency\": {}, \"chaos_p95_latency\": {}, \
                 \"added_p95_latency\": {}, \"baseline_mbps\": {:.1}, \"chaos_mbps\": {:.1}, \
                 \"throughput_retention\": {:.3}}}",
                r.engine,
                r.delivered,
                r.abandoned,
                r.recovery_rate,
                r.retries,
                r.core_resets,
                r.dead_shards,
                r.baseline_cycles,
                r.chaos_cycles,
                r.baseline_p95,
                r.chaos_p95,
                r.chaos_p95.saturating_sub(r.baseline_p95),
                r.baseline_mbps,
                r.chaos_mbps,
                if r.baseline_mbps > 0.0 {
                    r.chaos_mbps / r.baseline_mbps
                } else {
                    0.0
                },
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"chaos_soak\",\n  \"seed\": {seed},\n  \"packets\": {packets},\n  \
         \"shards\": {shards},\n  \"faults_per_shard\": {faults_per_shard},\n  \
         \"host_parallelism\": {},\n  \
         \"faults\": [{}],\n  \
         \"note\": \"deterministic: same arguments reproduce this file byte-for-byte; \
         all delivered packets reference-verified (zero silent corruption)\",\n  \
         \"engines\": [\n{}\n  ]\n}}\n",
        mccp_sdr::host_parallelism(),
        fault_labels.join(", "),
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    print!("{json}");
    println!("chaos_soak PASSED: recovery >= 99% on both engines, zero silent corruption");
}

fn summarize(
    engine: &'static str,
    packets: usize,
    baseline: &ClusterReport,
    chaos: &ClusterReport,
) -> EngineRow {
    EngineRow {
        engine,
        baseline_cycles: baseline.merged.cycles,
        chaos_cycles: chaos.merged.cycles,
        baseline_mbps: baseline.aggregate_throughput_mbps(),
        chaos_mbps: chaos.aggregate_throughput_mbps(),
        baseline_p95: baseline.merged.latency_percentile(0.95),
        chaos_p95: chaos.merged.latency_percentile(0.95),
        delivered: chaos.merged.packets,
        abandoned: chaos.abandoned.len(),
        retries: chaos.retries,
        core_resets: chaos.core_resets,
        dead_shards: chaos.dead_shards,
        recovery_rate: chaos.merged.packets as f64 / packets as f64,
    }
}
