//! Ablation — the start/finalize ISA split (background overlap).
//!
//! The CU ISA splits AES/GHASH into SAES/SGFM (start, background) and
//! FAES/FGFM (finalize). This is what lets Listing 1 hide XOR/STORE/INC/
//! LOAD behind the 44-cycle AES computation. Here we drive the same GCM
//! block schedule twice on the raw Cryptographic Unit:
//!
//! * **overlapped** — next instruction strobed as soon as the pending
//!   register frees (the firmware's behaviour);
//! * **serialized** — next instruction strobed only after the previous
//!   one *completes* (as a blocking, non-split ISA would behave).

use mccp_aes::key_schedule::RoundKeys;
use mccp_cryptounit::{CryptoUnit, CuInstruction, CuIo};
use mccp_sim::HwFifo;

struct Rig {
    cu: CryptoUnit,
    input: HwFifo,
    output: HwFifo,
    left: Option<[u8; 16]>,
    right: Option<[u8; 16]>,
}

impl Rig {
    fn new() -> Self {
        let mut cu = CryptoUnit::new();
        cu.load_round_keys(RoundKeys::expand(&[7u8; 16]));
        let aes = mccp_aes::Aes::new_128(&[7u8; 16]);
        let h = {
            use mccp_aes::BlockCipher128;
            aes.encrypt_copy(&[0u8; 16])
        };
        cu.set_bank(3, h);
        let mut ctr = [0u8; 16];
        ctr[15] = 1;
        cu.set_bank(0, ctr);
        Rig {
            cu,
            input: HwFifo::new(8192),
            output: HwFifo::new(8192),
            left: None,
            right: None,
        }
    }

    fn tick(&mut self) {
        let mut io = CuIo {
            input: &mut self.input,
            output: &mut self.output,
            to_right: &mut self.right,
            from_left: &mut self.left,
        };
        self.cu.tick(&mut io);
    }

    /// Runs `n` instructions from the cyclic schedule. With `serialize`,
    /// each instruction is strobed only once the whole unit (foreground
    /// *and* background engines) is quiescent — the behaviour of a
    /// blocking, non-split ISA where SAES/SGFM would stall the datapath
    /// until the engine finishes. Returns total cycles.
    fn run(&mut self, schedule: &[CuInstruction], n: usize, serialize: bool) -> u64 {
        let start = self.cu.cycles();
        let mut issued = 0usize;
        let mut retired = 0usize;
        while retired < n {
            let can_issue = if serialize {
                self.cu.is_idle()
            } else {
                self.cu.can_strobe()
            };
            if issued < n && can_issue {
                self.cu.strobe(schedule[issued % schedule.len()].encode());
                issued += 1;
            }
            self.tick();
            if self.cu.done_pulse() {
                retired += 1;
            }
            assert!(!self.cu.is_faulted());
        }
        self.cu.cycles() - start
    }
}

fn main() {
    // The Listing-1 GCM body (7 CU instructions per block).
    let body = [
        CuInstruction::Faes { a: 1 },
        CuInstruction::Saes { a: 0 },
        CuInstruction::Xor { a: 2, b: 1 },
        CuInstruction::Sgfm { a: 1 },
        CuInstruction::Store { a: 1 },
        CuInstruction::Inc { a: 0, amount: 1 },
        CuInstruction::Load { a: 2 },
    ];
    const BLOCKS: usize = 64;

    let prep = |rig: &mut Rig| {
        rig.input.push_bytes(&vec![0x5Au8; 16 * (BLOCKS + 2)]);
        rig.run(
            &[
                CuInstruction::LoadH { a: 3 },
                CuInstruction::Load { a: 2 },
                CuInstruction::Saes { a: 0 },
                CuInstruction::Inc { a: 0, amount: 1 },
            ],
            4,
            false,
        );
    };

    let mut fast = Rig::new();
    prep(&mut fast);
    let overlapped = fast.run(&body, body.len() * BLOCKS, false);

    let mut slow = Rig::new();
    prep(&mut slow);
    let serialized = slow.run(&body, body.len() * BLOCKS, true);

    let per_block_fast = overlapped as f64 / BLOCKS as f64;
    let per_block_slow = serialized as f64 / BLOCKS as f64;

    println!("Ablation: background start/finalize overlap (GCM loop, {BLOCKS} blocks)\n");
    println!("  overlapped (firmware behaviour): {per_block_fast:.1} cycles/block");
    println!("  serialized (blocking ISA):       {per_block_slow:.1} cycles/block");
    println!(
        "  overlap speedup:                 {:.2}x",
        per_block_slow / per_block_fast
    );
    println!("\n(The paper's 49-cycle loop depends on the split; a blocking ISA");
    println!(" pays every foreground instruction on the critical path.)");
    assert!(per_block_fast < 51.0, "overlapped must hit ~49");
    assert!(
        per_block_slow > per_block_fast + 20.0,
        "serialization must cost >20 cycles/block"
    );
}
