//! Derived figure X-1 — throughput vs packet size.
//!
//! §VII.A: "actual throughput depends on packet size, higher throughputs
//! are obtained from larger packets." Sweeps 64 B – 8 KB for single-core
//! GCM-128 and CCM-128 (packets beyond the 2 KB FIFO run in the
//! documented streaming mode) and prints the measured curve next to the
//! analytical model with the paper's implied 851-cycle overhead.

use mccp_aes::KeySize;
use mccp_bench::measure_schedule;
use mccp_core::model::{packet_mbps, stream_mbps, Schedule};

fn main() {
    println!("Throughput vs packet size (single core, AES-128, Mbps @ 190 MHz)\n");
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "bytes", "GCM measured", "GCM model", "CCM measured", "CCM model"
    );
    let sizes = [64usize, 128, 256, 512, 1024, 2048, 4096, 8192];
    let mut prev_gcm = 0.0f64;
    for &size in &sizes {
        let gcm = measure_schedule(Schedule::Gcm1Core, KeySize::Aes128, size);
        let ccm = measure_schedule(Schedule::Ccm1Core, KeySize::Aes128, size);
        let gcm_model = packet_mbps(Schedule::Gcm1Core, KeySize::Aes128, size, 851);
        let ccm_model = packet_mbps(Schedule::Ccm1Core, KeySize::Aes128, size, 1234);
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            size, gcm.mbps, gcm_model, ccm.mbps, ccm_model
        );
        assert!(
            gcm.mbps >= prev_gcm,
            "throughput must be monotone in packet size"
        );
        prev_gcm = gcm.mbps;
    }
    let bound = stream_mbps(Schedule::Gcm1Core, KeySize::Aes128);
    println!(
        "\nGCM asymptote (loop bound): {bound:.1} Mbps; 8 KB packets reach {:.0}% of it.",
        prev_gcm / bound * 100.0
    );
    assert!(prev_gcm < bound, "measured must stay below the loop bound");
    assert!(
        prev_gcm > 0.95 * bound,
        "large packets must approach the bound"
    );
}
