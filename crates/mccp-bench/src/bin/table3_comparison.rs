//! Table III — performance comparison against the literature.
//!
//! Literature ASIC rows use their published Mbps/MHz figures (we cannot
//! re-synthesize closed ASICs); the pipelined-GCM and dual-CCM FPGA
//! baselines and the MCCP rows are regenerated from executable models.

use mccp_aes::KeySize;
use mccp_baselines::table3::Table3;
use mccp_bench::measure_schedule;
use mccp_core::model::{Schedule, PAPER_OUR_WORK};

fn main() {
    let gcm = measure_schedule(Schedule::Gcm4x1, KeySize::Aes128, 2048);
    let ccm = measure_schedule(Schedule::Ccm4x1, KeySize::Aes128, 2048);
    let table = Table3::build(gcm.mbps, ccm.mbps);

    println!("Table III — Performance comparison");
    println!(
        "{:<32} {:<16} {:<6} {:<6} {:>10} {:>8} {:>14}",
        "Implementation", "Platform", "Prog.", "Alg.", "Mbps/MHz", "MHz", "Slices (BRAM)"
    );
    for row in &table.rows {
        let area = match (row.slices, row.brams) {
            (Some(s), Some(b)) => format!("{s} ({b})"),
            _ => "—".to_string(),
        };
        println!(
            "{:<32} {:<16} {:<6} {:<6} {:>10.2} {:>8} {:>14}",
            row.name,
            row.platform,
            if row.programmable { "Yes" } else { "No" },
            row.algorithm,
            row.mbps_per_mhz,
            row.frequency_mhz,
            area
        );
    }

    println!(
        "\nPaper's own row: GCM {:.2} / CCM {:.2} Mbps/MHz; reproduced: GCM {:.2} / CCM {:.2}",
        PAPER_OUR_WORK.0,
        PAPER_OUR_WORK.1,
        gcm.mbps / 190.0,
        ccm.mbps / 190.0
    );

    assert!(table.shape_holds(), "Table III ordering must reproduce");
    println!("\nShape check PASSES: pipelined GCM > MCCP > every programmable design,");
    println!("while the MCCP remains the only architecture covering all modes + channels.");
}
