//! §VII loop-cycle equations: measures the steady-state cycles per
//! 128-bit block of every mode loop from the cycle-accurate simulator
//! (firmware + CU + controller) and compares against the paper's
//! closed-form budgets (49 / 55 / 104, +8 per step of key size).
//!
//! Method: process one packet of N blocks and one of 2N blocks on a fresh
//! core; the per-block steady-state cost is the cycle difference divided
//! by N — pre/post-loop overheads cancel exactly.

use mccp_aes::KeySize;
use mccp_bench::iv_for;
use mccp_core::model::Schedule;
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Mccp, MccpConfig};

fn packet_cycles(alg: Algorithm, two_core: bool, blocks: usize) -> u64 {
    let mut m = Mccp::new(MccpConfig {
        ccm_two_core: two_core,
        ..MccpConfig::default()
    });
    let key: Vec<u8> = (0..alg.key_size().key_bytes() as u8).collect();
    m.key_memory_mut().store(KeyId(1), &key);
    let ch = m.open_with_tag_len(alg, KeyId(1), 16).unwrap();
    let payload = vec![0x3Cu8; blocks * 16];
    // Warm the key cache so the Key Scheduler latency cancels too.
    let p = m
        .encrypt_packet(ch, &[], &payload, &iv_for(alg, 0))
        .unwrap();
    let _ = p;
    let p = m
        .encrypt_packet(ch, &[], &payload, &iv_for(alg, 1))
        .unwrap();
    p.cycles
}

fn measure(alg: Algorithm, two_core: bool) -> f64 {
    const N: usize = 48;
    let c1 = packet_cycles(alg, two_core, N);
    let c2 = packet_cycles(alg, two_core, 2 * N);
    (c2 - c1) as f64 / N as f64
}

fn main() {
    println!("Mode-loop cycle budgets: paper equations vs cycle-accurate measurement\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10}",
        "Loop", "key", "paper", "measured", "delta"
    );
    type LoopCase = (&'static str, Algorithm, bool, fn(KeySize) -> u32);
    let cases: [LoopCase; 9] = [
        (
            "GCM (= CTR)",
            Algorithm::AesGcm128,
            false,
            mccp_cryptounit::timing::t_gcm_loop,
        ),
        (
            "GCM (= CTR)",
            Algorithm::AesGcm192,
            false,
            mccp_cryptounit::timing::t_gcm_loop,
        ),
        (
            "GCM (= CTR)",
            Algorithm::AesGcm256,
            false,
            mccp_cryptounit::timing::t_gcm_loop,
        ),
        (
            "CCM 1 core",
            Algorithm::AesCcm128,
            false,
            mccp_cryptounit::timing::t_ccm_loop_1core,
        ),
        (
            "CCM 1 core",
            Algorithm::AesCcm192,
            false,
            mccp_cryptounit::timing::t_ccm_loop_1core,
        ),
        (
            "CCM 1 core",
            Algorithm::AesCcm256,
            false,
            mccp_cryptounit::timing::t_ccm_loop_1core,
        ),
        (
            "CCM 2 cores (CBC)",
            Algorithm::AesCcm128,
            true,
            mccp_cryptounit::timing::t_ccm_loop_2core,
        ),
        (
            "CCM 2 cores (CBC)",
            Algorithm::AesCcm192,
            true,
            mccp_cryptounit::timing::t_ccm_loop_2core,
        ),
        (
            "CCM 2 cores (CBC)",
            Algorithm::AesCcm256,
            true,
            mccp_cryptounit::timing::t_ccm_loop_2core,
        ),
    ];
    let mut worst: f64 = 0.0;
    for (name, alg, two_core, model) in cases {
        let paper = model(alg.key_size()) as f64;
        let measured = measure(alg, two_core);
        let delta = measured - paper;
        worst = worst.max(delta.abs());
        println!(
            "{:<22} {:>8} {:>8.0} {:>8.2} {:>+10.2}",
            name,
            alg.key_size().key_bits(),
            paper,
            measured,
            delta
        );
    }
    println!("\nworst |delta| = {worst:.2} cycles/block");
    println!("(paper §VII: T_GCMloop = T_SAES+T_FAES = 49; T_CCM,2cores = 55;");
    println!(" T_CCM,1core = T_CTR+T_CBC = 104; +8 for 192-bit keys, +16 for 256.)");
    let _ = Schedule::ALL; // referenced for doc cross-link
}
