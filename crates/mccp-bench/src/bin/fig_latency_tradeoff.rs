//! Derived figure X-2 — the CCM scheduling trade-off.
//!
//! §VII.A: "AES-CCM 4x1 cores provides better throughput than AES-CCM 2x2
//! cores ... However, latency of the first solution is almost two times
//! greater than latency of the second solution." Four 2 KB CCM-128
//! packets, both schedules, measured on the cycle-accurate simulator.

use mccp_aes::KeySize;
use mccp_bench::measure_schedule;
use mccp_core::model::Schedule;

fn main() {
    println!("CCM scheduling trade-off (four 2 KB CCM-128 packets, 4 cores)\n");
    println!(
        "{:>14} {:>18} {:>22}",
        "schedule", "aggregate Mbps", "per-packet latency"
    );
    let c4 = measure_schedule(Schedule::Ccm4x1, KeySize::Aes128, 2048);
    let c22 = measure_schedule(Schedule::Ccm2x2, KeySize::Aes128, 2048);
    println!(
        "{:>14} {:>18.0} {:>18} cyc",
        "4x1", c4.mbps, c4.latency_cycles
    );
    println!(
        "{:>14} {:>18.0} {:>18} cyc",
        "2x2", c22.mbps, c22.latency_cycles
    );

    let tput_gain = c4.mbps / c22.mbps;
    let latency_ratio = c4.latency_cycles as f64 / c22.latency_cycles as f64;
    println!("\n4x1 / 2x2 throughput ratio: {tput_gain:.2}x (paper: 932/884 = 1.05x)");
    println!("4x1 / 2x2 latency ratio:    {latency_ratio:.2}x (paper: \"almost two times\")");

    assert!(c4.mbps > c22.mbps, "4x1 must win on throughput");
    assert!(
        latency_ratio > 1.5 && latency_ratio < 2.2,
        "latency ratio must be near 104/55 = 1.9, got {latency_ratio:.2}"
    );
    println!("\nBoth §VII.A claims REPRODUCE: pick 4x1 for throughput, 2x2 for latency.");
}
