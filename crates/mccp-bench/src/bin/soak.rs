//! Soak run: continuous multi-standard traffic through the cycle-accurate
//! MCCP with end-to-end verification of every packet — the "leave it
//! running" confidence tool. Defaults to 200 packets; pass a count.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin soak -- 1000
//! ```

use mccp_core::MccpConfig;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{RadioDriver, Standard};

fn main() {
    let packets: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    println!(
        "soak: {packets} packets across {} standards on a 4-core MCCP",
        standards.len()
    );

    let mut total_bits = 0u64;
    let mut total_cycles = 0u64;
    let mut verified = 0usize;
    // Several rounds with fresh seeds: every run is generated, encrypted,
    // verified against the NIST references, then decrypted back through
    // the hardware (receiver role).
    let rounds = packets.div_ceil(50);
    for round in 0..rounds {
        let spec = WorkloadSpec {
            standards: standards.clone(),
            packets: packets.min(50),
            seed: 0xBEEF + round as u64,
            fixed_payload_len: None,
            mean_interarrival_cycles: None,
        };
        let workload = Workload::generate(spec.clone());
        let mut tx = RadioDriver::new(MccpConfig::default(), &spec.standards, round as u64);
        // Metrics + spans only (capacity 0): soak runs for a long time, so
        // keep the event log out of memory and read the registry instead.
        tx.mccp_mut().enable_telemetry(0);
        let report = tx.run(&workload, DispatchPolicy::Fifo);
        verified += tx.verify(&workload, &report).expect("verify");
        let mut rx = RadioDriver::new(MccpConfig::default(), &spec.standards, round as u64);
        let rx_cycles = rx.run_receive(&workload, &report);
        total_bits += report.payload_bits;
        total_cycles += report.cycles + rx_cycles;
        println!(
            "  round {round}: {} packets tx+rx OK, {:.0} Mbps tx, p95 latency {} cyc",
            report.packets,
            report.throughput_mbps(),
            report.latency_percentile(0.95)
        );
        // Periodic metrics-registry snapshot (per-core utilization and
        // FIFO pressure for this round's transmitter).
        let snap = tx.mccp_mut().telemetry_snapshot();
        let cycles = snap.gauge("mccp_cycles").max(1);
        let util: Vec<String> = (0..4)
            .map(|c| {
                let busy = snap.gauge(&format!("mccp_core_busy_cycles{{core=\"{c}\"}}"));
                format!("{:.0}%", 100.0 * busy as f64 / cycles as f64)
            })
            .collect();
        let hw_out = (0..4)
            .map(|c| {
                snap.gauge(&format!(
                    "mccp_fifo_highwater_words{{core=\"{c}\",port=\"output\"}}"
                ))
            })
            .max()
            .unwrap_or(0);
        println!(
            "    metrics: util {} | dma {} words | key hits/misses {}/{} | fifo hw {} words",
            util.join("/"),
            snap.counter("mccp_dma_words_total"),
            snap.counter("mccp_key_cache_hits_total"),
            snap.counter("mccp_key_cache_misses_total"),
            hw_out,
        );
    }
    println!(
        "\nsoak PASSED: {verified} packets verified both directions; \
         {:.1} Mbit moved in {:.1} Mcycles (duplex)",
        total_bits as f64 / 1e6,
        total_cycles as f64 / 1e6
    );
}
