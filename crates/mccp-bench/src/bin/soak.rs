//! Soak run: continuous multi-standard traffic with end-to-end
//! verification of every packet — the "leave it running" confidence
//! tool. Defaults to 200 packets on the cycle-accurate engine; pass a
//! count and/or `--engine functional` for the fast path.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin soak -- 1000
//! cargo run --release -p mccp-bench --bin soak -- 1000 --engine functional
//! ```

use mccp_core::{ChannelBackend, FunctionalBackend, Mccp, MccpConfig};
use mccp_sdr::driver::RunReport;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{
    MccpService, QosClass, RadioDriver, ServiceChannelId, ServiceConfig, ServiceError, Standard,
};

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Cycle,
    Functional,
}

/// One verified duplex round on any engine: encrypt the workload,
/// reference-check every record, decrypt it back through a fresh
/// receiver. Returns the transmitter (for metrics), the tx report, and
/// the receive cycles.
fn round_on<B: ChannelBackend>(
    mk: impl Fn() -> B,
    spec: &WorkloadSpec,
    workload: &Workload,
    round: usize,
) -> (RadioDriver<B>, RunReport, u64) {
    let mut tx = RadioDriver::with_backend(mk(), &spec.standards, round as u64);
    // Metrics + spans only (capacity 0): soak runs for a long time, so
    // keep the event log out of memory and read the registry instead.
    tx.backend_mut().enable_telemetry(0);
    let report = tx.run(workload, DispatchPolicy::Fifo);
    let verified = tx.verify(workload, &report).expect("verify");
    assert_eq!(verified, report.packets);
    let mut rx = RadioDriver::with_backend(mk(), &spec.standards, round as u64);
    let rx_cycles = rx.run_receive(workload, &report);
    (tx, report, rx_cycles)
}

fn main() {
    let mut packets = 200usize;
    let mut engine = Engine::Cycle;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("cycle") => Engine::Cycle,
                    Some("functional") => Engine::Functional,
                    other => panic!("--engine expects cycle|functional, got {other:?}"),
                }
            }
            n => packets = n.parse().expect("packet count"),
        }
    }
    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let engine_name = match engine {
        Engine::Cycle => "cycle-accurate 4-core MCCP",
        Engine::Functional => "functional engine",
    };
    println!(
        "soak: {packets} packets across {} standards on the {engine_name}",
        standards.len()
    );

    let mut total_bits = 0u64;
    let mut total_cycles = 0u64;
    let mut verified = 0usize;
    // Several rounds with fresh seeds: every run is generated, encrypted,
    // verified against the NIST references, then decrypted back through
    // the engine (receiver role).
    let rounds = packets.div_ceil(50);
    for round in 0..rounds {
        let spec = WorkloadSpec {
            standards: standards.clone(),
            packets: packets.min(50),
            seed: 0xBEEF + round as u64,
            fixed_payload_len: None,
            mean_interarrival_cycles: None,
        };
        let workload = Workload::generate(spec.clone());
        let (report, rx_cycles) = match engine {
            Engine::Cycle => {
                let (mut tx, report, rx_cycles) =
                    round_on(|| Mccp::new(MccpConfig::default()), &spec, &workload, round);
                print_round(round, &report);
                print_core_metrics(tx.mccp_mut());
                (report, rx_cycles)
            }
            Engine::Functional => {
                let (mut tx, report, rx_cycles) =
                    round_on(FunctionalBackend::new, &spec, &workload, round);
                print_round(round, &report);
                // Per-core utilization and FIFO pressure only exist on
                // the cycle-accurate engine; report the lifecycle
                // counters instead.
                let snap = tx.backend_mut().telemetry_snapshot();
                println!(
                    "    metrics: {} submitted / {} completed",
                    snap.counter("mccp_requests_submitted_total"),
                    snap.counter("mccp_requests_completed_total"),
                );
                (report, rx_cycles)
            }
        };
        verified += report.packets;
        total_bits += report.payload_bits;
        total_cycles += report.cycles + rx_cycles;
    }
    // The service-plane leg: the batch rounds above prove steady-state
    // correctness; this proves lifecycle correctness under churn and a
    // flash crowd on the same engine.
    match engine {
        Engine::Cycle => {
            let mk = || {
                let mut m = Mccp::new(MccpConfig::default());
                m.set_fast_forward(true);
                m
            };
            service_churn_scenario(mk, "cycle");
            service_rekey_churn_scenario(mk, "cycle");
        }
        Engine::Functional => {
            service_churn_scenario(FunctionalBackend::new, "functional");
            service_rekey_churn_scenario(FunctionalBackend::new, "functional");
        }
    }
    // The reconfiguration leg: a standards-mix shift mid-soak must flip a
    // CU personality live, losslessly (cycle engine only — the functional
    // engine has no reconfigurable region model).
    if engine == Engine::Cycle {
        mix_shift_scenario();
    }

    println!(
        "\nsoak PASSED: {verified} packets verified both directions; \
         {:.1} Mbit moved in {:.1} Mcycles (duplex)",
        total_bits as f64 / 1e6,
        total_cycles as f64 / 1e6
    );
}

/// Open/close churn plus a flash crowd against the always-on service
/// plane: a base population holds sessions while a crowd of new sessions
/// arrives at once, floods the queues, and leaves. Verifies admission
/// keeps SecureVoice losslesss at the base rate, the crowd's slots all
/// recycle, and no stale id survives.
fn service_churn_scenario<B: ChannelBackend>(mk: impl Fn() -> B, engine_name: &str) {
    const BASE: usize = 200;
    const CROWD: usize = 800;
    let standards = [
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let key = |s: Standard, i: usize| {
        let len = if s == Standard::SecureVoice { 32 } else { 16 };
        vec![(i % 250) as u8 + 1; len]
    };
    let mut svc = MccpService::new(
        ServiceConfig {
            shards: 2,
            queue_capacity: 64,
            drain_budget: 16,
            warm_set_capacity: 32,
            step_bound: 200_000,
            ..ServiceConfig::default()
        },
        |_| mk(),
    );

    // Base population: a steady trickle that must ride out the crowd.
    let base_ids: Vec<ServiceChannelId> = (0..BASE)
        // `i*5+1` decorrelates the class mix from the round-robin shard
        // placement so both shards hold every class.
        .map(|i| {
            let s = standards[(i * 5 + 1) % 4];
            svc.open(s, &key(s, i)).expect("base open")
        })
        .collect();
    for (i, id) in base_ids.iter().enumerate() {
        svc.submit(*id, b"base", &[i as u8; 96], i as u64)
            .expect("pre-crowd base submit");
        if i % 8 == 7 {
            svc.pump();
        }
    }
    svc.quiesce(10_000);

    // Flash crowd: CROWD sessions open at once and all talk immediately.
    let crowd_ids: Vec<ServiceChannelId> = (0..CROWD)
        .map(|i| {
            let s = standards[(i * 5 + 3) % 4];
            svc.open(s, &key(s, i)).expect("crowd open")
        })
        .collect();
    assert_eq!(svc.occupancy(), BASE + CROWD);
    let mut crowd_shed = 0u64;
    let mut crowd_served = 0u64;
    for (i, id) in crowd_ids.iter().enumerate() {
        match svc.submit(*id, b"crowd", &[0xCD; 96], i as u64) {
            Ok(()) => {}
            Err(ServiceError::Busy { .. }) => crowd_shed += 1,
            Err(e) => panic!("crowd submit: {e:?}"),
        }
        // Pump rarely: the burst must outrun the drain so admission
        // control actually has to arbitrate.
        if i % 96 == 95 {
            crowd_served += svc.pump().len() as u64;
        }
    }
    crowd_served += svc.quiesce(10_000).len() as u64;
    let critical_shed = svc.counters().classes[QosClass::Critical.index()].shed;
    assert!(
        crowd_shed > 0,
        "the flash crowd must overrun the queues and exercise shedding"
    );
    assert!(
        critical_shed * 4 < crowd_shed,
        "SecureVoice must be largely protected under burst: {critical_shed} of {crowd_shed}"
    );

    // The crowd leaves; every slot must recycle and every id must die.
    for id in &crowd_ids {
        svc.close(*id).expect("crowd close");
    }
    svc.quiesce(10_000);
    assert_eq!(svc.occupancy(), BASE, "crowd slots must all recycle");
    for id in &crowd_ids {
        assert_eq!(
            svc.submit(*id, b"", b"zombie", 0).err(),
            Some(ServiceError::Stale),
            "departed crowd id must be stale"
        );
    }
    // The base population is untouched: same ids, still serving.
    let mut base_served = 0u64;
    for (i, id) in base_ids.iter().enumerate() {
        svc.submit(*id, b"base", &[i as u8; 96], i as u64)
            .expect("post-crowd base submit");
        if i % 8 == 7 {
            base_served += svc.pump().len() as u64;
        }
    }
    base_served += svc.quiesce(10_000).len() as u64;
    assert_eq!(base_served, BASE as u64, "base traffic is lossless");
    let c = svc.counters();
    assert_eq!(c.opened - c.closed, BASE as u64, "open/close ledger");
    assert_eq!(c.stale_drops, 0, "no completion outlived its session");
    println!(
        "  flash crowd ({engine_name} engine): {CROWD} sessions surged over {BASE} base; \
         {crowd_served} crowd pkts served, {crowd_shed} shed under burst \
         ({critical_shed} SecureVoice); crowd departed, slab back to {BASE}"
    );
}

/// Churn with live rekeying: a standing population rotates its session
/// keys every round while traffic keeps flowing. Proves the key
/// lifecycle holds up under sustained churn: zero packets dropped across
/// rotations, every delivery epoch-tagged with the key generation it was
/// submitted under, zero IV reuse per channel across epochs (the nonce
/// counter continues through a rekey), and closed channels reject both
/// traffic and rekeys with the typed `Stale` error.
fn service_rekey_churn_scenario<B: ChannelBackend>(mk: impl Fn() -> B, engine_name: &str) {
    use std::collections::HashSet;

    const CHANNELS: usize = 48;
    const ROUNDS: usize = 4;
    const PKTS_PER_ROUND: usize = 2;
    let standards = [
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let key = |s: Standard, i: usize, epoch: usize| {
        let len = if s == Standard::SecureVoice { 32 } else { 16 };
        vec![((i * 7 + epoch * 31) % 250) as u8 + 1; len]
    };
    let mut svc = MccpService::new(
        ServiceConfig {
            shards: 2,
            queue_capacity: 1024,
            drain_budget: 32,
            warm_set_capacity: 32,
            step_bound: 200_000,
            ..ServiceConfig::default()
        },
        |_| mk(),
    );
    let ids: Vec<ServiceChannelId> = (0..CHANNELS)
        .map(|i| {
            let s = standards[i % 4];
            svc.open(s, &key(s, i, 0)).expect("rekey-churn open")
        })
        .collect();

    let mut seen_ivs: HashSet<(ServiceChannelId, Vec<u8>)> = HashSet::new();
    let mut delivered = 0u64;
    let mut submitted = 0u64;
    let drain = |svc: &mut MccpService<B>, seen: &mut HashSet<_>, delivered: &mut u64| {
        for d in svc.pump() {
            assert!(d.auth_ok, "rekey churn never forges");
            // The delivery is tagged with the epoch it was submitted
            // under (packed into user_tag at submit time below).
            assert_eq!(d.epoch as u64, d.user_tag & 0xFFFF, "epoch-exact delivery");
            assert!(
                seen.insert((d.channel, d.iv.clone())),
                "IV reuse across a rekey on {:?}",
                d.channel
            );
            *delivered += 1;
        }
    };
    for round in 0..ROUNDS {
        for (i, id) in ids.iter().enumerate() {
            for p in 0..PKTS_PER_ROUND {
                let tag = ((i as u64) << 32) | ((p as u64) << 16) | round as u64;
                svc.submit(*id, b"rekey-churn", &[i as u8; 96], tag)
                    .expect("rekey-churn submit");
                submitted += 1;
            }
            if i % 16 == 15 {
                drain(&mut svc, &mut seen_ivs, &mut delivered);
            }
        }
        // Rotate every channel's key: traffic submitted after this point
        // runs under the next epoch, anything still queued finishes on
        // the old one — the FIFO position of the rekey is the boundary.
        for (i, id) in ids.iter().enumerate() {
            let s = standards[i % 4];
            svc.rekey(*id, &key(s, i, round + 1)).expect("rekey");
        }
    }
    for d in svc.quiesce(10_000) {
        assert!(d.auth_ok);
        assert_eq!(d.epoch as u64, d.user_tag & 0xFFFF);
        assert!(seen_ivs.insert((d.channel, d.iv.clone())));
        delivered += 1;
    }
    assert_eq!(
        delivered, submitted,
        "live rekeying must not drop a single packet"
    );
    let c = *svc.counters();
    assert_eq!(
        c.rekeys,
        (CHANNELS * ROUNDS) as u64,
        "every requested rotation completed"
    );
    assert_eq!(c.stale_drops, 0);
    // Departed channels reject rekeys just like traffic: typed, stale.
    for id in &ids {
        svc.close(*id).expect("rekey-churn close");
    }
    svc.quiesce(10_000);
    for id in &ids {
        assert_eq!(
            svc.rekey(*id, &[0xEE; 16]).err(),
            Some(ServiceError::Stale),
            "rekey of a departed channel must be stale"
        );
    }
    println!(
        "  rekey churn ({engine_name} engine): {CHANNELS} channels x {ROUNDS} rotations; \
         {delivered}/{submitted} pkts delivered epoch-exact, {} rekeys, 0 IV reuse",
        c.rekeys
    );
}

/// Standards-mix shift mid-soak: an AES-GCM phase saturates the pool,
/// then the mix turns Twofish-only. The demand policy must flip at least
/// one CU live — while every packet (including the ones requeued during
/// the ~12M-cycle bitstream load) is delivered exactly once.
fn mix_shift_scenario() {
    use mccp_core::core_unit::Personality;
    use mccp_core::protocol::{Algorithm, CipherSel, KeyId, MccpError};
    use mccp_core::reconfig::PolicyConfig;
    use mccp_core::Direction;

    let mut m = Mccp::new(MccpConfig::default());
    m.enable_reconfig_policy(PolicyConfig::default());
    m.key_memory_mut().store(KeyId(1), &[0xA1; 16]);
    m.key_memory_mut().store(KeyId(2), &[0xB2; 16]);
    let aes = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
    let tf = m
        .open_with_cipher(Algorithm::AesGcm128, KeyId(2), 16, CipherSel::Twofish)
        .unwrap();

    let body = [0x5Cu8; 192];
    let mut delivered = 0usize;
    let mut requeued = 0usize;
    // Phase 1: AES traffic. Phase 2: the same offered load, now Twofish.
    for (n, ch) in [(8usize, aes), (8usize, tf)] {
        for i in 0..n {
            let iv = [(i + 1) as u8; 12];
            let id = loop {
                match m.submit(ch, Direction::Encrypt, &iv, &[], &body, None) {
                    Ok(id) => break id,
                    Err(MccpError::NoResource) => {
                        requeued += 1;
                        let now = m.cycle();
                        m.run_until(now + 2_000_000);
                    }
                    Err(e) => panic!("mix-shift submit: {e:?}"),
                }
            };
            m.run_until_done(id, 100_000_000);
            m.retrieve(id).expect("retrieve");
            m.transfer_done(id).expect("transfer_done");
            delivered += 1;
        }
    }
    let swaps = m.policy().unwrap().swaps();
    let tf_cores = (0..4)
        .filter(|&i| m.core(i).personality() == Personality::TwofishUnit)
        .count();
    assert!(swaps >= 1, "the mix shift must flip a CU live");
    assert!(tf_cores >= 1, "a Twofish core must exist after the shift");
    assert_eq!(delivered, 16, "mix shift is lossless");
    println!(
        "  mix shift (cycle engine): {swaps} live CU swap(s) to Twofish \
         ({tf_cores} core(s) now Twofish); 16/16 packets delivered, \
         {requeued} requeued during bitstream loads"
    );
}

fn print_round(round: usize, report: &RunReport) {
    println!(
        "  round {round}: {} packets tx+rx OK, {:.0} Mbps tx, p95 latency {} cyc",
        report.packets,
        report.throughput_mbps(),
        report.latency_percentile(0.95)
    );
}

/// Periodic metrics-registry snapshot (per-core utilization and FIFO
/// pressure for this round's transmitter).
fn print_core_metrics(mccp: &mut Mccp) {
    let snap = mccp.telemetry_snapshot();
    let cycles = snap.gauge("mccp_cycles").max(1);
    let util: Vec<String> = (0..4)
        .map(|c| {
            let busy = snap.gauge(&format!("mccp_core_busy_cycles{{core=\"{c}\"}}"));
            format!("{:.0}%", 100.0 * busy as f64 / cycles as f64)
        })
        .collect();
    let hw_out = (0..4)
        .map(|c| {
            snap.gauge(&format!(
                "mccp_fifo_highwater_words{{core=\"{c}\",port=\"output\"}}"
            ))
        })
        .max()
        .unwrap_or(0);
    println!(
        "    metrics: util {} | dma {} words | key hits/misses {}/{} | fifo hw {} words",
        util.join("/"),
        snap.counter("mccp_dma_words_total"),
        snap.counter("mccp_key_cache_hits_total"),
        snap.counter("mccp_key_cache_misses_total"),
        hw_out,
    );
}
