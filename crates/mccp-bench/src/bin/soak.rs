//! Soak run: continuous multi-standard traffic with end-to-end
//! verification of every packet — the "leave it running" confidence
//! tool. Defaults to 200 packets on the cycle-accurate engine; pass a
//! count and/or `--engine functional` for the fast path.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin soak -- 1000
//! cargo run --release -p mccp-bench --bin soak -- 1000 --engine functional
//! ```

use mccp_core::{ChannelBackend, FunctionalBackend, Mccp, MccpConfig};
use mccp_sdr::driver::RunReport;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{RadioDriver, Standard};

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Cycle,
    Functional,
}

/// One verified duplex round on any engine: encrypt the workload,
/// reference-check every record, decrypt it back through a fresh
/// receiver. Returns the transmitter (for metrics), the tx report, and
/// the receive cycles.
fn round_on<B: ChannelBackend>(
    mk: impl Fn() -> B,
    spec: &WorkloadSpec,
    workload: &Workload,
    round: usize,
) -> (RadioDriver<B>, RunReport, u64) {
    let mut tx = RadioDriver::with_backend(mk(), &spec.standards, round as u64);
    // Metrics + spans only (capacity 0): soak runs for a long time, so
    // keep the event log out of memory and read the registry instead.
    tx.backend_mut().enable_telemetry(0);
    let report = tx.run(workload, DispatchPolicy::Fifo);
    let verified = tx.verify(workload, &report).expect("verify");
    assert_eq!(verified, report.packets);
    let mut rx = RadioDriver::with_backend(mk(), &spec.standards, round as u64);
    let rx_cycles = rx.run_receive(workload, &report);
    (tx, report, rx_cycles)
}

fn main() {
    let mut packets = 200usize;
    let mut engine = Engine::Cycle;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("cycle") => Engine::Cycle,
                    Some("functional") => Engine::Functional,
                    other => panic!("--engine expects cycle|functional, got {other:?}"),
                }
            }
            n => packets = n.parse().expect("packet count"),
        }
    }
    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let engine_name = match engine {
        Engine::Cycle => "cycle-accurate 4-core MCCP",
        Engine::Functional => "functional engine",
    };
    println!(
        "soak: {packets} packets across {} standards on the {engine_name}",
        standards.len()
    );

    let mut total_bits = 0u64;
    let mut total_cycles = 0u64;
    let mut verified = 0usize;
    // Several rounds with fresh seeds: every run is generated, encrypted,
    // verified against the NIST references, then decrypted back through
    // the engine (receiver role).
    let rounds = packets.div_ceil(50);
    for round in 0..rounds {
        let spec = WorkloadSpec {
            standards: standards.clone(),
            packets: packets.min(50),
            seed: 0xBEEF + round as u64,
            fixed_payload_len: None,
            mean_interarrival_cycles: None,
        };
        let workload = Workload::generate(spec.clone());
        let (report, rx_cycles) = match engine {
            Engine::Cycle => {
                let (mut tx, report, rx_cycles) =
                    round_on(|| Mccp::new(MccpConfig::default()), &spec, &workload, round);
                print_round(round, &report);
                print_core_metrics(tx.mccp_mut());
                (report, rx_cycles)
            }
            Engine::Functional => {
                let (mut tx, report, rx_cycles) =
                    round_on(FunctionalBackend::new, &spec, &workload, round);
                print_round(round, &report);
                // Per-core utilization and FIFO pressure only exist on
                // the cycle-accurate engine; report the lifecycle
                // counters instead.
                let snap = tx.backend_mut().telemetry_snapshot();
                println!(
                    "    metrics: {} submitted / {} completed",
                    snap.counter("mccp_requests_submitted_total"),
                    snap.counter("mccp_requests_completed_total"),
                );
                (report, rx_cycles)
            }
        };
        verified += report.packets;
        total_bits += report.payload_bits;
        total_cycles += report.cycles + rx_cycles;
    }
    println!(
        "\nsoak PASSED: {verified} packets verified both directions; \
         {:.1} Mbit moved in {:.1} Mcycles (duplex)",
        total_bits as f64 / 1e6,
        total_cycles as f64 / 1e6
    );
}

fn print_round(round: usize, report: &RunReport) {
    println!(
        "  round {round}: {} packets tx+rx OK, {:.0} Mbps tx, p95 latency {} cyc",
        report.packets,
        report.throughput_mbps(),
        report.latency_percentile(0.95)
    );
}

/// Periodic metrics-registry snapshot (per-core utilization and FIFO
/// pressure for this round's transmitter).
fn print_core_metrics(mccp: &mut Mccp) {
    let snap = mccp.telemetry_snapshot();
    let cycles = snap.gauge("mccp_cycles").max(1);
    let util: Vec<String> = (0..4)
        .map(|c| {
            let busy = snap.gauge(&format!("mccp_core_busy_cycles{{core=\"{c}\"}}"));
            format!("{:.0}%", 100.0 * busy as f64 / cycles as f64)
        })
        .collect();
    let hw_out = (0..4)
        .map(|c| {
            snap.gauge(&format!(
                "mccp_fifo_highwater_words{{core=\"{c}\",port=\"output\"}}"
            ))
        })
        .max()
        .unwrap_or(0);
    println!(
        "    metrics: util {} | dma {} words | key hits/misses {}/{} | fifo hw {} words",
        util.join("/"),
        snap.counter("mccp_dma_words_total"),
        snap.counter("mccp_key_cache_hits_total"),
        snap.counter("mccp_key_cache_misses_total"),
        hw_out,
    );
}
