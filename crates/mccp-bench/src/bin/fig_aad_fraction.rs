//! Derived figure X-4 — throughput vs authenticated-only fraction.
//!
//! The ENCRYPT instruction carries separate *Header Size* (authenticated
//! only) and *Data Size* operands (§III.B). AAD blocks cost one GHASH
//! iteration but no AES pass, so a GCM packet's cycle cost depends on the
//! header/payload split. This sweep holds the total at 2 KB and varies
//! the authenticated-only share.

use mccp_bench::iv_for;
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Mccp, MccpConfig};
use mccp_sim::throughput_mbps;

fn measure(aad_bytes: usize, payload_bytes: usize) -> (u64, f64) {
    let mut m = Mccp::new(MccpConfig::default());
    m.key_memory_mut().store(KeyId(1), &[0x42; 16]);
    let ch = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
    let aad = vec![0x11u8; aad_bytes];
    let payload = vec![0x22u8; payload_bytes];
    m.encrypt_packet(ch, &aad, &payload, &iv_for(Algorithm::AesGcm128, 0))
        .unwrap(); // warm
    let pkt = m
        .encrypt_packet(ch, &aad, &payload, &iv_for(Algorithm::AesGcm128, 1))
        .unwrap();
    let total_bits = ((aad_bytes + payload_bytes) * 8) as u64;
    (pkt.cycles, throughput_mbps(total_bits, pkt.cycles))
}

fn main() {
    println!("GCM-128 throughput vs authenticated-only (header) fraction");
    println!("(2 KB total per packet, single core, Mbps at 190 MHz)\n");
    println!(
        "{:>10} {:>10} {:>10} {:>14} {:>14}",
        "aad B", "payload B", "cycles", "wire Mbps", "payload Mbps"
    );
    const TOTAL: usize = 2048;
    let mut prev_cycles = u64::MAX;
    for aad_share in [0usize, 12, 25, 50, 75, 100] {
        let aad = TOTAL * aad_share / 100;
        let payload = TOTAL - aad;
        let (cycles, wire_mbps) = measure(aad, payload);
        let payload_mbps = throughput_mbps((payload * 8) as u64, cycles);
        println!(
            "{:>10} {:>10} {:>10} {:>14.1} {:>14.1}",
            aad, payload, cycles, wire_mbps, payload_mbps
        );
        assert!(
            cycles <= prev_cycles,
            "more AAD (43-cycle GHASH) must not cost more than payload (49-cycle AES+GHASH)"
        );
        prev_cycles = cycles;
    }
    println!("\nAAD-only blocks ride the 43-cycle GHASH engine and skip the AES");
    println!("pass, so header-heavy packets finish sooner: the wire-rate ceiling");
    println!("rises toward 128 bits / ~49 cycles as the header share grows, while");
    println!("useful-payload throughput falls — the paper's Header/Data split in");
    println!("the ENCRYPT operands is what lets the scheduler account for this.");
}
