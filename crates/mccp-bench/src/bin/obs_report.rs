//! Observability acceptance run: overhead budget, zero-perturbation
//! proof, and the full report surface, emitted as `BENCH_obs.json` plus a
//! flamegraph-ready `BENCH_obs_profile.collapsed` (hand-formatted; no
//! serde).
//!
//! One fixed-seed GCM (WiMAX) workload is served by the cycle-accurate
//! cluster twice per timing iteration — observability off, then fully on
//! (telemetry + causal tracing + SLO engine) — and the run asserts the
//! plane's two contracts:
//!
//! - **zero perturbation** — the instrumented run's records (IVs,
//!   ciphertext, tags), makespan, and retry counts are byte-identical to
//!   the bare run: stage counters are architectural state, everything
//!   else samples it.
//! - **overhead budget** — best-of-N wall-clock with the plane on stays
//!   within 5% of the plane off.
//!
//! The enabled run then emits every observability artifact: collapsed
//! stage stacks (`shardN;coreM;stage cycles` lines for flamegraph.pl or
//! speedscope), the top-N cycle-attribution table, per-channel SLO
//! attainment, shard health scores, and the journey ledger summary.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin obs_report
//! cargo run --release -p mccp-bench --bin obs_report -- --packets 400 --iters 5
//! ```

use mccp_core::MccpConfig;
use mccp_sdr::cluster::{ClusterConfig, ClusterReport, MccpCluster, RetryPolicy};
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::Standard;
use mccp_telemetry::profile::{collapsed_stacks, top_n_report};
use mccp_telemetry::slo::{health_table, SloEngine};
use mccp_telemetry::trace::AttemptOutcome;

const OVERHEAD_BUDGET: f64 = 0.05;

fn main() {
    let mut packets = 200usize;
    let mut seed = 0x0B5Eu64;
    let mut shards = 2usize;
    let mut iters = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--packets" => packets = next("--packets").parse().expect("packet count"),
            "--seed" => seed = next("--seed").parse().expect("seed"),
            "--shards" => shards = next("--shards").parse().expect("shard count"),
            "--iters" => iters = next("--iters").parse().expect("iteration count"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(shards >= 1 && packets >= 1 && iters >= 1);

    // GCM soak: two WiMAX channels so a 2-shard cluster has affinity work
    // on every shard (channel % shards).
    let standards = vec![Standard::Wimax, Standard::Wimax];
    let spec = WorkloadSpec {
        standards: standards.clone(),
        packets,
        seed,
        fixed_payload_len: None,
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec);
    println!(
        "obs_report: {packets} GCM packets over {} WiMAX channels, {shards} shard(s), \
         best of {iters}, seed {seed:#x}",
        standards.len()
    );

    let cfg = |observe: bool| ClusterConfig {
        shards,
        work_stealing: true,
        telemetry_capacity: if observe { Some(4096) } else { None },
        retry: RetryPolicy::default(),
        observe,
    };
    let run = |observe: bool| -> ClusterReport {
        let mut cluster =
            MccpCluster::cycle_accurate(cfg(observe), MccpConfig::default(), &standards, seed);
        let report = cluster.run(&workload, DispatchPolicy::Fifo);
        assert_eq!(cluster.verify(&workload, &report).expect("verify"), packets);
        report
    };

    // Best-of-N timing, interleaved so slow-host noise hits both arms.
    let mut off_wall = f64::INFINITY;
    let mut on_wall = f64::INFINITY;
    let mut off = run(false);
    let mut on = run(true);
    for _ in 0..iters {
        let r = run(false);
        off_wall = off_wall.min(r.wall_seconds);
        off = r;
        let r = run(true);
        on_wall = on_wall.min(r.wall_seconds);
        on = r;
    }

    // Zero-perturbation contract: the observed machine IS the bare
    // machine. Cycle counts, records, and recovery behavior must match
    // byte-for-byte; only the sampled artifacts differ.
    assert_eq!(off.merged.cycles, on.merged.cycles, "makespan perturbed");
    assert_eq!(off.retries, on.retries, "retry behavior perturbed");
    assert_eq!(
        off.merged.records.len(),
        on.merged.records.len(),
        "delivery perturbed"
    );
    for (a, b) in off.merged.records.iter().zip(on.merged.records.iter()) {
        assert_eq!(a.packet_idx, b.packet_idx, "record order perturbed");
        assert_eq!(a.iv, b.iv, "packet {} IV perturbed", a.packet_idx);
        assert_eq!(
            a.ciphertext, b.ciphertext,
            "packet {} ciphertext perturbed",
            a.packet_idx
        );
        assert_eq!(a.tag, b.tag, "packet {} tag perturbed", a.packet_idx);
        assert_eq!(
            a.completed_at, b.completed_at,
            "packet {} completion cycle perturbed",
            a.packet_idx
        );
    }
    let overhead = (on_wall - off_wall).max(0.0) / off_wall.max(1e-12);
    println!(
        "  wall: off {off_wall:.4}s, on {on_wall:.4}s -> overhead {:.2}% (budget {:.0}%)",
        100.0 * overhead,
        100.0 * OVERHEAD_BUDGET
    );
    assert!(
        overhead < OVERHEAD_BUDGET,
        "observability overhead {:.2}% exceeds the {:.0}% budget",
        100.0 * overhead,
        100.0 * OVERHEAD_BUDGET
    );

    // Cycle attribution: per-shard stage gauges -> collapsed stacks.
    let stacks: Vec<(usize, &mccp_telemetry::Snapshot)> = on
        .shards
        .iter()
        .filter_map(|s| s.snapshot.as_ref().map(|snap| (s.shard, snap)))
        .collect();
    let collapsed = collapsed_stacks(&stacks);
    std::fs::write("BENCH_obs_profile.collapsed", &collapsed)
        .expect("write BENCH_obs_profile.collapsed");
    assert!(
        !collapsed.is_empty(),
        "enabled run must attribute cycles to stages"
    );
    println!("\n{}", top_n_report(&collapsed, 10));

    // SLO attainment and shard health.
    let slo = on.slo.as_ref().expect("observe on");
    println!("{}", SloEngine::attainment_table(slo));
    println!("{}", health_table(&on.health));

    // Journey ledger: exactly one complete journey per packet.
    let journeys = on.journeys.as_ref().expect("observe on");
    assert_eq!(journeys.len(), packets, "one journey per packet");
    assert!(
        journeys.iter().all(|j| j.is_complete()),
        "every journey must be causally complete"
    );
    let served = journeys
        .iter()
        .filter(|j| j.outcome == AttemptOutcome::Completed)
        .count();

    let slo_rows: Vec<String> = slo
        .iter()
        .map(|r| {
            format!(
                "    {{\"channel\": {}, \"deadline_cycles\": {}, \"target_permille\": {}, \
                 \"attained_permille\": {}, \"violations\": {}, \"met\": {}}}",
                r.channel,
                r.deadline_cycles,
                r.target_permille,
                r.attained_permille,
                r.violations,
                r.met
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"obs_overhead\",\n  \"seed\": {seed},\n  \
         \"packets\": {packets},\n  \"shards\": {shards},\n  \"iters\": {iters},\n  \
         \"host_parallelism\": {},\n  \
         \"disabled_wall_seconds\": {off_wall:.6},\n  \"enabled_wall_seconds\": {on_wall:.6},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \"overhead_budget\": {OVERHEAD_BUDGET},\n  \
         \"makespan_cycles\": {},\n  \"byte_identical_disabled\": true,\n  \
         \"journeys\": {},\n  \"journeys_complete\": true,\n  \"served\": {served},\n  \
         \"note\": \"byte_identical_disabled is asserted: records, cycle counts and retry \
         behavior match with observability on and off; overhead is best-of-{iters} \
         wall-clock\",\n  \"slo\": [\n{}\n  ]\n}}\n",
        mccp_sdr::host_parallelism(),
        on.merged.cycles,
        journeys.len(),
        slo_rows.join(",\n")
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    print!("{json}");
    println!(
        "obs_report PASSED: overhead {:.2}% < {:.0}%, disabled run byte-identical, \
         {served}/{packets} journeys served",
        100.0 * overhead,
        100.0 * OVERHEAD_BUDGET
    );
}
