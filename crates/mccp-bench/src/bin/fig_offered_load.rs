//! Derived figure X-7 — latency vs offered load (the queueing view).
//!
//! The paper's dispatch processes packets "in their order of arrival as
//! fast as possible" and §III.C flags latency as the open issue. With
//! Poisson arrivals this sweep shows the classic saturation behaviour:
//! sojourn time (arrival → Data Available) stays near pure service time
//! while the 4 cores keep up, then grows without bound past the knee.

use mccp_core::MccpConfig;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{RadioDriver, Standard};

fn main() {
    println!("Sojourn time vs offered load (WiMax/GCM, 1 KB packets, 4 cores)\n");
    println!(
        "{:>14} {:>10} {:>14} {:>14} {:>14}",
        "interarrival", "load", "tput Mbps", "mean sojourn", "p95 sojourn"
    );

    // Service time of a 1 KB GCM packet ≈ 64*49 + overhead ≈ 3.5k cycles;
    // 4 cores => saturation when interarrival ≈ 3500/4 ≈ 875 cycles.
    const PACKETS: usize = 96;
    for mean_gap in [4000.0f64, 2000.0, 1200.0, 900.0, 700.0, 500.0, 300.0] {
        let spec = WorkloadSpec {
            standards: vec![Standard::Wimax],
            packets: PACKETS,
            seed: 99,
            fixed_payload_len: Some(1024),
            mean_interarrival_cycles: Some(mean_gap),
        };
        let workload = Workload::generate(spec.clone());
        let mut radio = RadioDriver::new(MccpConfig::default(), &spec.standards, 3);
        let report = radio.run(&workload, DispatchPolicy::Fifo);
        radio.verify(&workload, &report).expect("verified");

        let mut sojourns: Vec<u64> = report
            .records
            .iter()
            .map(|r| r.completed_at - workload.packets[r.packet_idx].arrival_cycle)
            .collect();
        sojourns.sort_unstable();
        let mean = sojourns.iter().sum::<u64>() as f64 / sojourns.len() as f64;
        let p95 = sojourns[(sojourns.len() - 1) * 95 / 100];
        // Offered load relative to 4-core service capacity.
        let service = 3500.0;
        let load = service / (4.0 * mean_gap);
        println!(
            "{:>11.0}cyc {:>9.2} {:>14.0} {:>11.0}cyc {:>11.0}cyc",
            mean_gap,
            load,
            report.throughput_mbps(),
            mean,
            p95
        );
    }
    println!("\nBelow the knee, sojourn ≈ the ~3.5k-cycle service time; past it the");
    println!("queue builds and p95 explodes — the latency problem the paper defers");
    println!("to future work (and the QoS dispatch in mccp-sdr partially addresses).");
}
