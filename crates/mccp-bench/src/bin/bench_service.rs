//! Always-on service-plane benchmark: holds 100k+ mostly-idle secure
//! sessions open while a heavy-tailed (Zipf) hot set drives traffic, then
//! sweeps offered load through the admission knee. Emits
//! `BENCH_service.json`.
//!
//! Four measurements:
//!
//! - **Idle cost** — resident bytes per open-but-idle channel, measured
//!   as the `/proc/self/statm` RSS delta across the mass-open phase, and
//!   the p50/p99 wall latency of `open()` itself.
//! - **Sustained serving** — offered-vs-served Mbps under Zipf(1.1)
//!   channel activity at the service's drain capacity.
//! - **Admission knee** — an offered-load sweep from 0.25x to 3x drain
//!   capacity: per-class admitted/shed counts show best-effort shedding
//!   first, standard next, and SecureVoice (Critical) only when the queue
//!   is completely full. Below the knee Critical sheds must be zero.
//! - **Churn** — open/close cycle rate on the fully loaded slab (slot
//!   recycling + generation bumps on every cycle).
//!
//! `--quick` shrinks the channel count and round counts into a CI smoke
//! that asserts the same invariants without rewriting the BENCH file.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_service [-- --quick]
//! ```

use mccp_core::FunctionalBackend;
use mccp_sdr::{MccpService, QosClass, ServiceChannelId, ServiceConfig, ServiceError, Standard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SEED: u64 = 0x5E21_CE00;
const ZIPF_EXPONENT: f64 = 1.1;
const PAYLOAD_LEN: usize = 256;

const STANDARDS: [Standard; 4] = [
    Standard::Wifi,
    Standard::Wimax,
    Standard::Umts,
    Standard::SecureVoice,
];

/// Standard for the i-th open, decorrelated from the service's
/// round-robin shard placement (`i % shards`): a plain `i % 4` would give
/// every shard a single QoS class, and per-class admission would never
/// compete inside one queue.
fn standard_for(i: usize) -> Standard {
    STANDARDS[(i.wrapping_mul(2654435761) >> 7) % STANDARDS.len()]
}

fn key_for(standard: Standard, i: usize) -> Vec<u8> {
    let len = match standard {
        Standard::SecureVoice => 32,
        _ => 16,
    };
    vec![(i % 251) as u8 ^ 0x6D; len]
}

/// Resident-set bytes from `/proc/self/statm` (field 2, pages).
fn resident_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").unwrap_or_default();
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    pages * 4096
}

/// Zipf sampler over `n` ranks: precomputed CDF, one binary search per
/// draw. Rank 0 is the hottest channel.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

struct SweepArm {
    multiplier: f64,
    offered_per_round: usize,
    offered: [u64; 3],
    admitted: [u64; 3],
    shed: [u64; 3],
    delivered: u64,
    max_queue_depth: usize,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn class_counts(svc: &MccpService<FunctionalBackend>) -> ([u64; 3], [u64; 3], [u64; 3]) {
    let mut offered = [0u64; 3];
    let mut admitted = [0u64; 3];
    let mut shed = [0u64; 3];
    for class in QosClass::ALL {
        let c = svc.counters().classes[class.index()];
        offered[class.index()] = c.offered;
        admitted[class.index()] = c.admitted;
        shed[class.index()] = c.shed;
    }
    (offered, admitted, shed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let channels: usize = if quick { 20_000 } else { 120_000 };
    let activity_rounds = if quick { 40 } else { 250 };
    let arm_rounds = if quick { 15 } else { 50 };

    let config = ServiceConfig {
        shards: 4,
        queue_capacity: 256,
        drain_budget: 32,
        warm_set_capacity: 128,
        ..ServiceConfig::default()
    };
    // Per-pump drain capacity across all shards — the knee's x-axis unit.
    let capacity = config.shards * config.drain_budget;
    println!(
        "bench_service{}: {channels} channels over {} shards, \
         queue {} / drain {} per shard ({capacity} pkts per pump)",
        if quick { " (--quick)" } else { "" },
        config.shards,
        config.queue_capacity,
        config.drain_budget
    );

    let mut svc: MccpService<FunctionalBackend> =
        MccpService::new(config.clone(), |_| FunctionalBackend::new());

    // ---- Phase 1: mass open. -------------------------------------------
    let rss_before = resident_bytes();
    let mut open_ns: Vec<u64> = Vec::with_capacity(channels);
    let mut ids: Vec<ServiceChannelId> = Vec::with_capacity(channels);
    let t_open = Instant::now();
    for i in 0..channels {
        let standard = standard_for(i);
        let t = Instant::now();
        let id = svc.open(standard, &key_for(standard, i)).expect("open");
        open_ns.push(t.elapsed().as_nanos() as u64);
        ids.push(id);
    }
    let open_wall = t_open.elapsed().as_secs_f64();
    let rss_after = resident_bytes();
    assert_eq!(svc.occupancy(), channels, "every open channel is resident");
    open_ns.sort_unstable();
    let open_p50 = percentile(&open_ns, 0.50);
    let open_p99 = percentile(&open_ns, 0.99);
    let bytes_per_idle = (rss_after.saturating_sub(rss_before)) / channels as u64;
    println!(
        "  open: {channels} channels in {open_wall:.3}s \
         (p50 {open_p50} ns, p99 {open_p99} ns); \
         RSS {rss_before} -> {rss_after} B (~{bytes_per_idle} B/idle channel)"
    );
    assert!(
        bytes_per_idle < 4096,
        "an idle channel must cost well under a page, got {bytes_per_idle} B"
    );

    // ---- Phase 2: heavy-tailed sustained activity. ---------------------
    // Zipf rank r -> channel r: ranks cycle through the standards, so the
    // hot set spans every QoS class.
    let zipf = Zipf::new(channels, ZIPF_EXPONENT);
    let mut rng = StdRng::seed_from_u64(SEED);
    let payload = vec![0xE7u8; PAYLOAD_LEN];
    let mut delivered = 0u64;
    let mut submitted = 0u64;
    let mut shed_warm = 0u64;
    let mut hits = vec![0u32; channels];
    let t_activity = Instant::now();
    for round in 0..activity_rounds {
        for _ in 0..capacity {
            let ch = zipf.sample(&mut rng);
            hits[ch] += 1;
            match svc.submit(ids[ch], b"svc-aad", &payload, round as u64) {
                Ok(()) => submitted += 1,
                Err(ServiceError::Busy { .. }) => shed_warm += 1,
                Err(e) => panic!("activity submit: {e:?}"),
            }
        }
        for d in svc.pump() {
            assert!(d.auth_ok);
            delivered += d.body.len() as u64;
        }
    }
    for d in svc.quiesce(10_000) {
        delivered += d.body.len() as u64;
    }
    let activity_wall = t_activity.elapsed().as_secs_f64();
    let served_mbps = delivered as f64 * 8.0 / activity_wall.max(1e-12) / 1e6;
    let offered_pkts = (activity_rounds * capacity) as u64;
    let mut distinct = 0usize;
    let mut top_hits = 0u64;
    let top_n = channels / 100;
    let mut sorted_hits: Vec<u32> = hits.iter().copied().filter(|&h| h > 0).collect();
    sorted_hits.sort_unstable_by(|a, b| b.cmp(a));
    for (i, h) in sorted_hits.iter().enumerate() {
        distinct += 1;
        if i < top_n.max(1) {
            top_hits += *h as u64;
        }
    }
    let top1pct_share = top_hits as f64 / offered_pkts as f64;
    println!(
        "  activity: {offered_pkts} pkts offered at capacity over {distinct} distinct \
         channels (top 1% of slots took {:.0}% of traffic); served {served_mbps:.0} Mbps \
         sustained, {submitted} admitted / {shed_warm} shed",
        top1pct_share * 100.0
    );
    assert!(
        top1pct_share > 0.30,
        "Zipf(1.1) traffic must be heavy-tailed, top-1% share {top1pct_share:.2}"
    );
    assert!(delivered > 0);

    // ---- Phase 3: offered-load sweep through the admission knee. -------
    let multipliers: &[f64] = if quick {
        &[0.5, 1.0, 3.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
    };
    let mut arms: Vec<SweepArm> = Vec::new();
    for &m in multipliers {
        let offered_per_round = (capacity as f64 * m).round() as usize;
        let (o0, a0, s0) = class_counts(&svc);
        let mut arm_delivered = 0u64;
        let mut max_queue_depth = 0usize;
        for round in 0..arm_rounds {
            for _ in 0..offered_per_round {
                let ch = zipf.sample(&mut rng);
                match svc.submit(ids[ch], b"svc-aad", &payload, round as u64) {
                    Ok(()) | Err(ServiceError::Busy { .. }) => {}
                    Err(e) => panic!("sweep submit: {e:?}"),
                }
            }
            max_queue_depth =
                max_queue_depth.max(svc.report().queue_depths.iter().copied().max().unwrap_or(0));
            arm_delivered += svc.pump().len() as u64;
        }
        arm_delivered += svc.quiesce(10_000).len() as u64;
        let (o1, a1, s1) = class_counts(&svc);
        let arm = SweepArm {
            multiplier: m,
            offered_per_round,
            offered: [o1[0] - o0[0], o1[1] - o0[1], o1[2] - o0[2]],
            admitted: [a1[0] - a0[0], a1[1] - a0[1], a1[2] - a0[2]],
            shed: [s1[0] - s0[0], s1[1] - s0[1], s1[2] - s0[2]],
            delivered: arm_delivered,
            max_queue_depth,
        };
        println!(
            "  sweep {m:.2}x: offered {:?}, shed {:?} (critical/standard/best-effort), \
             delivered {}, max queue {}",
            arm.offered, arm.shed, arm.delivered, arm.max_queue_depth
        );
        arms.push(arm);
    }

    // The knee: the first arm that sheds more than 0.5% of its offer.
    let knee = arms
        .iter()
        .find(|a| {
            let offered: u64 = a.offered.iter().sum();
            let shed: u64 = a.shed.iter().sum();
            shed as f64 > offered as f64 * 0.005
        })
        .map(|a| a.multiplier);
    println!("  admission knee at {knee:?} x drain capacity");
    for a in &arms {
        if a.multiplier <= 1.0 {
            assert_eq!(
                a.shed[QosClass::Critical.index()],
                0,
                "SecureVoice must never shed below the knee ({}x)",
                a.multiplier
            );
        }
        assert_eq!(
            a.offered.iter().sum::<u64>(),
            a.admitted.iter().sum::<u64>() + a.shed.iter().sum::<u64>(),
            "every offer is admitted or shed"
        );
        assert_eq!(
            a.delivered,
            a.admitted.iter().sum::<u64>(),
            "every admitted packet is delivered"
        );
    }
    let top = arms.last().expect("arms");
    assert!(
        top.shed.iter().sum::<u64>() > 0,
        "3x offered load must overrun the queue and shed"
    );
    let shed_rate = |a: &SweepArm, class: QosClass| {
        a.shed[class.index()] as f64 / a.offered[class.index()].max(1) as f64
    };
    assert!(
        shed_rate(top, QosClass::BestEffort) >= shed_rate(top, QosClass::Standard)
            && shed_rate(top, QosClass::Standard) >= shed_rate(top, QosClass::Critical),
        "shed rates must order best-effort >= standard >= critical, got {:.2}/{:.2}/{:.2}",
        shed_rate(top, QosClass::BestEffort),
        shed_rate(top, QosClass::Standard),
        shed_rate(top, QosClass::Critical)
    );

    // ---- Phase 4: churn on the loaded slab. ----------------------------
    let churn_cycles = if quick { 2_000 } else { 20_000 };
    let t_churn = Instant::now();
    for i in 0..churn_cycles {
        let standard = standard_for(i);
        let id = svc
            .open(standard, &key_for(standard, i))
            .expect("churn open");
        svc.close(id).expect("churn close");
    }
    let churn_wall = t_churn.elapsed().as_secs_f64();
    let churn_ops_per_sec = churn_cycles as f64 * 2.0 / churn_wall.max(1e-12);
    assert_eq!(svc.occupancy(), channels, "churn must not leak slots");
    println!(
        "  churn: {churn_cycles} open/close cycles in {churn_wall:.3}s \
         ({churn_ops_per_sec:.0} lifecycle ops/s); occupancy back to {channels}"
    );

    if quick {
        println!(
            "bench_service --quick PASSED: {channels} channels at {bytes_per_idle} B idle, \
             knee at {knee:?}x, zero Critical sheds below knee \
             (BENCH_service.json not rewritten)"
        );
        return;
    }

    let arm_rows: Vec<String> = arms
        .iter()
        .map(|a| {
            format!(
                "    {{\"multiplier\": {:.2}, \"offered_per_round\": {}, \
                 \"offered\": {{\"critical\": {}, \"standard\": {}, \"best_effort\": {}}}, \
                 \"admitted\": {{\"critical\": {}, \"standard\": {}, \"best_effort\": {}}}, \
                 \"shed\": {{\"critical\": {}, \"standard\": {}, \"best_effort\": {}}}, \
                 \"delivered\": {}, \"served_ratio\": {:.4}, \"max_queue_depth\": {}}}",
                a.multiplier,
                a.offered_per_round,
                a.offered[0],
                a.offered[1],
                a.offered[2],
                a.admitted[0],
                a.admitted[1],
                a.admitted[2],
                a.shed[0],
                a.shed[1],
                a.shed[2],
                a.delivered,
                a.delivered as f64 / (a.offered.iter().sum::<u64>().max(1)) as f64,
                a.max_queue_depth
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"service_plane\",\n  \
         \"engine\": \"functional\",\n  \
         \"config\": {{\"shards\": {}, \"queue_capacity\": {}, \"drain_budget\": {}, \
         \"warm_set_capacity\": {}, \"capacity_packets_per_pump\": {capacity}}},\n  \
         \"host_parallelism\": {},\n  \
         \"open_phase\": {{\"channels\": {channels}, \"wall_seconds\": {open_wall:.4}, \
         \"open_p50_ns\": {open_p50}, \"open_p99_ns\": {open_p99}, \
         \"rss_before_bytes\": {rss_before}, \"rss_after_bytes\": {rss_after}, \
         \"bytes_per_idle_channel\": {bytes_per_idle}}},\n  \
         \"activity\": {{\"distribution\": \"zipf\", \"exponent\": {ZIPF_EXPONENT}, \
         \"rounds\": {activity_rounds}, \"payload_bytes\": {PAYLOAD_LEN}, \
         \"offered_packets\": {offered_pkts}, \"admitted_packets\": {submitted}, \
         \"distinct_channels\": {distinct}, \"top1pct_traffic_share\": {top1pct_share:.4}, \
         \"served_mbps\": {served_mbps:.1}}},\n  \
         \"admission_sweep\": {{\"rounds_per_arm\": {arm_rounds}, \
         \"knee_multiplier\": {}, \"points\": [\n{}\n  ]}},\n  \
         \"churn\": {{\"cycles\": {churn_cycles}, \"wall_seconds\": {churn_wall:.4}, \
         \"lifecycle_ops_per_sec\": {churn_ops_per_sec:.0}}},\n  \
         \"note\": \"knee = first arm shedding >0.5% of offer; SecureVoice (critical) sheds \
         only with the queue completely full; bytes_per_idle_channel is the statm RSS delta \
         over the mass-open phase, an upper bound including allocator slack\"\n}}\n",
        config.shards,
        config.queue_capacity,
        config.drain_budget,
        config.warm_set_capacity,
        mccp_sdr::host_parallelism(),
        knee.map(|k| format!("{k:.2}"))
            .unwrap_or_else(|| "null".into()),
        arm_rows.join(",\n")
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    print!("{json}");
    println!(
        "bench_service PASSED: {channels} channels at {bytes_per_idle} B idle, \
         {served_mbps:.0} Mbps served, knee at {knee:?}x drain capacity"
    );
}
