//! Cluster scaling curve: one multi-channel workload served by 1/2/4/8
//! engine shards, emitted as `BENCH_cluster.json` (hand-formatted; no
//! serde).
//!
//! Two curves per shard count:
//!
//! - **modeled** — cycle-accurate shards; aggregate throughput is total
//!   payload bits over the cluster *makespan* (slowest shard) at the
//!   190 MHz clock. This is the serving capacity a real N-device
//!   deployment would have, and is host-independent.
//! - **functional wall-clock** — functional shards on one OS thread
//!   each. Honest host numbers: on a host with fewer cores than shards
//!   (`host_parallelism` is recorded), wall-clock cannot scale with the
//!   shard count; the modeled curve is the scaling claim.
//!
//! A payload-size sweep (64 B – 8 KiB, functional engine at 4 shards)
//! rides along in full mode, and `--quick` turns the binary into the CI
//! perf smoke: a reduced scaling run plus a re-measurement of the batched
//! kernels against the regression floors checked in via
//! `BENCH_functional_kernels.json` (fails on a >20% drop below a floor).
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_cluster [-- --quick]
//! ```

use mccp_core::MccpConfig;
use mccp_sdr::cluster::{ClusterConfig, MccpCluster, RetryPolicy};
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{RadioPacket, Workload, WorkloadSpec};
use mccp_sdr::{Standard, SERIAL_FALLBACK_BYTES};
use std::time::Instant;

const PACKETS: usize = 160;
const PAYLOAD_LEN: usize = 512;
const SEED: u64 = 0xC1A5;
const KEY_SEED: u64 = 9;

struct Point {
    shards: usize,
    modeled_makespan_cycles: u64,
    modeled_aggregate_mbps: f64,
    functional_serial_wall_seconds: f64,
    functional_threaded_wall_seconds: f64,
    functional_wall_mbps: f64,
    functional_effective_parallelism: f64,
    stolen_packets: usize,
}

struct SweepPoint {
    payload_bytes: usize,
    serial_wall_seconds: f64,
    serial_mbps: f64,
    serial_packets_per_sec: f64,
    threaded_wall_seconds: f64,
    threaded_mbps: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Eight channels (each standard twice) so affinity dispatch has work
    // for every shard at the 8-shard point.
    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let packets = if quick { 48 } else { PACKETS };
    let spec = WorkloadSpec {
        standards: standards.clone(),
        packets,
        seed: SEED,
        fixed_payload_len: Some(PAYLOAD_LEN),
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec);
    let host_parallelism = mccp_sdr::host_parallelism();
    println!(
        "bench_cluster{}: {packets} packets x {PAYLOAD_LEN} B over {} channels, \
         host parallelism {host_parallelism}",
        if quick { " (--quick)" } else { "" },
        standards.len()
    );

    let shard_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut points = Vec::new();
    for &shards in shard_counts {
        let cfg = ClusterConfig {
            shards,
            work_stealing: true,
            telemetry_capacity: None,
            retry: RetryPolicy::default(),
            observe: false,
        };

        // Modeled curve: cycle-accurate shards, sequential host execution
        // (modeled cycles are host-independent).
        let mut cycle =
            MccpCluster::cycle_accurate(cfg, MccpConfig::default(), &standards, KEY_SEED);
        let modeled = cycle.run(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            cycle.verify(&workload, &modeled).expect("cycle verify"),
            packets
        );

        // Functional wall-clock curves. The serial run is the honest
        // baseline for host speedup claims: on a host with
        // `host_parallelism == 1` the threaded run cannot beat it, and
        // recording only the threaded number would report a meaningless
        // 1.0x "speedup" that actually measures thread overhead.
        let mut serial = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let serial_wall = serial.run(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            serial
                .verify(&workload, &serial_wall)
                .expect("serial verify"),
            packets
        );
        let mut functional = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let wall = functional.run_threaded(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            functional
                .verify(&workload, &wall)
                .expect("functional verify"),
            packets
        );

        let bits = modeled.merged.payload_bits as f64;
        let point = Point {
            shards,
            modeled_makespan_cycles: modeled.merged.cycles,
            modeled_aggregate_mbps: modeled.aggregate_throughput_mbps(),
            functional_serial_wall_seconds: serial_wall.wall_seconds,
            functional_threaded_wall_seconds: wall.wall_seconds,
            functional_wall_mbps: bits / wall.wall_seconds.max(1e-12) / 1e6,
            functional_effective_parallelism: wall.wall.effective_parallelism(),
            stolen_packets: modeled.stolen_packets,
        };
        println!(
            "  {shards} shard(s): modeled {} cyc makespan -> {:.0} Mbps aggregate; \
             functional serial {:.4}s / threaded {:.4}s -> {:.0} Mbps \
             (effective parallelism {:.2}); {} stolen",
            point.modeled_makespan_cycles,
            point.modeled_aggregate_mbps,
            point.functional_serial_wall_seconds,
            point.functional_threaded_wall_seconds,
            point.functional_wall_mbps,
            point.functional_effective_parallelism,
            point.stolen_packets
        );
        points.push(point);
    }

    let base = &points[0];
    let at = |n: usize| points.iter().find(|p| p.shards == n).unwrap();
    let modeled_speedup_4 = at(4).modeled_aggregate_mbps / base.modeled_aggregate_mbps;
    assert!(
        modeled_speedup_4 >= 2.0,
        "4 shards must at least double aggregate modeled throughput, got {modeled_speedup_4:.2}x"
    );

    // Payload-size sweep: the functional engine at 4 shards across packet
    // sizes from a voice frame to a jumbo frame. Per-packet fixed costs
    // (J0 derivation, tag finalization, queue hops) dominate at 64 B and
    // wash out by 8 KiB, so packets/s and Mbps move in opposite directions.
    let sweep_payloads: &[usize] = if quick {
        &[64, 1500]
    } else {
        &[64, 512, 1500, 8192]
    };
    let sweep_packets = if quick { 32 } else { 128 };
    let mut sweep = Vec::new();
    for &payload in sweep_payloads {
        let spec = WorkloadSpec {
            standards: standards.clone(),
            packets: sweep_packets,
            seed: SEED ^ payload as u64,
            fixed_payload_len: Some(payload),
            mean_interarrival_cycles: None,
        };
        let wl = Workload::generate(spec);
        let cfg = ClusterConfig {
            shards: 4,
            work_stealing: true,
            telemetry_capacity: None,
            retry: RetryPolicy::default(),
            observe: false,
        };
        let mut serial = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let serial_run = serial.run(&wl, DispatchPolicy::Fifo);
        assert_eq!(
            serial
                .verify(&wl, &serial_run)
                .expect("sweep serial verify"),
            sweep_packets
        );
        let mut threaded = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let threaded_run = threaded.run_threaded(&wl, DispatchPolicy::Fifo);
        assert_eq!(
            threaded
                .verify(&wl, &threaded_run)
                .expect("sweep threaded verify"),
            sweep_packets
        );
        let bits = serial_run.merged.payload_bits as f64;
        let point = SweepPoint {
            payload_bytes: payload,
            serial_wall_seconds: serial_run.wall_seconds,
            serial_mbps: bits / serial_run.wall_seconds.max(1e-12) / 1e6,
            serial_packets_per_sec: sweep_packets as f64 / serial_run.wall_seconds.max(1e-12),
            threaded_wall_seconds: threaded_run.wall_seconds,
            threaded_mbps: bits / threaded_run.wall_seconds.max(1e-12) / 1e6,
        };
        println!(
            "  sweep {payload} B: serial {:.0} Mbps ({:.0} pkt/s), threaded {:.0} Mbps",
            point.serial_mbps, point.serial_packets_per_sec, point.threaded_mbps
        );
        sweep.push(point);
    }

    // Skewed-load arm: the affinity dispatcher's worst case. All traffic
    // lands on channels 0 and 4, which both hash to affinity shard 0 at
    // 4 shards — without stealing one shard serves everything while three
    // idle; with stealing the queues rebalance. Modeled makespans isolate
    // the effect from host scheduling noise.
    let skew_packets = if quick { 16 } else { 64 };
    let skew = run_skewed_arm(&standards, skew_packets);
    println!(
        "  skewed hotspot ({skew_packets} pkts on 2 of 8 channels, 4 shards): \
         no-steal {} cyc, stealing {} cyc ({:.2}x), {} stolen",
        skew.no_steal_makespan_cycles,
        skew.stealing_makespan_cycles,
        skew.stealing_speedup,
        skew.stolen_packets
    );
    assert!(
        skew.stolen_packets > 0,
        "hotspot traffic must exercise work stealing"
    );
    assert!(
        skew.stealing_speedup > 1.0,
        "stealing must shorten the skewed makespan, got {:.2}x",
        skew.stealing_speedup
    );

    if quick {
        perf_smoke_against_floors();
        println!(
            "bench_cluster --quick PASSED: scaling {modeled_speedup_4:.2}x at 4 shards, \
             stealing {:.2}x on the skewed arm, kernel floors held (BENCH files not rewritten)",
            skew.stealing_speedup
        );
        return;
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"modeled_makespan_cycles\": {}, \
                 \"modeled_aggregate_mbps\": {:.1}, \"modeled_speedup\": {:.2}, \
                 \"functional_serial_wall_seconds\": {:.6}, \
                 \"functional_threaded_wall_seconds\": {:.6}, \
                 \"functional_wall_mbps\": {:.1}, \
                 \"functional_thread_speedup\": {:.2}, \
                 \"functional_effective_parallelism\": {:.2}, \"stolen_packets\": {}}}",
                p.shards,
                p.modeled_makespan_cycles,
                p.modeled_aggregate_mbps,
                p.modeled_aggregate_mbps / base.modeled_aggregate_mbps,
                p.functional_serial_wall_seconds,
                p.functional_threaded_wall_seconds,
                p.functional_wall_mbps,
                p.functional_serial_wall_seconds / p.functional_threaded_wall_seconds.max(1e-12),
                p.functional_effective_parallelism,
                p.stolen_packets
            )
        })
        .collect();
    let sweep_rows: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"payload_bytes\": {}, \"serial_wall_seconds\": {:.6}, \
                 \"serial_mbps\": {:.1}, \"serial_packets_per_sec\": {:.0}, \
                 \"threaded_wall_seconds\": {:.6}, \"threaded_mbps\": {:.1}}}",
                p.payload_bytes,
                p.serial_wall_seconds,
                p.serial_mbps,
                p.serial_packets_per_sec,
                p.threaded_wall_seconds,
                p.threaded_mbps
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"cluster_scaling\",\n  \"workload\": {{\"channels\": {}, \
         \"packets\": {PACKETS}, \"payload_bytes\": {PAYLOAD_LEN}, \"cores_per_shard\": 4}},\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"serial_fallback_bytes\": {SERIAL_FALLBACK_BYTES},\n  \
         \"note\": \"modeled curve is host-independent serving capacity (makespan at 190 MHz); \
         functional_thread_speedup compares the same shard count serial vs threaded and is \
         bounded by host_parallelism; batches under serial_fallback_bytes of queued payload \
         run on the caller thread (no cross-thread hand-off)\",\n  \"points\": [\n{}\n  ],\n  \
         \"payload_sweep\": {{\"shards\": 4, \"packets\": {}, \"engine\": \"functional\", \
         \"points\": [\n{}\n  ]}},\n  \
         \"skewed_load\": {{\"shards\": 4, \"packets\": {}, \"hot_channels\": [0, 4], \
         \"engine\": \"cycle\", \"no_steal_makespan_cycles\": {}, \
         \"stealing_makespan_cycles\": {}, \"stealing_speedup\": {:.2}, \
         \"stolen_packets\": {}, \"hot_shard_packets_no_steal\": {}, \
         \"max_shard_packets_stealing\": {}}}\n}}\n",
        standards.len(),
        rows.join(",\n"),
        sweep_packets,
        sweep_rows.join(",\n"),
        skew.packets,
        skew.no_steal_makespan_cycles,
        skew.stealing_makespan_cycles,
        skew.stealing_speedup,
        skew.stolen_packets,
        skew.hot_shard_packets_no_steal,
        skew.max_shard_packets_stealing
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    print!("{json}");
    println!("modeled aggregate speedup at 4 shards: {modeled_speedup_4:.2}x (>= 2x required)");
}

struct SkewResult {
    packets: usize,
    no_steal_makespan_cycles: u64,
    stealing_makespan_cycles: u64,
    stealing_speedup: f64,
    stolen_packets: usize,
    hot_shard_packets_no_steal: usize,
    max_shard_packets_stealing: usize,
}

/// Serves a traffic hotspot (every packet on channels 0 and 4, both
/// affinity shard 0 of 4) twice on cycle-accurate shards — stealing off,
/// then on — and reports the modeled makespans.
fn run_skewed_arm(standards: &[Standard], packets: usize) -> SkewResult {
    let spec = WorkloadSpec {
        standards: standards.to_vec(),
        packets,
        seed: SEED ^ 0x5E_77,
        fixed_payload_len: Some(PAYLOAD_LEN),
        mean_interarrival_cycles: None,
    };
    let skewed: Vec<RadioPacket> = (0..packets)
        .map(|i| RadioPacket {
            channel: if i % 2 == 0 { 0 } else { 4 },
            aad: vec![0xA5; 8],
            payload: vec![i as u8; PAYLOAD_LEN],
            priority: 1,
            arrival_cycle: 0,
        })
        .collect();
    let workload = Workload {
        spec,
        packets: skewed,
    };
    let cfg = |stealing| ClusterConfig {
        shards: 4,
        work_stealing: stealing,
        telemetry_capacity: None,
        retry: RetryPolicy::default(),
        observe: false,
    };
    let mut lazy = MccpCluster::cycle_accurate(cfg(false), MccpConfig::default(), standards, 21);
    let r_lazy = lazy.run(&workload, DispatchPolicy::Fifo);
    assert_eq!(
        lazy.verify(&workload, &r_lazy).expect("no-steal verify"),
        packets
    );
    let mut eager = MccpCluster::cycle_accurate(cfg(true), MccpConfig::default(), standards, 21);
    let r_eager = eager.run(&workload, DispatchPolicy::Fifo);
    assert_eq!(
        eager.verify(&workload, &r_eager).expect("stealing verify"),
        packets
    );
    SkewResult {
        packets,
        no_steal_makespan_cycles: r_lazy.merged.cycles,
        stealing_makespan_cycles: r_eager.merged.cycles,
        stealing_speedup: r_lazy.merged.cycles as f64 / r_eager.merged.cycles.max(1) as f64,
        stolen_packets: r_eager.stolen_packets,
        hot_shard_packets_no_steal: r_lazy.shards[0].packets,
        max_shard_packets_stealing: r_eager.shards.iter().map(|s| s.packets).max().unwrap_or(0),
    }
}

/// The CI perf smoke: re-measures the batched kernel arms briefly and
/// fails if any lands more than 20% below its checked-in regression
/// floor from `BENCH_functional_kernels.json`. Floors are deliberate
/// underestimates (see `bench_kernels`), so tripping this means a real
/// kernel regression, not host noise.
fn perf_smoke_against_floors() {
    use mccp_aes::modes::GcmContext;
    use mccp_gf128::{ghash_batched, Gf128, GhashPowers};

    let floors = std::fs::read_to_string("BENCH_functional_kernels.json")
        .expect("BENCH_functional_kernels.json must be checked in for the perf smoke");
    let floor = |key: &str| -> f64 {
        let tail = floors
            .split(&format!("\"{key}\":"))
            .nth(1)
            .unwrap_or_else(|| panic!("{key} missing from BENCH_functional_kernels.json"));
        tail.trim_start()
            .split([',', '\n', '}'])
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("{key}: unparseable floor: {e}"))
    };

    let measure = |mut f: Box<dyn FnMut()>| -> f64 {
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= 0.08 || iters >= (1 << 30) {
                return iters as f64 / dt.max(1e-12);
            }
            iters = iters.saturating_mul(((0.08 / dt.max(1e-9)) * 1.25).ceil().max(2.0) as u64);
        }
    };

    let buf = vec![0x5Au8; 8192];
    let powers = GhashPowers::new(Gf128::from_bytes(&[0xB8; 16]));
    let ghash_gb_s = {
        let powers = &powers;
        let buf = &buf;
        measure(Box::new(move || {
            std::hint::black_box(ghash_batched(powers, &[], buf));
        })) * 8192.0
            / 1e9
    };

    let ctx = GcmContext::new(mccp_aes::Aes::new(&[0x42; 16]));
    let payload = vec![0xC3u8; 512];
    let mut ct = vec![0x99u8; 8192];
    let ctr_gb_s = {
        let aes = mccp_aes::Aes::new(&[0x42; 16]);
        measure(Box::new(move || {
            mccp_aes::modes::ctr_xcrypt(&aes, &[0xA5; 16], std::hint::black_box(&mut ct)).unwrap();
        })) * 8192.0
            / 1e9
    };
    let mut out = Vec::with_capacity(512 + 16);
    let gcm_pps = {
        let ctx = &ctx;
        let payload = &payload;
        measure(Box::new(move || {
            ctx.seal_into(&[0x11; 12], &[0x22; 16], payload, 16, &mut out)
                .unwrap();
        }))
    };

    for (label, measured, floor) in [
        (
            "ghash_batched_gb_s",
            ghash_gb_s,
            floor("floor_ghash_batched_gb_s"),
        ),
        (
            "ctr_batched_gb_s",
            ctr_gb_s,
            floor("floor_ctr_batched_gb_s"),
        ),
        (
            "gcm512_batched_packets_per_sec",
            gcm_pps,
            floor("floor_gcm512_batched_packets_per_sec"),
        ),
    ] {
        println!("  perf smoke {label}: measured {measured:.4}, floor {floor:.4}");
        assert!(
            measured >= 0.8 * floor,
            "{label} regressed: measured {measured:.4} < 80% of checked-in floor {floor:.4}"
        );
    }
}
