//! Cluster scaling curve: one multi-channel workload served by 1/2/4/8
//! engine shards, emitted as `BENCH_cluster.json` (hand-formatted; no
//! serde).
//!
//! Two curves per shard count:
//!
//! - **modeled** — cycle-accurate shards; aggregate throughput is total
//!   payload bits over the cluster *makespan* (slowest shard) at the
//!   190 MHz clock. This is the serving capacity a real N-device
//!   deployment would have, and is host-independent.
//! - **functional wall-clock** — functional shards on one OS thread
//!   each. Honest host numbers: on a host with fewer cores than shards
//!   (`host_parallelism` is recorded), wall-clock cannot scale with the
//!   shard count; the modeled curve is the scaling claim.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_cluster
//! ```

use mccp_core::MccpConfig;
use mccp_sdr::cluster::{ClusterConfig, MccpCluster, RetryPolicy};
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::Standard;

const PACKETS: usize = 160;
const PAYLOAD_LEN: usize = 512;
const SEED: u64 = 0xC1A5;
const KEY_SEED: u64 = 9;

struct Point {
    shards: usize,
    modeled_makespan_cycles: u64,
    modeled_aggregate_mbps: f64,
    functional_serial_wall_seconds: f64,
    functional_threaded_wall_seconds: f64,
    functional_wall_mbps: f64,
    functional_effective_parallelism: f64,
    stolen_packets: usize,
}

fn main() {
    // Eight channels (each standard twice) so affinity dispatch has work
    // for every shard at the 8-shard point.
    let standards = vec![
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
        Standard::Wifi,
        Standard::Wimax,
        Standard::Umts,
        Standard::SecureVoice,
    ];
    let spec = WorkloadSpec {
        standards: standards.clone(),
        packets: PACKETS,
        seed: SEED,
        fixed_payload_len: Some(PAYLOAD_LEN),
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec);
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "bench_cluster: {PACKETS} packets x {PAYLOAD_LEN} B over {} channels, \
         host parallelism {host_parallelism}",
        standards.len()
    );

    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let cfg = ClusterConfig {
            shards,
            work_stealing: true,
            telemetry_capacity: None,
            retry: RetryPolicy::default(),
            observe: false,
        };

        // Modeled curve: cycle-accurate shards, sequential host execution
        // (modeled cycles are host-independent).
        let mut cycle =
            MccpCluster::cycle_accurate(cfg, MccpConfig::default(), &standards, KEY_SEED);
        let modeled = cycle.run(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            cycle.verify(&workload, &modeled).expect("cycle verify"),
            PACKETS
        );

        // Functional wall-clock curves. The serial run is the honest
        // baseline for host speedup claims: on a host with
        // `host_parallelism == 1` the threaded run cannot beat it, and
        // recording only the threaded number would report a meaningless
        // 1.0x "speedup" that actually measures thread overhead.
        let mut serial = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let serial_wall = serial.run(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            serial
                .verify(&workload, &serial_wall)
                .expect("serial verify"),
            PACKETS
        );
        let mut functional = MccpCluster::functional(cfg, &standards, KEY_SEED);
        let wall = functional.run_threaded(&workload, DispatchPolicy::Fifo);
        assert_eq!(
            functional
                .verify(&workload, &wall)
                .expect("functional verify"),
            PACKETS
        );

        let bits = modeled.merged.payload_bits as f64;
        let point = Point {
            shards,
            modeled_makespan_cycles: modeled.merged.cycles,
            modeled_aggregate_mbps: modeled.aggregate_throughput_mbps(),
            functional_serial_wall_seconds: serial_wall.wall_seconds,
            functional_threaded_wall_seconds: wall.wall_seconds,
            functional_wall_mbps: bits / wall.wall_seconds.max(1e-12) / 1e6,
            functional_effective_parallelism: wall.wall.effective_parallelism(),
            stolen_packets: modeled.stolen_packets,
        };
        println!(
            "  {shards} shard(s): modeled {} cyc makespan -> {:.0} Mbps aggregate; \
             functional serial {:.4}s / threaded {:.4}s -> {:.0} Mbps \
             (effective parallelism {:.2}); {} stolen",
            point.modeled_makespan_cycles,
            point.modeled_aggregate_mbps,
            point.functional_serial_wall_seconds,
            point.functional_threaded_wall_seconds,
            point.functional_wall_mbps,
            point.functional_effective_parallelism,
            point.stolen_packets
        );
        points.push(point);
    }

    let base = &points[0];
    let at = |n: usize| points.iter().find(|p| p.shards == n).unwrap();
    let modeled_speedup_4 = at(4).modeled_aggregate_mbps / base.modeled_aggregate_mbps;
    assert!(
        modeled_speedup_4 >= 2.0,
        "4 shards must at least double aggregate modeled throughput, got {modeled_speedup_4:.2}x"
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"modeled_makespan_cycles\": {}, \
                 \"modeled_aggregate_mbps\": {:.1}, \"modeled_speedup\": {:.2}, \
                 \"functional_serial_wall_seconds\": {:.6}, \
                 \"functional_threaded_wall_seconds\": {:.6}, \
                 \"functional_wall_mbps\": {:.1}, \
                 \"functional_thread_speedup\": {:.2}, \
                 \"functional_effective_parallelism\": {:.2}, \"stolen_packets\": {}}}",
                p.shards,
                p.modeled_makespan_cycles,
                p.modeled_aggregate_mbps,
                p.modeled_aggregate_mbps / base.modeled_aggregate_mbps,
                p.functional_serial_wall_seconds,
                p.functional_threaded_wall_seconds,
                p.functional_wall_mbps,
                p.functional_serial_wall_seconds / p.functional_threaded_wall_seconds.max(1e-12),
                p.functional_effective_parallelism,
                p.stolen_packets
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"cluster_scaling\",\n  \"workload\": {{\"channels\": {}, \
         \"packets\": {PACKETS}, \"payload_bytes\": {PAYLOAD_LEN}, \"cores_per_shard\": 4}},\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"note\": \"modeled curve is host-independent serving capacity (makespan at 190 MHz); \
         functional_thread_speedup compares the same shard count serial vs threaded and is \
         bounded by host_parallelism\",\n  \"points\": [\n{}\n  ]\n}}\n",
        standards.len(),
        rows.join(",\n")
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    print!("{json}");
    println!("modeled aggregate speedup at 4 shards: {modeled_speedup_4:.2}x (>= 2x required)");
}
