//! Ablation — replacing AES with Twofish (paper §IX).
//!
//! "AES core may be easily replaced by any other 128-bit block cipher
//! (such as Twofish) according to the user needs." Here one core is
//! live-reconfigured to the Twofish unit through the demand-policy swap
//! path — charging the full Table IV RAM load latency before the first
//! packet — and the *same GCM firmware* runs on both engines; throughput
//! shifts only by the engines' per-block latencies (44 vs 48 modeled
//! cycles).

use mccp_core::core_unit::Personality;
use mccp_core::protocol::{Algorithm, CipherSel, KeyId};
use mccp_core::{Mccp, MccpConfig, PolicyConfig};
use mccp_cryptounit::engine::TWOFISH_CYCLES;
use mccp_cryptounit::timing::T_FINALIZE;
use mccp_sim::throughput_mbps;

fn measure(cipher: CipherSel) -> f64 {
    let mut m = Mccp::new(MccpConfig::default());
    m.key_memory_mut().store(KeyId(1), &[0x42; 16]);
    if cipher == CipherSel::Twofish {
        // A policy-accounted live swap, not a teleport: the region is
        // reserved for the whole RAM load budget and only then comes up
        // with the Twofish personality.
        m.enable_reconfig_policy(PolicyConfig::default());
        let budget = m.policy_swap(0, Personality::TwofishUnit).unwrap();
        let target = m.cycle() + budget + 1;
        m.run_until(target);
        assert!(!m.is_reconfiguring(0), "swap must complete within budget");
        assert_eq!(m.policy().unwrap().swaps(), 1);
    }
    let ch = m
        .open_with_cipher(Algorithm::AesGcm128, KeyId(1), 16, cipher)
        .unwrap();
    let payload = vec![0xA5u8; 2048];
    m.encrypt_packet(ch, &[], &payload, &[1u8; 12]).unwrap(); // warm
    let pkt = m.encrypt_packet(ch, &[], &payload, &[2u8; 12]).unwrap();
    throughput_mbps(2048 * 8, pkt.cycles)
}

fn main() {
    println!("Ablation: cipher swap in the reconfigurable CU region (GCM, 2 KB)\n");
    let aes = measure(CipherSel::Aes);
    let tf = measure(CipherSel::Twofish);
    println!("  AES engine (44-cycle core):      {aes:.1} Mbps @ 190 MHz");
    println!("  Twofish engine ({TWOFISH_CYCLES}-cycle model): {tf:.1} Mbps @ 190 MHz");
    let model_ratio = (44 + T_FINALIZE) as f64 / (TWOFISH_CYCLES + T_FINALIZE) as f64;
    println!(
        "  measured ratio {:.3} vs loop-model ratio {:.3}",
        tf / aes,
        model_ratio
    );
    println!("\nSame firmware, same protocol, same packets — only the engine in");
    println!(
        "the reconfigurable region differs. The ~{:.0}% delta is exactly the",
        (1.0 - model_ratio) * 100.0
    );
    println!("44→{TWOFISH_CYCLES}-cycle block-latency difference; everything else hides in");
    println!("the background window. That is the paper's flexibility claim, measured.");
    assert!(
        (tf / aes - model_ratio).abs() < 0.03,
        "swap must track the loop model"
    );
}
