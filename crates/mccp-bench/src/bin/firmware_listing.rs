//! Prints the assembled mode firmware — the reproduction's counterpart to
//! the paper's Listing 1 (the GCMloop body). Pass a firmware name to dump
//! one program, or nothing for a summary of all ten.
//!
//! ```sh
//! cargo run -p mccp-bench --bin firmware_listing            # summary
//! cargo run -p mccp-bench --bin firmware_listing GcmEnc     # full listing
//! ```

use mccp_core::firmware::{source, FirmwareId, FirmwareLibrary};

fn main() {
    let lib = FirmwareLibrary::new();
    let arg = std::env::args().nth(1);

    match arg {
        Some(name) => {
            let id = FirmwareId::ALL
                .iter()
                .find(|id| format!("{id:?}").eq_ignore_ascii_case(&name))
                .copied()
                .unwrap_or_else(|| {
                    eprintln!("unknown firmware `{name}`; one of: {:?}", FirmwareId::ALL);
                    std::process::exit(2);
                });
            println!("=== {id:?} — assembled listing ===\n");
            let prog = lib.program(id);
            for (addr, text) in prog.disassemble() {
                let line = prog
                    .source_line(addr)
                    .map(|l| format!("  ; src:{l}"))
                    .unwrap_or_default();
                println!("0x{addr:03X}  {text}{line}");
            }
            println!("\n--- source ---\n{}", source(id));
        }
        None => {
            println!("Mode firmware inventory (PicoBlaze assembly, 1024-word budget)\n");
            println!(
                "{:<16} {:>12} {:>14}",
                "program", "instructions", "memory used"
            );
            for id in FirmwareId::ALL {
                let n = lib.program(id).disassemble().len();
                println!(
                    "{:<16} {:>12} {:>13.1}%",
                    format!("{id:?}"),
                    n,
                    n as f64 / 1024.0 * 100.0
                );
            }
            println!("\nThe paper's Listing 1 corresponds to GcmEnc's main_loop; run");
            println!("`firmware_listing GcmEnc` to see the scheduled loop with the");
            println!("counter arithmetic interleaved into the NOP slots.");
        }
    }
}
