//! Demand-driven reconfiguration benchmark: a standards-mix shift forces
//! live CU personality swaps (AES → Twofish → Whirlpool) through the
//! policy engine, and a service-plane soak runs at steady drain while a
//! shard's CU region is mid-reconfiguration. Emits `BENCH_reconfig.json`.
//!
//! Three claims, asserted:
//!
//! - **Swaps are demand-driven and charged per Table IV.** The mix shift
//!   makes the policy flip idle cores toward the starved personality; the
//!   engine's accumulated reconfiguration stall must equal the *exact*
//!   sum of the flipped bitstreams' RAM load budgets.
//! - **No packet is lost, no nonce is reused.** Every accepted submission
//!   is delivered; rejected submissions are requeued with their own IV
//!   and every accepted (channel, IV) pair is unique.
//! - **Critical traffic rides out the capacity dip.** A service-plane
//!   soak offered at the *effective* (dip-scaled) drain rate sheds zero
//!   Critical-class packets while a core is reconfiguring.
//!
//! `--quick` shrinks the packet counts into a CI smoke that asserts the
//! same invariants without rewriting the BENCH file.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_reconfig [-- --quick]
//! ```

use mccp_core::core_unit::Personality;
use mccp_core::pipeline::{PipelineGraph, PipelineStage, StageOp};
use mccp_core::protocol::{Algorithm, ChannelId, CipherSel, KeyId, MccpError, RequestId};
use mccp_core::reconfig::{bitstream_for, BitstreamSource, PolicyConfig};
use mccp_core::{Direction, Mccp, MccpConfig};
use mccp_sdr::{MccpService, QosClass, ServiceConfig, Standard};
use std::collections::HashSet;

const PAYLOAD_LEN: usize = 256;
/// Cycles the driver fast-forwards per rejected submission while it waits
/// for capacity (a fraction of the ~12M-cycle RAM load budget).
const RETRY_ADVANCE: u64 = 2_500_000;

/// Per-run audit: accepted (channel, IV) pairs must be unique and every
/// accepted packet must come back out.
struct Audit {
    nonces: HashSet<(u8, Vec<u8>)>,
    accepted: u64,
    delivered: u64,
    rejected: u64,
    nonce_reuse: u64,
}

impl Audit {
    fn new() -> Self {
        Audit {
            nonces: HashSet::new(),
            accepted: 0,
            delivered: 0,
            rejected: 0,
            nonce_reuse: 0,
        }
    }

    fn accept(&mut self, ch: ChannelId, iv: &[u8]) {
        self.accepted += 1;
        if !self.nonces.insert((ch.0, iv.to_vec())) {
            self.nonce_reuse += 1;
        }
    }
}

/// Submits one packet, requeueing (with the same not-yet-consumed IV) on
/// `NoResource` while the engine — and any policy-begun swap — advances.
fn submit_retry(
    m: &mut Mccp,
    ch: ChannelId,
    iv: &[u8],
    body: &[u8],
    audit: &mut Audit,
) -> RequestId {
    loop {
        match m.submit(ch, Direction::Encrypt, iv, &[], body, None) {
            Ok(id) => {
                audit.accept(ch, iv);
                return id;
            }
            Err(MccpError::NoResource) => {
                audit.rejected += 1;
                let now = m.cycle();
                m.run_until(now + RETRY_ADVANCE);
            }
            Err(e) => panic!("submit: {e:?}"),
        }
    }
}

fn finish(m: &mut Mccp, id: RequestId, audit: &mut Audit) {
    m.run_until_done(id, 100_000_000);
    m.retrieve(id).expect("retrieve");
    m.transfer_done(id).expect("transfer_done");
    audit.delivered += 1;
}

fn nonce_for(seq: u64, nonce_len: usize) -> Vec<u8> {
    let mut iv = vec![0u8; nonce_len];
    iv[..8].copy_from_slice(&seq.to_be_bytes());
    iv
}

fn personality_name(p: Personality) -> &'static str {
    match p {
        Personality::AesUnit => "aes",
        Personality::TwofishUnit => "twofish",
        Personality::WhirlpoolUnit => "whirlpool",
    }
}

struct MixShiftResult {
    swaps: u64,
    stall_cycles: u64,
    expected_stall_cycles: u64,
    cores_final: Vec<Personality>,
    offered: [u64; 3],
    served: [u64; 3],
    audit: Audit,
}

/// The mix-shift soak on the raw cycle-accurate engine: an AES-dominated
/// phase, a shift to Twofish-cipher traffic, then a pipeline phase whose
/// final stage demands a Whirlpool core. Every swap is begun by the
/// policy on a `NoResource` rejection — never scripted.
fn mix_shift_soak(phase1: usize, phase2_pairs: usize, phase3: usize) -> MixShiftResult {
    let mut m = Mccp::new(MccpConfig::default());
    m.enable_reconfig_policy(PolicyConfig::default());
    let mut audit = Audit::new();

    // Phase 1: a four-standard AES mix (CCMP, GCM, CTR, 256-bit CCM).
    m.key_memory_mut().store(KeyId(1), &[0x11; 16]);
    m.key_memory_mut().store(KeyId(2), &[0x22; 16]);
    m.key_memory_mut().store(KeyId(3), &[0x33; 16]);
    m.key_memory_mut().store(KeyId(4), &[0x44; 32]);
    let aes_channels = [
        (m.open(Algorithm::AesCcm128, KeyId(1)).unwrap(), 12),
        (m.open(Algorithm::AesGcm128, KeyId(2)).unwrap(), 12),
        (m.open(Algorithm::AesCtr128, KeyId(3)).unwrap(), 16),
        (m.open(Algorithm::AesCcm256, KeyId(4)).unwrap(), 12),
    ];
    let body = vec![0xB7u8; PAYLOAD_LEN];
    let mut seq = 1u64;
    for i in 0..phase1 {
        let (ch, nonce_len) = aes_channels[i % aes_channels.len()];
        let iv = nonce_for(seq, nonce_len);
        seq += 1;
        let id = submit_retry(&mut m, ch, &iv, &body, &mut audit);
        finish(&mut m, id, &mut audit);
    }
    assert_eq!(
        m.policy().unwrap().swaps(),
        0,
        "no swap without starved demand"
    );

    // Phase 2: the mix shifts — traffic is now Twofish-GCM on two
    // channels, offered in pairs so sustained demand outruns the single
    // freshly-flipped core and pulls a second CU over.
    m.key_memory_mut().store(KeyId(5), &[0x55; 16]);
    m.key_memory_mut().store(KeyId(6), &[0x66; 16]);
    let tf_a = m
        .open_with_cipher(Algorithm::AesGcm128, KeyId(5), 16, CipherSel::Twofish)
        .unwrap();
    let tf_b = m
        .open_with_cipher(Algorithm::AesGcm128, KeyId(6), 16, CipherSel::Twofish)
        .unwrap();
    for _ in 0..phase2_pairs {
        let iv_a = nonce_for(seq, 12);
        let iv_b = nonce_for(seq + 1, 12);
        seq += 2;
        let a = submit_retry(&mut m, tf_a, &iv_a, &body, &mut audit);
        let b = submit_retry(&mut m, tf_b, &iv_b, &body, &mut audit);
        finish(&mut m, a, &mut audit);
        finish(&mut m, b, &mut audit);
    }
    assert!(
        m.policy().unwrap().swaps() >= 1,
        "the Twofish shift must flip at least one CU"
    );

    // Phase 3: a Twofish-CTR → HMAC-Whirlpool pipeline graph; its final
    // stage demands the personality only a live reconfiguration provides.
    let graph = PipelineGraph::new(
        vec![
            PipelineStage {
                op: StageOp::Ctr,
                cipher: CipherSel::Twofish,
                key: vec![0x77; 16],
            },
            PipelineStage {
                op: StageOp::WhirlpoolHmac,
                cipher: CipherSel::Aes,
                key: vec![0x88; 32],
            },
        ],
        32,
    );
    let pch = m.open_pipeline(&graph).unwrap();
    for _ in 0..phase3 {
        let iv = nonce_for(seq, 16);
        seq += 1;
        let id = submit_retry(&mut m, pch, &iv, &body, &mut audit);
        finish(&mut m, id, &mut audit);
    }

    // Let every begun swap finish, so the stall ledger is complete.
    while (0..4).any(|i| m.is_reconfiguring(i)) {
        let now = m.cycle();
        m.run_until(now + 1_000_000);
    }

    let cores_final: Vec<Personality> = (0..4).map(|i| m.core(i).personality()).collect();
    let flipped: Vec<Personality> = cores_final
        .iter()
        .copied()
        .filter(|&p| p != Personality::AesUnit)
        .collect();
    let pe = m.policy().unwrap();
    let swaps = pe.swaps();
    assert!(
        flipped.len() >= 2,
        "the mix shift must flip at least two CUs, got {cores_final:?}"
    );
    assert_eq!(
        swaps,
        flipped.len() as u64,
        "each affected CU flips exactly once ({cores_final:?})"
    );
    // Table IV, charged: the engine's reconfiguration stall is exactly
    // the sum of the flipped bitstreams' RAM load budgets (+1 per swap:
    // the region comes back up on the tick after the countdown expires).
    let expected_stall: u64 = flipped
        .iter()
        .map(|&p| bitstream_for(p).load_time_cycles(BitstreamSource::Ram) + 1)
        .sum();
    assert_eq!(m.reconfig_stall_cycles(), expected_stall);

    assert_eq!(audit.accepted, audit.delivered, "no packet may be lost");
    assert_eq!(audit.nonce_reuse, 0, "no nonce may be reused across swaps");

    MixShiftResult {
        swaps,
        stall_cycles: m.reconfig_stall_cycles(),
        expected_stall_cycles: expected_stall,
        cores_final,
        offered: pe.offered_total(),
        served: pe.served_total(),
        audit,
    }
}

struct ServiceDipResult {
    rounds: usize,
    offered: u64,
    admitted: u64,
    delivered: u64,
    sheds: [u64; 3],
    drain_budget: usize,
    effective_drain_budget: usize,
}

/// Steady-drain service soak during a swap window: every shard's engine
/// has one CU mid-reconfiguration for the whole run, so QoS admission
/// judges the queue against the dip-scaled drain budget. Offered load
/// matches that effective rate — Critical must shed nothing.
fn service_dip_soak(rounds: usize) -> ServiceDipResult {
    let drain_budget = 8;
    let config = ServiceConfig {
        shards: 2,
        queue_capacity: 64,
        drain_budget,
        warm_set_capacity: 32,
        step_bound: 200_000,
        ..ServiceConfig::default()
    };
    let mut svc: MccpService<Mccp> = MccpService::new(config, |_| {
        let mut m = Mccp::new(MccpConfig::default());
        m.enable_reconfig_policy(PolicyConfig::default());
        // The swap window: one CU flips to Whirlpool through the policy
        // path, dipping the shard's AES capacity from 4 cores to 3 for
        // the ~12M-cycle load (far longer than this soak advances).
        m.policy_swap(3, Personality::WhirlpoolUnit)
            .expect("swap begins on the idle core");
        m
    });
    // 4 cores, 1 reconfiguring: available/total = 3/4.
    let effective = (drain_budget * 3 / 4).max(1);

    // Both shards hold both classes (round-robin placement alternates).
    let channels: Vec<_> = (0..16)
        .map(|i| {
            let (s, key_len) = if i % 2 == 0 {
                (Standard::SecureVoice, 32)
            } else {
                (Standard::Wifi, 16)
            };
            svc.open(s, &vec![(i + 1) as u8; key_len]).expect("open")
        })
        .collect();

    let payload = vec![0x9Eu8; PAYLOAD_LEN];
    let mut delivered = 0u64;
    for round in 0..rounds {
        // Exactly the effective rate per shard per round: 2 shards × the
        // dip-scaled budget, split evenly over both classes.
        for k in 0..(2 * effective) {
            let ch = channels[(round * 2 * effective + k) % channels.len()];
            svc.submit(ch, b"dip", &payload, round as u64)
                .expect("steady-drain submit is never shed");
        }
        for d in svc.pump() {
            assert!(d.auth_ok);
            delivered += 1;
        }
    }
    delivered += svc.quiesce(10_000).len() as u64;

    let c = svc.counters();
    let sheds = [
        c.classes[QosClass::Critical.index()].shed,
        c.classes[QosClass::Standard.index()].shed,
        c.classes[QosClass::BestEffort.index()].shed,
    ];
    let offered: u64 = c.classes.iter().map(|cl| cl.offered).sum();
    let admitted: u64 = c.classes.iter().map(|cl| cl.admitted).sum();
    assert_eq!(
        sheds[0], 0,
        "Critical must shed nothing at steady drain during the swap window"
    );
    assert_eq!(delivered, admitted, "every admitted packet is delivered");
    ServiceDipResult {
        rounds,
        offered,
        admitted,
        delivered,
        sheds,
        drain_budget,
        effective_drain_budget: effective,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (phase1, phase2_pairs, phase3, rounds) = if quick {
        (12, 6, 4, 12)
    } else {
        (40, 20, 8, 40)
    };

    println!(
        "bench_reconfig{}: mix-shift soak ({phase1}+{}+{phase3} packets) \
         + service swap-window soak ({rounds} rounds)",
        if quick { " (--quick)" } else { "" },
        2 * phase2_pairs
    );

    let mix = mix_shift_soak(phase1, phase2_pairs, phase3);
    let cores: Vec<String> = mix
        .cores_final
        .iter()
        .map(|&p| personality_name(p).to_string())
        .collect();
    println!(
        "  mix shift: {} swaps (cores now {:?}), stall {} cycles (= Table IV RAM budgets), \
         {} accepted / {} delivered / {} requeued, nonce reuse {}",
        mix.swaps,
        cores,
        mix.stall_cycles,
        mix.audit.accepted,
        mix.audit.delivered,
        mix.audit.rejected,
        mix.audit.nonce_reuse
    );

    let dip = service_dip_soak(rounds);
    println!(
        "  swap window: {} offered at effective drain {}/{} per shard, \
         sheds critical/standard/best-effort = {}/{}/{}, {} delivered",
        dip.offered,
        dip.effective_drain_budget,
        dip.drain_budget,
        dip.sheds[0],
        dip.sheds[1],
        dip.sheds[2],
        dip.delivered
    );

    if quick {
        println!(
            "bench_reconfig --quick PASSED: {} swaps charged {} cycles, \
             0 dropped / 0 nonce reuse / 0 Critical sheds \
             (BENCH_reconfig.json not rewritten)",
            mix.swaps, mix.stall_cycles
        );
        return;
    }

    let json = format!(
        "{{\n  \"benchmark\": \"reconfig_policy\",\n  \
         \"engine\": \"cycle\",\n  \
         \"host_parallelism\": {},\n  \
         \"policy\": {{\"source\": \"ram\", \"min_samples\": 4, \"demand_ratio\": 2, \
         \"min_dwell_cycles\": 0}},\n  \
         \"table_iv_budgets_cycles\": {{\"aes\": {}, \"twofish\": {}, \"whirlpool\": {}}},\n  \
         \"mix_shift\": {{\"phase_packets\": [{phase1}, {}, {phase3}], \
         \"swaps\": {}, \"stall_cycles\": {}, \"expected_stall_cycles\": {}, \
         \"cores_final\": [{}], \
         \"accepted\": {}, \"delivered\": {}, \"dropped_packets\": {}, \
         \"requeued_submissions\": {}, \"nonce_reuse\": {}, \
         \"offered_per_personality\": {{\"aes\": {}, \"twofish\": {}, \"whirlpool\": {}}}, \
         \"served_per_personality\": {{\"aes\": {}, \"twofish\": {}, \"whirlpool\": {}}}}},\n  \
         \"service_swap_window\": {{\"shards\": 2, \"rounds\": {}, \
         \"drain_budget\": {}, \"effective_drain_budget\": {}, \
         \"offered\": {}, \"admitted\": {}, \"delivered\": {}, \
         \"sheds\": {{\"critical\": {}, \"standard\": {}, \"best_effort\": {}}}, \
         \"critical_sheds_during_swaps\": {}}},\n  \
         \"note\": \"swaps are policy-begun on NoResource rejections only and claim idle \
         cores, so no in-flight packet is interrupted; stall_cycles must equal the sum of \
         the flipped bitstreams' Table IV RAM load budgets; the service soak runs entirely \
         inside a swap window at the dip-scaled drain rate\"\n}}\n",
        mccp_sdr::host_parallelism(),
        bitstream_for(Personality::AesUnit).load_time_cycles(BitstreamSource::Ram),
        bitstream_for(Personality::TwofishUnit).load_time_cycles(BitstreamSource::Ram),
        bitstream_for(Personality::WhirlpoolUnit).load_time_cycles(BitstreamSource::Ram),
        2 * phase2_pairs,
        mix.swaps,
        mix.stall_cycles,
        mix.expected_stall_cycles,
        cores
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", "),
        mix.audit.accepted,
        mix.audit.delivered,
        mix.audit.accepted - mix.audit.delivered,
        mix.audit.rejected,
        mix.audit.nonce_reuse,
        mix.offered[0],
        mix.offered[1],
        mix.offered[2],
        mix.served[0],
        mix.served[1],
        mix.served[2],
        dip.rounds,
        dip.drain_budget,
        dip.effective_drain_budget,
        dip.offered,
        dip.admitted,
        dip.delivered,
        dip.sheds[0],
        dip.sheds[1],
        dip.sheds[2],
        dip.sheds[0],
    );
    std::fs::write("BENCH_reconfig.json", &json).expect("write BENCH_reconfig.json");
    print!("{json}");
    println!(
        "bench_reconfig PASSED: {} swaps charged {} stall cycles, 0 dropped, \
         0 nonce reuse, 0 Critical sheds during the swap window",
        mix.swaps, mix.stall_cycles
    );
}
