//! End-to-end telemetry demonstration: a saturated 4-core multi-channel
//! GCM-128 workload with every export format the telemetry subsystem
//! offers — the typed event log as JSON-lines, the metrics registry as
//! Prometheus text, the human-readable utilization report, and the
//! request spans as a VCD waveform — plus a determinism self-check (the
//! whole run is executed twice and every export byte-compared).
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin telemetry_report
//! ```

use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Direction, Mccp, MccpConfig, RequestId};
use mccp_sim::CLOCK_HZ;
use mccp_telemetry::{export, vcd_bridge};

const CHANNELS: usize = 4;
const PACKETS_PER_CHANNEL: usize = 6;
const PAYLOAD_LEN: usize = 1024;

struct Exports {
    json_lines: String,
    prometheus: String,
    utilization: String,
    vcd: String,
}

/// Runs the saturated workload on a fresh MCCP and renders every export.
fn run_workload() -> Exports {
    let mut mccp = Mccp::new(MccpConfig::default());
    mccp.enable_telemetry(4096);

    // One GCM-128 channel per key; all four contend for the four cores.
    let mut channels = Vec::new();
    for i in 0..CHANNELS {
        let kid = KeyId(i as u8 + 1);
        mccp.key_memory_mut().store(kid, &[0x40 + i as u8; 16]);
        channels.push(mccp.open(Algorithm::AesGcm128, kid).expect("open"));
    }

    // Saturate: keep a packet queued per channel; submit whenever a core
    // frees up, round-robin across channels.
    let payload: Vec<u8> = (0..PAYLOAD_LEN).map(|i| i as u8).collect();
    let mut submitted = [0usize; CHANNELS];
    let mut in_flight: Vec<RequestId> = Vec::new();
    let mut done = 0usize;
    let total = CHANNELS * PACKETS_PER_CHANNEL;
    let mut guard = 0u64;
    while done < total {
        for (i, &ch) in channels.iter().enumerate() {
            if submitted[i] >= PACKETS_PER_CHANNEL {
                continue;
            }
            let iv = [
                submitted[i] as u8 + 1,
                i as u8 + 1,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            ];
            match mccp.submit(ch, Direction::Encrypt, &iv, b"hdr", &payload, None) {
                Ok(id) => {
                    submitted[i] += 1;
                    in_flight.push(id);
                }
                Err(mccp_core::protocol::MccpError::NoResource) => {}
                Err(e) => panic!("submit failed: {e}"),
            }
        }
        // Leap over quiescent spans (engine countdowns, waits): cores only
        // free on active ticks, so the poll below sees every completion at
        // the same cycle a per-tick loop would.
        let span = if mccp.fast_forward() {
            mccp.quiescent_horizon().min(10_000_000 - guard)
        } else {
            0
        };
        if span == 0 {
            mccp.tick();
            guard += 1;
        } else {
            mccp.skip(span);
            guard += span;
        }
        assert!(guard < 10_000_000, "workload wedged");
        while let Some(id) = mccp.poll_data_available() {
            mccp.retrieve(id).expect("encrypt never auth-fails");
            mccp.transfer_done(id).expect("release");
            in_flight.retain(|&r| r != id);
            done += 1;
        }
    }

    let events = mccp.telemetry_mut().take_events();
    let snapshot = mccp.telemetry_snapshot();
    let vcd = vcd_bridge::spans_to_vcd(
        "mccp_telemetry",
        CLOCK_HZ,
        mccp.telemetry().spans().spans(),
        CHANNELS,
    );
    Exports {
        json_lines: export::json_lines(&events),
        prometheus: export::prometheus_text(&snapshot),
        utilization: export::utilization_report(&snapshot),
        vcd: vcd.render(),
    }
}

fn main() {
    println!(
        "telemetry report: {CHANNELS} GCM-128 channels x {PACKETS_PER_CHANNEL} packets \
         x {PAYLOAD_LEN} B on a saturated 4-core MCCP\n"
    );
    let first = run_workload();

    println!(
        "== events (JSON-lines, first 10 of {}) ==",
        first.json_lines.lines().count()
    );
    for line in first.json_lines.lines().take(10) {
        println!("{line}");
    }

    println!("\n== metrics (Prometheus text) ==");
    print!("{}", first.prometheus);

    println!("\n== utilization ==");
    print!("{}", first.utilization);

    println!(
        "\n== waveform ==\nVCD: {} bytes, {} value-change lines (pipe to a viewer via --vcd)",
        first.vcd.len(),
        first.vcd.lines().filter(|l| l.starts_with('#')).count()
    );
    if std::env::args().any(|a| a == "--vcd") {
        print!("{}", first.vcd);
    }

    // Determinism: the cycle-accurate simulator plus the BTreeMap-backed
    // registry must reproduce every export byte-for-byte.
    let second = run_workload();
    assert_eq!(first.json_lines, second.json_lines, "event log diverged");
    assert_eq!(first.prometheus, second.prometheus, "metrics diverged");
    assert_eq!(first.utilization, second.utilization, "report diverged");
    assert_eq!(first.vcd, second.vcd, "waveform diverged");
    println!("\ndeterminism check: all four exports byte-identical across two runs");
}
