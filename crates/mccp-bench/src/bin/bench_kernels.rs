//! Functional-kernel microbenchmarks: scalar vs block-batched arms of the
//! three kernels the packet path spends its time in, emitted as
//! `BENCH_functional_kernels.json`.
//!
//! - **GHASH** — serial Horner loop vs 8-block folding over precomputed
//!   H-powers ([`GhashPowers`]), GB/s over an 8 KiB buffer.
//! - **AES-CTR** — one `encrypt_block` per counter vs the 4-wide
//!   interleaved T-table keystream, GB/s over an 8 KiB buffer.
//! - **GCM packets** — the exact pre-batching seal path (per-call hash
//!   subkey + serial GHASH + per-block keystream) vs a warm
//!   [`GcmContext`] reused across packets with `seal_into`, packets/s at
//!   the 512 B reference payload.
//!
//! The `floor_*` fields are conservative regression floors (well under
//! half of what this class of host measures); `bench_cluster --quick`
//! re-measures the batched arms and fails if they drop below a floor.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_kernels [-- --quick]
//! ```

use mccp_aes::modes::{ctr_xcrypt, ctr_xcrypt_scalar, gcm_seal_scalar, GcmContext};
use mccp_aes::Aes;
use mccp_gf128::{ghash, ghash_batched, Gf128, GhashKey, GhashPowers};
use std::hint::black_box;
use std::time::Instant;

const KERNEL_BUF_BYTES: usize = 8192;
const GCM_PAYLOAD_BYTES: usize = 512;
const GCM_AAD_BYTES: usize = 16;

// Regression floors for the batched arms. Deliberately far below the
// measured numbers (see BENCH_functional_kernels.json) so only a real
// kernel regression — not host noise — trips the perf smoke check.
const FLOOR_GHASH_BATCHED_GB_S: f64 = 0.04;
const FLOOR_CTR_BATCHED_GB_S: f64 = 0.04;
const FLOOR_GCM512_BATCHED_PACKETS_PER_SEC: f64 = 4000.0;

/// Calls `f` repeatedly until at least `target_secs` of wall clock has
/// been sampled and returns the measured calls per second.
fn calls_per_sec(target_secs: f64, mut f: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= target_secs || iters >= (1 << 30) {
            return iters as f64 / dt.max(1e-12);
        }
        let scale = ((target_secs / dt.max(1e-9)) * 1.25).ceil().max(2.0) as u64;
        iters = iters.saturating_mul(scale).min(1 << 30);
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let target = if quick { 0.08 } else { 0.4 };
    let host_parallelism = mccp_sdr::host_parallelism();
    println!(
        "bench_kernels{}: host parallelism {host_parallelism}",
        if quick { " (--quick)" } else { "" }
    );

    let mut buf = vec![0u8; KERNEL_BUF_BYTES];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31).wrapping_add(7);
    }

    // --- GHASH: serial Horner vs 8-block H-power folding -----------------
    let h = Gf128::from_bytes(&[0xB8; 16]);
    let key = GhashKey::new(h);
    let powers = GhashPowers::new(h);
    assert_eq!(
        ghash(&key, &[], &buf),
        ghash_batched(&powers, &[], &buf),
        "batched GHASH must agree with the serial arm"
    );
    let ghash_scalar_gb_s = calls_per_sec(target, || {
        black_box(ghash(black_box(&key), &[], black_box(&buf)));
    }) * KERNEL_BUF_BYTES as f64
        / 1e9;
    let ghash_batched_gb_s = calls_per_sec(target, || {
        black_box(ghash_batched(black_box(&powers), &[], black_box(&buf)));
    }) * KERNEL_BUF_BYTES as f64
        / 1e9;
    println!(
        "  GHASH {KERNEL_BUF_BYTES} B: scalar {ghash_scalar_gb_s:.3} GB/s, \
         batched {ghash_batched_gb_s:.3} GB/s ({:.2}x)",
        ghash_batched_gb_s / ghash_scalar_gb_s
    );

    // --- AES-CTR keystream: per-block vs 4-wide interleaved --------------
    let aes = Aes::new(&[0x42; 16]);
    let counter = [0xA5u8; 16];
    let mut scalar_out = buf.clone();
    ctr_xcrypt_scalar(&aes, &counter, &mut scalar_out).unwrap();
    let mut batched_out = buf.clone();
    ctr_xcrypt(&aes, &counter, &mut batched_out).unwrap();
    assert_eq!(
        scalar_out, batched_out,
        "batched CTR must agree with scalar"
    );
    let mut work = buf.clone();
    let ctr_scalar_gb_s = calls_per_sec(target, || {
        ctr_xcrypt_scalar(&aes, &counter, black_box(&mut work)).unwrap();
    }) * KERNEL_BUF_BYTES as f64
        / 1e9;
    let ctr_batched_gb_s = calls_per_sec(target, || {
        ctr_xcrypt(&aes, &counter, black_box(&mut work)).unwrap();
    }) * KERNEL_BUF_BYTES as f64
        / 1e9;
    println!(
        "  AES-CTR {KERNEL_BUF_BYTES} B: scalar {ctr_scalar_gb_s:.3} GB/s, \
         batched {ctr_batched_gb_s:.3} GB/s ({:.2}x)",
        ctr_batched_gb_s / ctr_scalar_gb_s
    );

    // --- GCM 512 B packets: pre-batching path vs warm context ------------
    let iv = [0x11u8; 12];
    let aad = [0x22u8; GCM_AAD_BYTES];
    let payload = vec![0xC3u8; GCM_PAYLOAD_BYTES];
    let ctx = GcmContext::new(aes.clone());
    assert_eq!(
        gcm_seal_scalar(&aes, &iv, &aad, &payload, 16).unwrap(),
        ctx.seal(&iv, &aad, &payload, 16).unwrap(),
        "warm-context seal must be byte-identical to the pre-batching path"
    );
    let gcm_scalar_pps = calls_per_sec(target, || {
        black_box(gcm_seal_scalar(&aes, &iv, &aad, black_box(&payload), 16).unwrap());
    });
    let mut out = Vec::with_capacity(GCM_PAYLOAD_BYTES + 16);
    let gcm_batched_pps = calls_per_sec(target, || {
        ctx.seal_into(&iv, &aad, black_box(&payload), 16, &mut out)
            .unwrap();
        black_box(&out);
    });
    let gcm_speedup = gcm_batched_pps / gcm_scalar_pps;
    println!(
        "  GCM {GCM_PAYLOAD_BYTES} B packets: scalar {gcm_scalar_pps:.0}/s, \
         batched {gcm_batched_pps:.0}/s ({gcm_speedup:.2}x)"
    );
    assert!(
        gcm_speedup >= 4.0,
        "batched 512 B GCM must be >= 4x the pre-batching path, got {gcm_speedup:.2}x"
    );

    for (label, measured, floor) in [
        (
            "GHASH batched GB/s",
            ghash_batched_gb_s,
            FLOOR_GHASH_BATCHED_GB_S,
        ),
        ("CTR batched GB/s", ctr_batched_gb_s, FLOOR_CTR_BATCHED_GB_S),
        (
            "GCM 512B batched packets/s",
            gcm_batched_pps,
            FLOOR_GCM512_BATCHED_PACKETS_PER_SEC,
        ),
    ] {
        assert!(
            measured >= floor,
            "{label} = {measured:.4} fell below its regression floor {floor:.4}"
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"functional_kernels\",\n  \
         \"host_parallelism\": {host_parallelism},\n  \
         \"kernel_buf_bytes\": {KERNEL_BUF_BYTES},\n  \
         \"ghash_scalar_gb_s\": {ghash_scalar_gb_s:.4},\n  \
         \"ghash_batched_gb_s\": {ghash_batched_gb_s:.4},\n  \
         \"ghash_speedup\": {:.2},\n  \
         \"ctr_scalar_gb_s\": {ctr_scalar_gb_s:.4},\n  \
         \"ctr_batched_gb_s\": {ctr_batched_gb_s:.4},\n  \
         \"ctr_speedup\": {:.2},\n  \
         \"gcm_payload_bytes\": {GCM_PAYLOAD_BYTES},\n  \
         \"gcm_aad_bytes\": {GCM_AAD_BYTES},\n  \
         \"gcm512_scalar_packets_per_sec\": {gcm_scalar_pps:.0},\n  \
         \"gcm512_batched_packets_per_sec\": {gcm_batched_pps:.0},\n  \
         \"gcm512_packet_speedup\": {gcm_speedup:.2},\n  \
         \"floor_ghash_batched_gb_s\": {FLOOR_GHASH_BATCHED_GB_S},\n  \
         \"floor_ctr_batched_gb_s\": {FLOOR_CTR_BATCHED_GB_S},\n  \
         \"floor_gcm512_batched_packets_per_sec\": {FLOOR_GCM512_BATCHED_PACKETS_PER_SEC},\n  \
         \"note\": \"scalar arms are the exact pre-batching kernels (per-call hash subkey on \
         the GCM path); floors are deliberate underestimates consumed by bench_cluster --quick \
         as regression tripwires\"\n}}\n",
        ghash_batched_gb_s / ghash_scalar_gb_s,
        ctr_batched_gb_s / ctr_scalar_gb_s,
    );
    if quick {
        println!("--quick: floors checked, not rewriting BENCH_functional_kernels.json");
    } else {
        std::fs::write("BENCH_functional_kernels.json", &json).expect("write BENCH json");
    }
    print!("{json}");
    println!("bench_kernels PASSED: 512 B GCM speedup {gcm_speedup:.2}x (>= 4x required)");
}
