//! Table II — MCCP encryption throughputs at 190 MHz.
//!
//! For every (schedule × key size) cell: the analytical theoretical value
//! (which must equal the paper's), the paper's measured 2 KB value, and
//! our cycle-accurate simulator's measured 2 KB value. Absolute measured
//! numbers differ from the paper's by the pre/post-loop overhead of the
//! (unpublished) original firmware; the loop-bound shape must match.

use mccp_aes::KeySize;
use mccp_bench::measure_schedule;
use mccp_core::model::{theoretical_mbps, Schedule, PAPER_TABLE2};

fn main() {
    println!("Table II — MCCP encryption throughputs at 190 MHz (Mbps)");
    println!("packet = 2 KB; theoretical / paper-2KB / reproduced-2KB\n");
    print!("{:<10}", "Key");
    for s in Schedule::ALL {
        print!("{:>24}", s.label());
    }
    println!();

    let mut max_measured: f64 = 0.0;
    for (row_idx, key) in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256]
        .iter()
        .enumerate()
    {
        print!("{:<10}", key.key_bits());
        for (col, s) in Schedule::ALL.iter().enumerate() {
            let theo = theoretical_mbps(*s, *key);
            let paper_theo = PAPER_TABLE2[row_idx].entries[col].0;
            let paper_2kb = PAPER_TABLE2[row_idx].entries[col].1;
            assert_eq!(
                theo, paper_theo,
                "analytical model must reproduce the paper's theoretical column"
            );
            let measured = measure_schedule(*s, *key, 2048);
            max_measured = max_measured.max(measured.mbps);
            print!("{:>24}", format!("{theo}/{paper_2kb}/{:.0}", measured.mbps));
        }
        println!();
    }

    println!("\nHeadline: paper abstract claims 1.7 Gbps max (GCM-128 4x1).");
    println!("Reproduced maximum measured aggregate: {max_measured:.0} Mbps");
    assert!(max_measured >= 1700.0, "headline claim must reproduce");
    println!("=> the 1.7 Gbps claim REPRODUCES.");

    println!("\nShape checks:");
    println!("  - GCM > CCM at equal resources (no serial MAC on the critical path)");
    println!("  - CCM 4x1 > CCM 2x2 aggregate throughput (paper §VII.A)");
    for key in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
        let c4 = measure_schedule(Schedule::Ccm4x1, key, 2048).mbps;
        let c22 = measure_schedule(Schedule::Ccm2x2, key, 2048).mbps;
        assert!(c4 > c22, "{key:?}: 4x1 {c4} vs 2x2 {c22}");
        println!(
            "    AES-{}: 4x1 = {:.0} Mbps > 2x2 = {:.0} Mbps  OK",
            key.key_bits(),
            c4,
            c22
        );
    }
}
