//! Derived figure X-3 — throughput vs core count.
//!
//! §III.A: "MCCP architecture is scalable; the number of embedded
//! crypto-core may vary." A saturated multi-channel GCM-128 load over
//! 1..8 cores; the loosely coupled cores should scale near-linearly until
//! the workload itself runs out.

use mccp_core::MccpConfig;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{RadioDriver, Standard};

fn main() {
    println!("Aggregate throughput vs core count (saturated WiMax/GCM load)\n");
    println!(
        "{:>6} {:>14} {:>12} {:>16}",
        "cores", "Mbps @190MHz", "speedup", "mean latency"
    );

    let spec = WorkloadSpec {
        standards: vec![Standard::Wimax],
        packets: 32,
        seed: 2024,
        fixed_payload_len: Some(1984),
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec.clone());

    let mut base = 0.0f64;
    let mut prev = 0.0f64;
    for n in 1..=8usize {
        let mut radio = RadioDriver::new(
            MccpConfig {
                n_cores: n,
                ..MccpConfig::default()
            },
            &spec.standards,
            7,
        );
        let report = radio.run(&workload, DispatchPolicy::Fifo);
        radio.verify(&workload, &report).expect("outputs verified");
        let mbps = report.throughput_mbps();
        if n == 1 {
            base = mbps;
        }
        println!(
            "{:>6} {:>14.0} {:>11.2}x {:>12.0} cyc",
            n,
            mbps,
            mbps / base,
            report.mean_latency()
        );
        assert!(mbps + 1.0 >= prev, "adding cores must not hurt throughput");
        prev = mbps;
    }

    println!("\nShape: near-linear scaling while the stream saturates the cores;");
    println!("the paper's 4-core design point quadruples the mono-core throughput.");
}
