//! Simulator-speed snapshot: runs a fixed 4-core GCM-128 soak workload
//! twice — once per-tick, once with the event-driven fast path — checks
//! the two schedules are cycle-identical, and emits the wall-clock
//! comparison as `BENCH_sim_speed.json` (hand-formatted; no serde).
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_snapshot
//! ```

use mccp_core::MccpConfig;
use mccp_sdr::driver::RunReport;
use mccp_sdr::qos::DispatchPolicy;
use mccp_sdr::workload::{Workload, WorkloadSpec};
use mccp_sdr::{RadioDriver, Standard};
use std::time::Instant;

const PACKETS: usize = 400;
const PAYLOAD_LEN: usize = 1024;
const MEAN_INTERARRIVAL: f64 = 20_000.0;
const SEED: u64 = 0xBEEF;

struct Sample {
    host_seconds: f64,
    modeled_cycles: u64,
}

impl Sample {
    fn cycles_per_second(&self) -> f64 {
        self.modeled_cycles as f64 / self.host_seconds.max(1e-12)
    }
}

fn run_mode(workload: &Workload, fast_forward: bool) -> (Sample, RunReport) {
    let mut radio = RadioDriver::new(MccpConfig::default(), &workload.spec.standards, SEED);
    radio.mccp_mut().set_fast_forward(fast_forward);
    let t0 = Instant::now();
    let report = radio.run(workload, DispatchPolicy::Fifo);
    let host_seconds = t0.elapsed().as_secs_f64();
    (
        Sample {
            host_seconds,
            modeled_cycles: report.cycles,
        },
        report,
    )
}

fn json_mode(s: &Sample) -> String {
    format!(
        "{{\"host_seconds\": {:.6}, \"modeled_cycles\": {}, \"modeled_cycles_per_second\": {:.0}}}",
        s.host_seconds,
        s.modeled_cycles,
        s.cycles_per_second()
    )
}

fn main() {
    let spec = WorkloadSpec {
        standards: vec![Standard::Wimax],
        packets: PACKETS,
        seed: SEED,
        fixed_payload_len: Some(PAYLOAD_LEN),
        mean_interarrival_cycles: Some(MEAN_INTERARRIVAL),
    };
    let workload = Workload::generate(spec);
    println!(
        "bench_snapshot: {PACKETS} GCM-128 packets x {PAYLOAD_LEN} B, \
         mean inter-arrival {MEAN_INTERARRIVAL:.0} cyc, 4-core MCCP"
    );

    let (per_tick, tick_report) = run_mode(&workload, false);
    let (fast, fast_report) = run_mode(&workload, true);

    // The fast path must reproduce the per-tick schedule exactly.
    assert_eq!(
        per_tick.modeled_cycles, fast.modeled_cycles,
        "fast path changed the schedule length"
    );
    for (a, b) in tick_report.records.iter().zip(fast_report.records.iter()) {
        assert_eq!(a.latency, b.latency, "packet {} latency", a.packet_idx);
        assert_eq!(
            a.completed_at, b.completed_at,
            "packet {} completion",
            a.packet_idx
        );
        assert_eq!(a.ciphertext, b.ciphertext, "packet {} bytes", a.packet_idx);
        assert_eq!(a.tag, b.tag, "packet {} tag", a.packet_idx);
    }

    let speedup = fast.cycles_per_second() / per_tick.cycles_per_second();
    let json = format!(
        "{{\n  \"benchmark\": \"sim_speed\",\n  \"host_parallelism\": {},\n  \
         \"workload\": {{\"standard\": \"Wimax (GCM-128)\", \
         \"packets\": {PACKETS}, \"payload_bytes\": {PAYLOAD_LEN}, \
         \"mean_interarrival_cycles\": {MEAN_INTERARRIVAL:.0}, \"cores\": 4}},\n  \
         \"per_tick\": {},\n  \"fast_forward\": {},\n  \"speedup\": {:.2}\n}}\n",
        mccp_sdr::host_parallelism(),
        json_mode(&per_tick),
        json_mode(&fast),
        speedup
    );
    std::fs::write("BENCH_sim_speed.json", &json).expect("write BENCH_sim_speed.json");
    print!("{json}");
    println!(
        "per-tick {:.3}s vs fast-forward {:.3}s over {} modeled cycles -> {speedup:.1}x",
        per_tick.host_seconds, fast.host_seconds, per_tick.modeled_cycles
    );
}
