//! Ablation — the NOP trick (completion-edge acceptance).
//!
//! §VI.A: "a HALT instruction may be replaced by two NOP instructions. In
//! this case the controller does not wait for the predictable done signal
//! and one clock cycle can be saved." In the model this is the difference
//! between an instruction accepted from the pending register on the
//! completion edge (6 cycles) and a fresh strobe that pays the sampling
//! cycle (7 cycles). Measured here on the raw CU, then projected onto the
//! mode loops.

use mccp_aes::KeySize;
use mccp_cryptounit::timing::{t_cbc_loop, t_ccm_loop_1core, t_gcm_loop, T_FOREGROUND, T_SAMPLE};
use mccp_cryptounit::{CryptoUnit, CuInstruction, CuIo};
use mccp_sim::HwFifo;

fn measure(pipelined: bool, n: usize) -> f64 {
    let mut cu = CryptoUnit::new();
    let mut input = HwFifo::new(64);
    let mut output = HwFifo::new(64);
    let (mut l, mut r) = (None, None);
    let ins = CuInstruction::Inc { a: 0, amount: 1 }.encode();
    let mut retired = 0usize;
    let start_cycle = cu.cycles();
    while retired < n {
        let can_issue = if pipelined {
            // Keep the pending register primed: acceptance happens on the
            // completion edge, skipping the sampling cycle.
            cu.can_strobe()
        } else {
            // Fresh strobe against an idle decoder: pays the sampling
            // cycle every time (the HALT-resynchronized pattern).
            cu.is_idle()
        };
        if can_issue {
            cu.strobe(ins);
        }
        let mut io = CuIo {
            input: &mut input,
            output: &mut output,
            to_right: &mut r,
            from_left: &mut l,
        };
        cu.tick(&mut io);
        if cu.done_pulse() {
            retired += 1;
        }
    }
    (cu.cycles() - start_cycle) as f64 / n as f64
}

fn main() {
    let pipelined = measure(true, 200);
    let fresh = measure(false, 200);
    println!("Ablation: completion-edge acceptance (the HALT->NOP-pair trick)\n");
    println!("  back-to-back (pending register): {pipelined:.2} cycles/instruction");
    println!("  fresh strobe (resampled):        {fresh:.2} cycles/instruction");
    println!(
        "  saving: {:.2} cycle(s) per instruction (paper: \"one clock cycle\")\n",
        fresh - pipelined
    );
    assert!((pipelined - T_FOREGROUND as f64).abs() < 0.2);
    assert!((fresh - (T_SAMPLE + T_FOREGROUND) as f64).abs() < 0.2);

    println!("Projected loop impact if every CU instruction paid the sampling cycle:");
    for key in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
        // GCM: AES-bound, only the FAES drain on the path; CBC adds XOR.
        let gcm = t_gcm_loop(key);
        let cbc = t_cbc_loop(key);
        let ccm = t_ccm_loop_1core(key);
        println!(
            "  AES-{}: GCM {} -> {} | CBC {} -> {} | CCM1 {} -> {}",
            key.key_bits(),
            gcm,
            gcm + 1, // FAES resampled
            cbc,
            cbc + 2, // FAES + XOR resampled
            ccm,
            ccm + 3, // two FAES + XOR
        );
    }
    println!("\n(1-3 cycles per 49-104-cycle loop: ~2-6% throughput, which is why");
    println!(" the paper bothers with the NOP replacement in Listing 1.)");
}
