//! Figures 1–3 — the architecture, as a component inventory with the area
//! budget that reproduces the paper's synthesis result (4084 slices /
//! 26 BRAM on the Virtex-4 SX35).

use mccp_sim::resources::{ResourceReport, Virtex4Sx35};

fn main() {
    println!("MCCP architecture report (Figs. 1-3 as an inventory)\n");

    println!("Fig. 1 — top level:");
    println!("  Task Scheduler (8-bit controller) -> Instruction/Return registers");
    println!("  Cross Bar: communication controller <-> per-core FIFO pairs");
    println!("  Key Memory (write-protected) -> Key Scheduler -> per-core Key Caches");
    println!("  4 x Cryptographic Core, ring of inter-core ports\n");

    println!("Fig. 2 — one Cryptographic Core:");
    println!("  8-bit controller (PicoBlaze-class, 2 cycles/instr, custom HALT)");
    println!("  shared dual-port 1024x18 instruction memory per core pair");
    println!("  input FIFO 512x32, output FIFO 512x32, 4x32 shift register");
    println!("  Key Cache; inter-core ports left/right\n");

    println!("Fig. 3 — the Cryptographic Unit:");
    println!("  4x128-bit bank register, 2-bit sub-word counter, S register");
    println!("  decoder; AES core (44/52/60 cyc), GHASH digit-serial (43 cyc)");
    println!("  XOR/comparator + 16-bit mask, INC core, 32-bit I/O core\n");

    for n in [1usize, 2, 4, 8] {
        let report = ResourceReport::mccp(n as u32);
        let total = report.total();
        println!("--- {n}-core MCCP area budget ---");
        print!("{report}");
        println!(
            "  fits Virtex-4 SX35: {} (slice utilization {:.1}%)\n",
            Virtex4Sx35::fits(total),
            Virtex4Sx35::slice_utilization(total) * 100.0
        );
        if n == 4 {
            assert_eq!(total.slices, 4084, "paper: 4084 slices");
            assert_eq!(total.brams, 26, "paper: 26 BRAMs");
        }
    }
    println!("4-core totals match the paper's §VII.A synthesis: 4084 slices, 26 BRAMs.");
}
