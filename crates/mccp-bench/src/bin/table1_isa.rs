//! Table I — the Cryptographic Unit instruction set, with the timing
//! behaviour each instruction exhibits in the cycle-accurate model.

use mccp_cryptounit::timing::{GHASH_CYCLES, T_FINALIZE, T_FOREGROUND, T_SAMPLE};
use mccp_cryptounit::CuInstruction;

fn main() {
    println!("Table I — The Cryptographic Unit ISA");
    println!("(4-bit opcode, two 2-bit bank-register addresses; 8-bit instructions)\n");
    println!(
        "{:<12} {:<10} {:<10} Description",
        "Instruction", "Encoding", "Cycles"
    );
    let rows: Vec<(CuInstruction, &str)> = vec![
        (
            CuInstruction::Load { a: 0 },
            "Loads a 128-bit word from the input FIFO into @A",
        ),
        (
            CuInstruction::Store { a: 0 },
            "Stores @A into the output FIFO (Listing 1)",
        ),
        (
            CuInstruction::LoadH { a: 0 },
            "Loads the computed H constant into the GHASH core",
        ),
        (
            CuInstruction::Sgfm { a: 0 },
            "Starts one GHASH iteration in the background",
        ),
        (
            CuInstruction::Fgfm { a: 0 },
            "Stores the GHASH result into @A (waits for the core)",
        ),
        (
            CuInstruction::Saes { a: 0 },
            "Starts AES encryption of @A in the background",
        ),
        (
            CuInstruction::Faes { a: 0 },
            "Stores the AES result into @A (waits for the core)",
        ),
        (
            CuInstruction::Inc { a: 0, amount: 1 },
            "Increments the 16 LSBs of @A by I (1..4)",
        ),
        (CuInstruction::Xor { a: 0, b: 1 }, "B = (A XOR B) AND mask"),
        (
            CuInstruction::Equ { a: 0, b: 1 },
            "Sets equ_flag to 1 if A = B",
        ),
        (
            CuInstruction::Xput { a: 0 },
            "Sends @A over the inter-core port (our realization)",
        ),
        (
            CuInstruction::Xget { a: 0 },
            "Receives a word from the inter-core port (ours)",
        ),
    ];
    for (ins, desc) in rows {
        let cycles = match ins {
            CuInstruction::Faes { .. } => format!("AES+{T_FINALIZE}"),
            CuInstruction::Fgfm { .. } => format!("GHASH+{T_FINALIZE}"),
            _ => format!("{}", T_SAMPLE + T_FOREGROUND),
        };
        println!(
            "{:<12} 0x{:02X}       {:<10} {}",
            ins.to_string(),
            ins.encode(),
            cycles,
            desc
        );
    }
    println!();
    println!("Background engines: AES = 44/52/60 cycles (key 128/192/256),");
    println!("GHASH digit-serial = {GHASH_CYCLES} cycles (3-bit digits).");
    println!(
        "Fixed-time instructions: {} cycle sampling + {} execute = the paper's 7;",
        T_SAMPLE, T_FOREGROUND
    );
    println!("completion-edge acceptance skips the sampling cycle (the NOP trick).");
}
