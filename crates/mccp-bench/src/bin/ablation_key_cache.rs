//! Ablation — the per-core Key Cache (paper §IV.A).
//!
//! Each Cryptographic Core caches one expanded key schedule. A channel
//! that keeps landing on the same core pays the Key Scheduler exactly
//! once; channels that *alternate* on one core thrash the cache and pay
//! the expansion latency on every packet. This measures both patterns and
//! the cost per miss.

use mccp_core::key::KeyScheduler;
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Mccp, MccpConfig};

/// Runs `n` small packets on a single-core MCCP over the given channels
/// (round-robin) and reports (total cycles, key expansions).
fn run(channels: usize, packets: usize) -> (u64, u64) {
    let mut m = Mccp::new(MccpConfig {
        n_cores: 1,
        ..MccpConfig::default()
    });
    let chans: Vec<_> = (0..channels)
        .map(|i| {
            let key = [i as u8 + 1; 16];
            m.key_memory_mut().store(KeyId(i as u8 + 1), &key);
            m.open(Algorithm::AesGcm128, KeyId(i as u8 + 1)).unwrap()
        })
        .collect();
    let payload = [0xA5u8; 256];
    let start = m.cycle();
    for p in 0..packets {
        let ch = chans[p % channels.max(1)];
        let mut iv = [0u8; 12];
        iv[4..].copy_from_slice(&(p as u64).to_be_bytes());
        m.encrypt_packet(ch, &[], &payload, &iv).unwrap();
    }
    (m.cycle() - start, m.expansions())
}

fn main() {
    println!("Ablation: per-core Key Cache under channel interleaving");
    println!("(single core, 16 x 256-byte GCM-128 packets)\n");
    println!(
        "{:>10} {:>12} {:>12} {:>16}",
        "channels", "cycles", "expansions", "cycles/packet"
    );
    const PACKETS: usize = 16;
    let mut base = 0u64;
    for channels in [1usize, 2, 4] {
        let (cycles, expansions) = run(channels, PACKETS);
        if channels == 1 {
            base = cycles;
        }
        println!(
            "{:>10} {:>12} {:>12} {:>16.1}",
            channels,
            cycles,
            expansions,
            cycles as f64 / PACKETS as f64
        );
        if channels == 1 {
            assert_eq!(expansions, 1, "one channel = one expansion");
        } else {
            // Alternating channels on one core miss every packet.
            assert_eq!(expansions as usize, PACKETS, "thrash = miss per packet");
        }
    }
    let (thrash, _) = run(2, PACKETS);
    let per_miss = (thrash - base) as f64 / (PACKETS - 1) as f64;
    println!(
        "\ncache-miss cost ≈ {per_miss:.0} cycles/packet (AES-128 expansion = {} cycles)",
        KeyScheduler::expansion_cycles(mccp_aes::KeySize::Aes128)
    );
    println!("On a 4-core MCCP the first-idle dispatcher tends to re-land a");
    println!("channel on its previous core, so real workloads mostly hit; the");
    println!("cache is what makes the shared Key Scheduler a non-bottleneck.");
}
