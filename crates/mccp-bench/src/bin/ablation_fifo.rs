//! Ablation — FIFO depth.
//!
//! The paper picks 512 × 32-bit FIFOs ("a packet of 2048 bytes ... is
//! sufficient for most of communication protocols"). This sweep shows what
//! shallower FIFOs cost on a 2 KB GCM-128 packet: once the packet no
//! longer fits, the core stalls on LOAD/STORE against the streaming DMA
//! (one word per cycle), and the 49-cycle loop is throttled.

use mccp_bench::iv_for;
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Mccp, MccpConfig};
use mccp_sim::throughput_mbps;

fn measure(fifo_depth: usize) -> f64 {
    let mut m = Mccp::new(MccpConfig {
        fifo_depth,
        ..MccpConfig::default()
    });
    m.key_memory_mut().store(KeyId(1), &[7u8; 16]);
    let ch = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
    let payload = vec![0xE1u8; 2048];
    // Warm-up (key expansion).
    m.encrypt_packet(ch, &[], &payload, &iv_for(Algorithm::AesGcm128, 0))
        .unwrap();
    let pkt = m
        .encrypt_packet(ch, &[], &payload, &iv_for(Algorithm::AesGcm128, 1))
        .unwrap();
    throughput_mbps(2048 * 8, pkt.cycles)
}

fn main() {
    println!("Ablation: FIFO depth vs 2 KB GCM-128 packet throughput\n");
    println!(
        "{:>12} {:>12} {:>14}",
        "depth (words)", "bytes", "Mbps @190MHz"
    );
    let mut results = Vec::new();
    for depth in [16usize, 32, 64, 128, 256, 512, 1024] {
        let mbps = measure(depth);
        println!("{:>12} {:>12} {:>14.1}", depth, depth * 4, mbps);
        results.push((depth, mbps));
    }
    let lo = results.iter().map(|(_, m)| *m).fold(f64::MAX, f64::min);
    let hi = results.iter().map(|(_, m)| *m).fold(0.0f64, f64::max);
    println!("\nThroughput is flat ({lo:.1}..{hi:.1} Mbps) across all depths: the 32-bit");
    println!("streaming bus (4 B/cycle) outruns the 16 B / 49-cycle consumption rate,");
    println!("so depth never throttles a single stream. The paper's 512-word choice");
    println!("is about *packet containment*, not speed: a whole 2048-byte packet");
    println!("stays resident, which is what makes the wipe-on-auth-failure defense");
    println!("airtight (no plaintext leaves before the tag verdict) and lets the");
    println!("crossbar burst one packet per core without flow control.");
    assert!(
        hi - lo < 0.05 * hi,
        "depth must not affect single-stream throughput"
    );
    // Packets beyond the FIFO run in the (documented) streaming mode that
    // weakens the containment property — the depth buys security, not Mbps.
}
