//! Key-lifecycle benchmark: live rekeying under load, the modeled ECC
//! channel-establishment cost under a flash crowd, and the adversarial
//! traffic plane — on both engines. Emits `BENCH_keylife.json`.
//!
//! Four claims, asserted:
//!
//! - **Rekeying is lossless and epoch-exact.** A standing population
//!   rotates keys every round under load; every admitted packet is
//!   delivered, every delivery's ciphertext matches the software GCM
//!   oracle for *its* epoch's key, and no (channel, IV) pair repeats —
//!   the nonce counter continues across rotations.
//! - **Handshake cost degrades BestEffort before Critical.** A flash
//!   crowd of channel opens, each charged the modeled ECC scalar-mult
//!   budget (arXiv:1401.3421 ratios at 190 MHz), floods a small queue:
//!   BestEffort opens shed, Critical sheds nothing.
//! - **Handshakes overlap with live traffic.** The establishment runs as
//!   a cycle horizon, not a core occupant: traffic makespan with a
//!   pending handshake equals the makespan without one, cycle-exact.
//! - **Every attack is rejected, typed, leak-free.** The seeded
//!   adversary suite (tampering, bit flips, replay, truncation,
//!   extension, stale epochs, forged ids) is 100% rejected on both
//!   engines with zero plaintext released and zero crypto state
//!   disturbed; telemetry exports carry zero key bytes.
//!
//! `--quick` shrinks the counts into a CI smoke that asserts the same
//! invariants without rewriting the BENCH file.
//!
//! ```sh
//! cargo run --release -p mccp-bench --bin bench_keylife [-- --quick]
//! ```

use mccp_aes::modes::gcm_seal;
use mccp_aes::Aes;
use mccp_core::model::ECC_SCALAR_MULT_CYCLES;
use mccp_core::protocol::{Algorithm, MccpError};
use mccp_core::{AdversaryPlan, ChannelBackend, Direction, FunctionalBackend, Mccp, MccpConfig};
use mccp_sdr::{
    run_adversary_suite, AdversaryReport, MccpService, QosClass, ServiceConfig, ServiceError,
    Standard,
};
use std::collections::HashSet;

const AAD: &[u8] = b"keylife";

struct RekeyResult {
    submitted: u64,
    delivered: u64,
    rekeys: u64,
    nonce_reuse: u64,
    oracle_failures: u64,
}

/// Per-channel, per-epoch session key (deterministic so the oracle can
/// reconstruct the rotation history from a delivery's epoch tag).
fn session_key(chan: usize, epoch: u32) -> Vec<u8> {
    (0..16)
        .map(|b| (chan as u8).wrapping_mul(29) ^ (epoch as u8).wrapping_mul(113) ^ (b as u8) ^ 0x5C)
        .collect()
}

fn payload_for(chan: usize, round: usize, p: usize) -> Vec<u8> {
    vec![(chan as u8) ^ (round as u8).wrapping_mul(17) ^ (p as u8); 96]
}

/// Rekey-under-load on one engine through the service plane: `channels`
/// Wimax (AES-GCM-128) sessions, `rounds` rotations, `pkts` packets per
/// channel per round, oracle-verified per epoch.
fn rekey_under_load<B: ChannelBackend>(
    mk: impl Fn() -> B,
    channels: usize,
    rounds: usize,
    pkts: usize,
) -> RekeyResult {
    let mut svc = MccpService::new(
        ServiceConfig {
            shards: 2,
            queue_capacity: 1024,
            drain_budget: 32,
            warm_set_capacity: 32,
            step_bound: 200_000,
            ..ServiceConfig::default()
        },
        |_| mk(),
    );
    let ids: Vec<_> = (0..channels)
        .map(|i| svc.open(Standard::Wimax, &session_key(i, 0)).expect("open"))
        .collect();

    let mut seen_ivs: HashSet<(u64, Vec<u8>)> = HashSet::new();
    let mut r = RekeyResult {
        submitted: 0,
        delivered: 0,
        rekeys: 0,
        nonce_reuse: 0,
        oracle_failures: 0,
    };
    let settle =
        |out: Vec<mccp_sdr::Delivery>, seen: &mut HashSet<(u64, Vec<u8>)>, r: &mut RekeyResult| {
            for d in out {
                assert!(d.auth_ok, "service traffic never forges");
                let chan = (d.user_tag >> 32) as usize;
                let round = ((d.user_tag >> 16) & 0xFFFF) as usize;
                let p = (d.user_tag & 0xFFFF) as usize;
                assert_eq!(
                    d.epoch as usize, round,
                    "FIFO rekey boundary is epoch-exact"
                );
                if !seen.insert((d.channel.0, d.iv.clone())) {
                    r.nonce_reuse += 1;
                }
                // The ciphertext must match the software oracle under the
                // key of the epoch the delivery is tagged with.
                let key = session_key(chan, d.epoch);
                let sealed = gcm_seal(
                    &Aes::new(&key),
                    &d.iv,
                    AAD,
                    &payload_for(chan, round, p),
                    16,
                )
                .expect("oracle");
                let n = d.body.len();
                if sealed[..n] != d.body[..] || sealed[n..] != d.tag[..] {
                    r.oracle_failures += 1;
                }
                r.delivered += 1;
            }
        };
    for round in 0..rounds {
        for (i, id) in ids.iter().enumerate() {
            for p in 0..pkts {
                let tag = ((i as u64) << 32) | ((round as u64) << 16) | p as u64;
                svc.submit(*id, AAD, &payload_for(i, round, p), tag)
                    .expect("submit");
                r.submitted += 1;
            }
            if i % 8 == 7 {
                let out = svc.pump();
                settle(out, &mut seen_ivs, &mut r);
            }
        }
        if round + 1 < rounds {
            for (i, id) in ids.iter().enumerate() {
                svc.rekey(*id, &session_key(i, round as u32 + 1))
                    .expect("rekey");
            }
        }
    }
    let out = svc.quiesce(10_000);
    settle(out, &mut seen_ivs, &mut r);
    r.rekeys = svc.counters().rekeys;

    assert_eq!(r.delivered, r.submitted, "live rekeying drops nothing");
    assert_eq!(r.rekeys, (channels * (rounds - 1)) as u64);
    assert_eq!(r.nonce_reuse, 0, "nonce counters continue across rekeys");
    assert_eq!(r.oracle_failures, 0, "every epoch's ciphertext is exact");
    r
}

struct FlashCrowdResult {
    offered: u64,
    opened: u64,
    sheds: [u64; 3],
    handshakes: u64,
}

/// A flash crowd of BestEffort opens against one shard with the modeled
/// ECC establishment enabled: admission must shed BestEffort at the
/// watermark while Critical opens ride through the same full queue.
fn handshake_flash_crowd(crowd: usize, critical: usize) -> FlashCrowdResult {
    let mut svc: MccpService<FunctionalBackend> = MccpService::new(
        ServiceConfig {
            shards: 1,
            queue_capacity: 10,
            drain_budget: 4,
            warm_set_capacity: 32,
            step_bound: 200_000,
            handshake_cycles: Some(ECC_SCALAR_MULT_CYCLES),
            ..ServiceConfig::default()
        },
        |_| FunctionalBackend::new(),
    );
    let mut opened = 0u64;
    for i in 0..crowd {
        match svc.open(Standard::Umts, &[(i % 250) as u8 + 1; 16]) {
            Ok(_) => opened += 1,
            Err(ServiceError::Busy { .. }) => {}
            Err(e) => panic!("crowd open: {e:?}"),
        }
        // Drain occasionally so part of the crowd establishes — the
        // burst still outruns the handshake drain rate.
        if i % 8 == 7 {
            svc.pump();
        }
    }
    // Critical voice establishes through the same pressure, unshed.
    for i in 0..critical {
        svc.open(Standard::SecureVoice, &[(i + 1) as u8; 32])
            .expect("Critical opens are never shed by the crowd");
        opened += 1;
    }
    svc.quiesce(10_000);
    let c = svc.counters();
    let sheds = [
        c.classes[QosClass::Critical.index()].shed,
        c.classes[QosClass::Standard.index()].shed,
        c.classes[QosClass::BestEffort.index()].shed,
    ];
    assert!(sheds[2] > 0, "the crowd must hit the BestEffort watermark");
    assert_eq!(sheds[0], 0, "Critical sheds nothing during the crowd");
    assert_eq!(c.handshake_sheds, sheds[0] + sheds[1] + sheds[2]);
    assert_eq!(c.handshakes, opened, "every admitted open establishes");
    FlashCrowdResult {
        offered: crowd as u64 + critical as u64,
        opened,
        sheds,
        handshakes: c.handshakes,
    }
}

struct OverlapResult {
    traffic_makespan: u64,
    traffic_makespan_with_handshake: u64,
    total_with_handshake: u64,
    hidden_cycles: u64,
}

fn run_one_packet(m: &mut Mccp, ch: mccp_core::protocol::ChannelId, iv: &[u8], body: &[u8]) {
    let req = loop {
        match m.submit_packet(ch, Direction::Encrypt, iv, AAD, body, None) {
            Ok(r) => break r,
            Err(MccpError::NoResource | MccpError::HandshakePending) => {
                m.step(4096);
            }
            Err(e) => panic!("submit: {e:?}"),
        }
    };
    loop {
        if let Some(c) = m.poll_completion() {
            assert_eq!(c.request, req);
            assert!(c.auth_ok);
            return;
        }
        m.step(4096);
    }
}

/// Measures the cycle-exact traffic makespan with and without a pending
/// ECC handshake on the same engine. The handshake is a cycle horizon on
/// the asymmetric unit — it must not occupy a crypto core, so the two
/// makespans are identical and the handshake cost is fully hidden behind
/// live traffic.
fn handshake_overlap(packets: usize) -> OverlapResult {
    let body = vec![0x6Bu8; 1024];
    let run = |with_handshake: bool| -> (u64, u64) {
        let mut m = Mccp::new(MccpConfig::default());
        let live = m
            .open_channel(Algorithm::AesGcm128, &[0x31; 16], 16)
            .unwrap();
        let pending = with_handshake.then(|| {
            m.open_channel_handshake(
                Algorithm::AesGcm128,
                &[0x32; 16],
                16,
                ECC_SCALAR_MULT_CYCLES,
            )
            .unwrap()
        });
        for i in 0..packets {
            let iv = [i as u8 + 1; 12];
            run_one_packet(&mut m, live, &iv, &body);
        }
        let traffic_done = m.now();
        let mut total = traffic_done;
        if let Some(p) = pending {
            run_one_packet(&mut m, p, &[0xEE; 12], &body);
            total = m.now();
        }
        (traffic_done, total)
    };
    let (without, _) = run(false);
    let (with, total) = run(true);
    assert_eq!(
        with, without,
        "a pending handshake must not slow live traffic by a single cycle"
    );
    assert!(
        total < without + ECC_SCALAR_MULT_CYCLES,
        "the handshake window must overlap traffic ({total} >= {without} + {ECC_SCALAR_MULT_CYCLES})"
    );
    OverlapResult {
        traffic_makespan: without,
        traffic_makespan_with_handshake: with,
        total_with_handshake: total,
        hidden_cycles: (without + ECC_SCALAR_MULT_CYCLES).saturating_sub(total),
    }
}

fn adversary_on<B: ChannelBackend>(mut backend: B, seed: u64, attacks: usize) -> AdversaryReport {
    let plan = AdversaryPlan::random(seed, attacks);
    let report = run_adversary_suite(&mut backend, &plan);
    assert!(
        report.contract_holds(),
        "adversary contract violated: {report:?}"
    );
    assert_eq!(report.attacks, attacks as u64);
    for (label, driven, rejected) in &report.per_kind {
        assert_eq!(driven, rejected, "{label}: every driven attack rejected");
    }
    report
}

/// Key-byte scan over every telemetry exporter output after a keyed,
/// rekeyed workload (same needle forms as `tests/key_leak.rs`).
fn key_leak_scan() -> (usize, u64) {
    let key0: [u8; 16] = [
        0xD3, 0xAD, 0xC0, 0xDE, 0xFA, 0xCE, 0xB0, 0x0C, 0x8B, 0xAD, 0xF0, 0x0D, 0xDE, 0xFE, 0xC8,
        0xED,
    ];
    let key1: [u8; 16] = [
        0xCA, 0xFE, 0xD0, 0x0D, 0xBE, 0xEF, 0xFE, 0xED, 0xAB, 0xAD, 0x1D, 0xEA, 0x5E, 0xCF, 0xAC,
        0xE5,
    ];
    let mut m = Mccp::new(MccpConfig::default());
    m.enable_telemetry(4096);
    let ch = m.open_channel(Algorithm::AesGcm128, &key0, 16).unwrap();
    let body = vec![0x7Eu8; 512];
    run_one_packet(&mut m, ch, &[1u8; 12], &body);
    assert_eq!(m.rekey_channel(ch, &key1).unwrap(), 1);
    run_one_packet(&mut m, ch, &[2u8; 12], &body);

    let events = m.telemetry_mut().take_events();
    let snapshot = m.telemetry_snapshot();
    let vcd = mccp_telemetry::vcd_bridge::spans_to_vcd(
        "mccp_telemetry",
        mccp_sim::CLOCK_HZ,
        m.telemetry().spans().spans(),
        1,
    );
    let exports = [
        mccp_telemetry::export::json_lines(&events),
        mccp_telemetry::export::prometheus_text(&snapshot),
        mccp_telemetry::export::utilization_report(&snapshot),
        vcd.render(),
    ];
    let mut occurrences = 0u64;
    for key in [&key0, &key1] {
        let lower: Vec<String> = key.iter().map(|b| format!("{b:02x}")).collect();
        let dec: Vec<String> = key.iter().map(|b| b.to_string()).collect();
        for needle in [
            lower.concat(),
            lower.join(" "),
            lower.join(", "),
            dec.join(", "),
        ] {
            for text in &exports {
                occurrences += text.to_lowercase().matches(&needle).count() as u64;
            }
        }
    }
    assert_eq!(occurrences, 0, "key bytes leaked into a telemetry export");
    (exports.len(), occurrences)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (channels, rounds, pkts, crowd, critical, overlap_pkts, attacks) = if quick {
        (8, 3, 2, 24, 2, 8, 14)
    } else {
        (32, 5, 4, 96, 4, 24, 42)
    };
    println!(
        "bench_keylife{}: rekey-under-load ({channels} ch x {rounds} rounds x {pkts} pkts, \
         both engines) + handshake flash crowd ({crowd} opens) + overlap ({overlap_pkts} pkts) \
         + adversary suite ({attacks} attacks, both engines)",
        if quick { " (--quick)" } else { "" }
    );

    let rk_cycle = rekey_under_load(
        || {
            let mut m = Mccp::new(MccpConfig::default());
            m.set_fast_forward(true);
            m
        },
        channels,
        rounds,
        pkts,
    );
    let rk_func = rekey_under_load(FunctionalBackend::new, channels, rounds, pkts);
    println!(
        "  rekey under load: cycle {} / {} delivered ({} rekeys), functional {} / {} \
         ({} rekeys); 0 nonce reuse, 0 oracle mismatches on either",
        rk_cycle.delivered,
        rk_cycle.submitted,
        rk_cycle.rekeys,
        rk_func.delivered,
        rk_func.submitted,
        rk_func.rekeys
    );

    let fc = handshake_flash_crowd(crowd, critical);
    println!(
        "  flash crowd: {} opens offered, {} established; sheds \
         critical/standard/best-effort = {}/{}/{}",
        fc.offered, fc.opened, fc.sheds[0], fc.sheds[1], fc.sheds[2]
    );

    let ov = handshake_overlap(overlap_pkts);
    println!(
        "  overlap: traffic makespan {} cycles with and without a pending handshake \
         (cycle-exact); {} of the {} handshake cycles hidden behind traffic",
        ov.traffic_makespan, ov.hidden_cycles, ECC_SCALAR_MULT_CYCLES
    );

    let adv_cycle = adversary_on(Mccp::new(MccpConfig::default()), 0xAD5E_ED0F, attacks);
    let adv_func = adversary_on(FunctionalBackend::new(), 0xAD5E_ED10, attacks);
    println!(
        "  adversary: cycle {}/{} rejected ({} auth, {} typed, {} replay), \
         functional {}/{} rejected; 0 plaintext leaks, 0 nonces burned",
        adv_cycle.rejected,
        adv_cycle.attacks,
        adv_cycle.auth_failures,
        adv_cycle.typed_errors,
        adv_cycle.replay_blocks,
        adv_func.rejected,
        adv_func.attacks
    );

    let (scanned, leak_occurrences) = key_leak_scan();
    println!("  key-leak scan: {scanned} exports scanned, {leak_occurrences} occurrences");

    if quick {
        println!(
            "bench_keylife --quick PASSED: 0 dropped / 0 nonce reuse on both engines, \
             0 Critical sheds under the flash crowd, {}/{} + {}/{} attacks rejected typed, \
             0 plaintext leaks, 0 key-byte leaks (BENCH_keylife.json not rewritten)",
            adv_cycle.rejected, adv_cycle.attacks, adv_func.rejected, adv_func.attacks
        );
        return;
    }

    let per_kind: Vec<String> = adv_func
        .per_kind
        .iter()
        .map(|(label, driven, rejected)| {
            format!("{{\"kind\": \"{label}\", \"driven\": {driven}, \"rejected\": {rejected}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"keylife\",\n  \
         \"host_parallelism\": {},\n  \
         \"handshake_model\": {{\"ecc_scalar_mult_cycles\": {ECC_SCALAR_MULT_CYCLES}, \
         \"source\": \"arXiv:1401.3421 GF(2^163) point-mult ratio at 190 MHz\"}},\n  \
         \"rekey_under_load\": {{\
         \"channels\": {channels}, \"rounds\": {rounds}, \"pkts_per_round\": {pkts}, \
         \"cycle\": {{\"submitted\": {}, \"delivered\": {}, \"rekeys\": {}, \
         \"nonce_reuse\": {}, \"oracle_failures\": {}}}, \
         \"functional\": {{\"submitted\": {}, \"delivered\": {}, \"rekeys\": {}, \
         \"nonce_reuse\": {}, \"oracle_failures\": {}}}}},\n  \
         \"handshake_flash_crowd\": {{\"offered\": {}, \"opened\": {}, \
         \"sheds\": {{\"critical\": {}, \"standard\": {}, \"best_effort\": {}}}, \
         \"handshakes_completed\": {}}},\n  \
         \"handshake_overlap\": {{\"traffic_makespan_cycles\": {}, \
         \"traffic_makespan_with_pending_handshake_cycles\": {}, \
         \"total_with_handshake_cycles\": {}, \"hidden_cycles\": {}}},\n  \
         \"adversarial\": {{\
         \"cycle\": {{\"attacks\": {}, \"rejected\": {}, \"auth_failures\": {}, \
         \"typed_errors\": {}, \"replay_blocks\": {}, \"plaintext_leaks\": {}, \
         \"nonces_burned\": {}}}, \
         \"functional\": {{\"attacks\": {}, \"rejected\": {}, \"auth_failures\": {}, \
         \"typed_errors\": {}, \"replay_blocks\": {}, \"plaintext_leaks\": {}, \
         \"nonces_burned\": {}}}, \
         \"per_kind\": [{}]}},\n  \
         \"key_leak_scan\": {{\"exports_scanned\": {scanned}, \"occurrences\": {leak_occurrences}}},\n  \
         \"contract\": {{\"zero_dropped_packets\": true, \"zero_nonce_reuse\": true, \
         \"zero_critical_sheds_flash_crowd\": true, \"attacks_rejected_pct\": 100, \
         \"zero_plaintext_leaks\": true, \"zero_key_leak_occurrences\": true}},\n  \
         \"note\": \"rekeys are FIFO markers, so the queue position of a rotation is the \
         epoch boundary; in-flight packets finish on their submit epoch and the retired key \
         is zeroized at the transfer boundary once its last packet drains; the handshake is \
         a ready_at horizon on the asymmetric unit, never a core occupant\"\n}}\n",
        mccp_sdr::host_parallelism(),
        rk_cycle.submitted,
        rk_cycle.delivered,
        rk_cycle.rekeys,
        rk_cycle.nonce_reuse,
        rk_cycle.oracle_failures,
        rk_func.submitted,
        rk_func.delivered,
        rk_func.rekeys,
        rk_func.nonce_reuse,
        rk_func.oracle_failures,
        fc.offered,
        fc.opened,
        fc.sheds[0],
        fc.sheds[1],
        fc.sheds[2],
        fc.handshakes,
        ov.traffic_makespan,
        ov.traffic_makespan_with_handshake,
        ov.total_with_handshake,
        ov.hidden_cycles,
        adv_cycle.attacks,
        adv_cycle.rejected,
        adv_cycle.auth_failures,
        adv_cycle.typed_errors,
        adv_cycle.replay_blocks,
        adv_cycle.plaintext_leaks,
        adv_cycle.nonces_burned,
        adv_func.attacks,
        adv_func.rejected,
        adv_func.auth_failures,
        adv_func.typed_errors,
        adv_func.replay_blocks,
        adv_func.plaintext_leaks,
        adv_func.nonces_burned,
        per_kind.join(", "),
    );
    std::fs::write("BENCH_keylife.json", &json).expect("write BENCH_keylife.json");
    print!("{json}");
    println!(
        "bench_keylife PASSED: 0 dropped / 0 nonce reuse across {} rotations per engine, \
         0 Critical sheds, 100% of {} attacks rejected typed on each engine, 0 leaks",
        rk_cycle.rekeys, adv_cycle.attacks
    );
}
