//! # mccp-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (see `DESIGN.md`'s experiment index):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1_isa` | Table I — the Cryptographic Unit ISA with timing |
//! | `loop_cycles` | §VII loop-cycle equations (49 / 55 / 104, +8/+16) |
//! | `table2_throughput` | Table II — throughput grid, paper vs measured |
//! | `table3_comparison` | Table III — architecture comparison |
//! | `table4_reconfig` | Table IV — partial reconfiguration |
//! | `architecture_report` | Figs 1–3 — component inventory + area budget |
//! | `fig_packet_sweep` | derived: throughput vs packet size |
//! | `fig_latency_tradeoff` | derived: CCM 4×1 vs 2×2 latency/throughput |
//! | `fig_core_scaling` | derived: throughput vs core count |
//! | `ablation_overlap` | ablation: background start/finalize vs blocking |
//! | `ablation_nop` | ablation: completion-edge acceptance (NOP trick) |
//! | `ablation_fifo` | ablation: FIFO depth sweep |
//! | `bench_snapshot` | `BENCH_sim_speed.json` — per-tick vs fast-forward |
//! | `bench_cluster` | `BENCH_cluster.json` — 1/2/4/8-shard scaling curve |
//! | `soak` | duplex verification soak (`--engine cycle\|functional`) |
//!
//! Criterion benches under `benches/` measure wall-clock throughput of the
//! functional mode, the reference primitives and the simulator itself.

use mccp_aes::KeySize;
use mccp_core::model::Schedule;
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Direction, Mccp, MccpConfig};
use mccp_sim::throughput_mbps;

/// Measured throughput/latency for one Table II cell.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Aggregate throughput, Mbps at 190 MHz.
    pub mbps: f64,
    /// Per-packet latency in cycles.
    pub latency_cycles: u64,
}

/// Algorithm for a (schedule, key) pair.
fn algorithm_for(schedule: Schedule, key: KeySize) -> Algorithm {
    use Schedule::*;
    match (schedule, key) {
        (Gcm1Core | Gcm4x1, KeySize::Aes128) => Algorithm::AesGcm128,
        (Gcm1Core | Gcm4x1, KeySize::Aes192) => Algorithm::AesGcm192,
        (Gcm1Core | Gcm4x1, KeySize::Aes256) => Algorithm::AesGcm256,
        (_, KeySize::Aes128) => Algorithm::AesCcm128,
        (_, KeySize::Aes192) => Algorithm::AesCcm192,
        (_, KeySize::Aes256) => Algorithm::AesCcm256,
    }
}

/// Runs `streams` concurrent packets of `packet_bytes` each through a
/// 4-core cycle-accurate MCCP and reports aggregate throughput and the
/// per-packet latency. `two_core` selects the paired-CCM schedule.
pub fn measure_schedule(schedule: Schedule, key: KeySize, packet_bytes: usize) -> Measured {
    let two_core = matches!(schedule, Schedule::Ccm2Core | Schedule::Ccm2x2);
    let streams = schedule.streams() as usize;

    // Oversize packets (sweep experiments) run in streaming mode.
    let mut m = Mccp::new(MccpConfig {
        ccm_two_core: two_core,
        ..MccpConfig::default()
    });

    let key_bytes: Vec<u8> = (0..key.key_bytes() as u8).collect();
    m.key_memory_mut().store(KeyId(1), &key_bytes);
    let alg = algorithm_for(schedule, key);
    let ch = m.open_with_tag_len(alg, KeyId(1), 16).unwrap();

    // Warm the key caches (Table II assumes a running channel, not a
    // cold-start key expansion).
    let payload = vec![0xA5u8; packet_bytes];
    let warm = m
        .submit(ch, Direction::Encrypt, &iv_for(alg, 0), &[], &payload, None)
        .unwrap();
    m.run_until_done(warm, 1_000_000_000);
    m.retrieve(warm).unwrap();
    m.transfer_done(warm).unwrap();

    let start = m.cycle();
    let ids: Vec<_> = (0..streams)
        .map(|i| {
            m.submit(
                ch,
                Direction::Encrypt,
                &iv_for(alg, i as u64 + 1),
                &[],
                &payload,
                None,
            )
            .expect("stream fits")
        })
        .collect();
    m.run_to_completion(1_000_000_000);
    let latency = ids
        .iter()
        .map(|&id| m.request_cycles(id).expect("done"))
        .max()
        .unwrap_or(0);
    let total_cycles = m.cycle() - start;
    for &id in &ids {
        m.retrieve(id).unwrap();
        m.transfer_done(id).unwrap();
    }
    let bits = (packet_bytes * streams) as u64 * 8;
    Measured {
        mbps: throughput_mbps(bits, total_cycles),
        latency_cycles: latency,
    }
}

/// Deterministic IV/nonce of the right length for an algorithm.
pub fn iv_for(alg: Algorithm, i: u64) -> Vec<u8> {
    use mccp_core::protocol::Mode;
    match alg.mode() {
        Mode::Gcm => {
            let mut iv = vec![0u8; 12];
            iv[4..].copy_from_slice(&i.to_be_bytes());
            iv
        }
        Mode::Ccm => {
            let mut iv = vec![0u8; 12];
            iv[4..].copy_from_slice(&i.to_be_bytes());
            iv
        }
        Mode::Ctr => {
            let mut iv = vec![0u8; 16];
            iv[4..12].copy_from_slice(&i.to_be_bytes());
            iv
        }
        Mode::CbcMac => Vec::new(),
    }
}

/// Prints a markdown-ish table row.
pub fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcm_single_core_measures_near_model() {
        let m = measure_schedule(Schedule::Gcm1Core, KeySize::Aes128, 2048);
        // Theoretical bound 496 Mbps; paper measured 437 with their
        // firmware overhead; ours must land between 400 and 496.
        assert!(m.mbps > 400.0 && m.mbps < 497.0, "got {}", m.mbps);
    }

    #[test]
    fn four_streams_scale() {
        let one = measure_schedule(Schedule::Gcm1Core, KeySize::Aes128, 1024);
        let four = measure_schedule(Schedule::Gcm4x1, KeySize::Aes128, 1024);
        assert!(
            four.mbps > 3.5 * one.mbps,
            "one={}, four={}",
            one.mbps,
            four.mbps
        );
    }
}
