//! Criterion benchmark of the cycle-accurate simulator itself: wall-clock
//! cost of simulating one 2 KB packet (≈7k modeled cycles across four
//! cores, a PicoBlaze and a Cryptographic Unit each) — the "how slow is
//! the simulation" number a user sizing experiments needs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mccp_core::protocol::{Algorithm, KeyId};
use mccp_core::{Mccp, MccpConfig};

fn bench_simulated_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle-accurate-sim");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(2048));
    g.bench_function("gcm128-2kb-packet", |b| {
        let mut m = Mccp::new(MccpConfig::default());
        m.key_memory_mut().store(KeyId(1), &[7u8; 16]);
        let ch = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
        let payload = vec![0u8; 2048];
        let mut ctr = 0u64;
        b.iter(|| {
            ctr += 1;
            let mut iv = [0u8; 12];
            iv[4..].copy_from_slice(&ctr.to_be_bytes());
            m.encrypt_packet(ch, &[], &payload, &iv).unwrap()
        });
    });
    g.bench_function("ccm128-2kb-packet", |b| {
        let mut m = Mccp::new(MccpConfig::default());
        m.key_memory_mut().store(KeyId(1), &[7u8; 16]);
        let ch = m
            .open_with_tag_len(Algorithm::AesCcm128, KeyId(1), 8)
            .unwrap();
        let payload = vec![0u8; 2048];
        let mut ctr = 0u64;
        b.iter(|| {
            ctr += 1;
            let mut iv = [0u8; 12];
            iv[4..].copy_from_slice(&ctr.to_be_bytes());
            m.encrypt_packet(ch, &[], &payload, &iv).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_simulated_packet);
criterion_main!(benches);
