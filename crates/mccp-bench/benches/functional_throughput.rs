//! Criterion benchmark W-1: wall-clock throughput of the functional
//! (thread-parallel) MCCP over core counts — the multi-core claim on real
//! silicon (this host) rather than the modeled 190 MHz clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mccp_core::functional::{PacketJob, ParallelMccp};
use mccp_core::protocol::Algorithm;
use mccp_core::Direction;

fn jobs(n: usize, payload: usize) -> Vec<PacketJob> {
    (0..n as u64)
        .map(|id| PacketJob {
            id,
            algorithm: Algorithm::AesGcm128,
            direction: Direction::Encrypt,
            key: vec![7u8; 16],
            iv: {
                let mut iv = vec![0u8; 12];
                iv[4..].copy_from_slice(&id.to_be_bytes());
                iv
            },
            aad: vec![0u8; 12],
            body: vec![0xA5u8; payload],
            tag: None,
            tag_len: 16,
        })
        .collect()
}

fn bench_core_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional-gcm-2kb");
    const PACKETS: usize = 64;
    const PAYLOAD: usize = 2048;
    g.throughput(Throughput::Bytes((PACKETS * PAYLOAD) as u64));
    g.sample_size(10);
    for cores in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &n| {
            let mccp = ParallelMccp::new(n);
            b.iter(|| {
                let out = mccp.process_batch(jobs(PACKETS, PAYLOAD));
                assert_eq!(out.len(), PACKETS);
            });
        });
    }
    g.finish();
}

fn bench_mixed_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional-multi-standard");
    const PACKETS: usize = 48;
    g.throughput(Throughput::Bytes((PACKETS * 1024) as u64));
    g.sample_size(10);
    let mccp = ParallelMccp::new(4);
    g.bench_function("gcm+ccm+ctr-mix", |b| {
        b.iter(|| {
            let mut batch = jobs(PACKETS, 1024);
            for (i, j) in batch.iter_mut().enumerate() {
                match i % 3 {
                    0 => {}
                    1 => {
                        j.algorithm = Algorithm::AesCcm128;
                        j.iv.truncate(11);
                        j.tag_len = 8;
                    }
                    _ => {
                        j.algorithm = Algorithm::AesCtr128;
                        j.iv = vec![0u8; 16];
                        j.tag_len = 0;
                    }
                }
            }
            let out = mccp.process_batch(batch);
            assert!(out.iter().all(|o| o.result.is_ok()));
        });
    });
    g.finish();
}

criterion_group!(benches, bench_core_scaling, bench_mixed_modes);
criterion_main!(benches);
