//! Criterion wall-clock benchmarks of the cryptographic substrates: the
//! block ciphers, GHASH, and the full reference modes on 2 KB packets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mccp_aes::modes::{ccm_seal, gcm_seal, CcmParams};
use mccp_aes::twofish::Twofish;
use mccp_aes::whirlpool::whirlpool;
use mccp_aes::{Aes, BlockCipher128};
use mccp_gf128::digit_serial::DigitSerialMultiplier;
use mccp_gf128::{ghash, Gf128, GhashKey};

fn bench_block_ciphers(c: &mut Criterion) {
    let mut g = c.benchmark_group("block-ciphers");
    g.throughput(Throughput::Bytes(16));
    let aes128 = Aes::new_128(&[7u8; 16]);
    let aes256 = Aes::new_256(&[7u8; 32]);
    let twofish = Twofish::new(&[7u8; 16]);
    g.bench_function("aes128-encrypt-block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes128.encrypt_block(&mut block));
    });
    g.bench_function("aes256-encrypt-block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| aes256.encrypt_block(&mut block));
    });
    g.bench_function("twofish128-encrypt-block", |b| {
        let mut block = [0u8; 16];
        b.iter(|| twofish.encrypt_block(&mut block));
    });
    g.finish();
}

fn bench_ghash(c: &mut Criterion) {
    let mut g = c.benchmark_group("ghash");
    let h = Gf128(0x66e9_4bd4_ef8a_2c3b_884c_fa59_ca34_2b2e);
    let key = GhashKey::new(h);
    let digit = DigitSerialMultiplier::new(h);
    let data = vec![0xA5u8; 2048];
    g.throughput(Throughput::Bytes(2048));
    g.bench_function("ghash-2kb-table", |b| {
        b.iter(|| ghash(&key, &[], &data));
    });
    g.throughput(Throughput::Bytes(16));
    g.bench_function("gf128-mul-table", |b| {
        b.iter(|| key.mul_h(Gf128(0x1234_5678_9abc_def0_0fed_cba9_8765_4321)));
    });
    g.bench_function("gf128-mul-digit-serial-model", |b| {
        b.iter(|| digit.mul(Gf128(0x1234_5678_9abc_def0_0fed_cba9_8765_4321)));
    });
    g.finish();
}

fn bench_modes_2kb(c: &mut Criterion) {
    let mut g = c.benchmark_group("modes-2kb");
    g.throughput(Throughput::Bytes(2048));
    let aes = Aes::new_128(&[3u8; 16]);
    let payload = vec![0xC3u8; 2048];
    g.bench_function("gcm-seal", |b| {
        b.iter(|| gcm_seal(&aes, &[1u8; 12], b"hdr", &payload, 16).unwrap());
    });
    g.bench_function("ccm-seal", |b| {
        let params = CcmParams {
            nonce_len: 12,
            tag_len: 8,
        };
        b.iter(|| ccm_seal(&aes, &params, &[1u8; 12], b"hdr", &payload).unwrap());
    });
    g.bench_function("whirlpool", |b| {
        b.iter(|| whirlpool(&payload));
    });
    g.finish();
}

fn bench_key_schedule(c: &mut Criterion) {
    let mut g = c.benchmark_group("key-schedule");
    g.bench_function("aes128-expand", |b| {
        b.iter_batched(
            || [7u8; 16],
            |k| mccp_aes::key_schedule::RoundKeys::expand(&k),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("aes256-expand", |b| {
        b.iter_batched(
            || [7u8; 32],
            |k| mccp_aes::key_schedule::RoundKeys::expand(&k),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_block_ciphers,
    bench_ghash,
    bench_modes_2kb,
    bench_key_schedule
);
criterion_main!(benches);
