//! # MCCP — Reconfigurable Multi-core Cryptoprocessor (reproduction)
//!
//! Umbrella crate re-exporting every component of the reproduction of
//! Grand et al., *"A Reconfigurable Multi-core Cryptoprocessor for
//! Multi-channel Communication Systems"* (IPDPS 2011).
//!
//! The sub-crates, bottom-up:
//!
//! * [`aes`] — from-scratch AES-128/192/256 plus the block-cipher modes the
//!   MCCP supports (CTR, CBC-MAC, CCM, GCM), Whirlpool and Twofish for the
//!   reconfiguration story, and NIST test vectors.
//! * [`gf128`] — GF(2^128) arithmetic, GHASH, and the digit-serial multiplier
//!   cycle model used by the hardware GHASH core.
//! * [`sim`] — the hardware-simulation substrate: clocked components, FIFOs,
//!   BRAM, and FPGA resource accounting (slices / BRAMs on a Virtex-4 SX35).
//! * [`picoblaze`] — a PicoBlaze (KCPSM3)-compatible 8-bit controller:
//!   assembler, disassembler and cycle-accurate simulator.
//! * [`cryptounit`] — the paper's Cryptographic Unit: bank register, decoder,
//!   and the AES / GHASH / XOR / INC / I/O processing cores with the paper's
//!   background start/finalize timing contract.
//! * [`core`] — the MCCP itself: task scheduler, crossbar, key scheduler,
//!   cryptographic cores, control protocol, mode firmware, the analytical
//!   performance model, partial reconfiguration, and a fast thread-parallel
//!   functional mode.
//! * [`sdr`] — the communication-controller substrate: channel profiles,
//!   NIST-conformant packet formatting, and multi-channel workload generation.
//! * [`telemetry`] — typed cycle-domain events, per-core/per-channel metrics,
//!   request spans, and exporters (JSON-lines, Prometheus text, utilization
//!   reports, VCD) shared by the simulator and the benchmark harness.
//! * [`baselines`] — comparison architectures (mono-core, tightly coupled
//!   dual-core CCM, fully pipelined GCM) and literature reference points.
//!
//! ## Quickstart
//!
//! ```
//! use mccp::core::{Mccp, MccpConfig};
//! use mccp::core::protocol::{Algorithm, KeyId};
//!
//! // Build a 4-core MCCP, load a session key, open a GCM channel and
//! // encrypt one packet.
//! let mut mccp = Mccp::new(MccpConfig::default());
//! mccp.key_memory_mut().store(KeyId(1), &[0u8; 16]);
//! let chan = mccp.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
//! let packet = mccp.encrypt_packet(chan, b"header", b"payload-bytes", &[0x42; 12]).unwrap();
//! assert_eq!(packet.ciphertext.len(), b"payload-bytes".len());
//! mccp.close(chan).unwrap();
//! ```

pub use mccp_aes as aes;
pub use mccp_baselines as baselines;
pub use mccp_core as core;
pub use mccp_cryptounit as cryptounit;
pub use mccp_gf128 as gf128;
pub use mccp_picoblaze as picoblaze;
pub use mccp_sdr as sdr;
pub use mccp_sim as sim;
pub use mccp_telemetry as telemetry;
