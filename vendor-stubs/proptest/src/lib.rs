//! Offline stand-in for the `proptest` crate.
//!
//! Reimplements the subset of proptest this workspace's property tests
//! use: the `proptest!`, `prop_oneof!`, `prop_assert*!` and
//! `prop_assume!` macros, value-generating strategies (`any`, ranges,
//! tuples, `Just`, `prop_map`, `collection::vec`, `array::uniform16`),
//! and a deterministic per-test RNG. Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   the assertion message) but is not minimized.
//! * **Deterministic seeds.** Each test's RNG is seeded from its name, so
//!   a run explores the same cases every time — reproducible in CI by
//!   construction.
//! * 64 cases per property (real proptest defaults to 256), keeping the
//!   heavier simulator properties fast in debug test runs.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*!` failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: try another case.
        Reject,
    }

    /// Runner configuration (field-compatible with the real crate's
    /// commonly-set options).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                failure_persistence: None,
            }
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the test name, then splitmix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut state = h;
            let mut word = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [word(), word(), word(), word()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values. Unlike real proptest there is no
    /// value tree and no shrinking: a strategy is just a deterministic
    /// function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased generator used by `prop_oneof!` arms.
    pub type BoxedGen<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Erases a strategy into a boxed generator function.
    pub fn into_gen<S>(strategy: S) -> BoxedGen<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| strategy.generate(rng))
    }

    /// Weighted choice between alternative strategies of one value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedGen<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedGen<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, gen) in &self.arms {
                if pick < *weight as u64 {
                    return gen(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("pick exceeds total weight");
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Strategy produced by [`super::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<fn() -> T>,
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Generates `Vec`s whose length falls in the size window.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Generates fixed-size arrays from one element strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )+};
    }

    uniform_ctor! {
        uniform4 => 4,
        uniform8 => 8,
        uniform12 => 12,
        uniform16 => 16,
        uniform32 => 32,
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each property over `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 * (config.cases + 1),
                            "property {} rejected too many cases via prop_assume!",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            passed,
                            message,
                        );
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::into_gen($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::into_gen($strategy)),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &($left);
        let right = &($right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &($left);
        let right = &($right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &($left);
        let right = &($right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &($left);
        let right = &($right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in 10usize..=12) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((10..=12).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 8);
        }

        #[test]
        fn oneof_honors_arms(v in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u8>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collections_and_arrays_generate(
            v in crate::collection::vec(any::<u8>(), 1..5),
            block in crate::array::uniform16(any::<u8>()),
        ) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert_eq!(block.len(), 16);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
