//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io
//! (see the workspace README), so the handful of `rand` APIs the workspace
//! actually uses are reimplemented here and wired in through
//! `[patch.crates-io]`. The implementation is deliberately simple: a
//! xoshiro256** generator seeded via splitmix64, uniform sampling by
//! modulo reduction (a tiny bias is irrelevant for workload generation
//! and tests), and 53-bit mantissa floats.
//!
//! Determinism matters more than statistical perfection here — workload
//! generation (`mccp-sdr`) derives every packet from a seed, and tests
//! assert reproducibility across runs.

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only `seed_from_u64` is provided — the only
/// constructor this workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for rand's
    /// `StdRng`; the real `StdRng` makes no cross-version stream
    /// promises either, so callers may only rely on seed-determinism
    /// within one build — which this provides).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Integer types `Uniform` can sample. Mirrors rand's `SampleUniform`
    /// so call sites can write `Uniform::new_inclusive(a, b)` without
    /// turbofish.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// `high - low` widened to u128.
        fn span_to(self, high: Self) -> u128;
        /// `self + offset` (offset fits by construction).
        fn offset_by(self, offset: u128) -> Self;
    }

    macro_rules! sample_uniform_int {
        ($($t:ty),+) => {$(
            impl SampleUniform for $t {
                fn span_to(self, high: $t) -> u128 {
                    (high - self) as u128
                }

                fn offset_by(self, offset: u128) -> $t {
                    self + offset as $t
                }
            }
        )+};
    }

    sample_uniform_int!(u8, u16, u32, u64, usize);

    /// Uniform distribution over an integer range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<X> {
        low: X,
        /// Inclusive span minus one (`high - low`).
        span: u128,
    }

    impl<X: SampleUniform> Uniform<X> {
        pub fn new_inclusive(low: X, high: X) -> Uniform<X> {
            assert!(low <= high, "Uniform::new_inclusive: low > high");
            Uniform {
                low,
                span: low.span_to(high),
            }
        }

        pub fn new(low: X, high: X) -> Uniform<X> {
            assert!(low < high, "Uniform::new: empty range");
            Uniform {
                low,
                span: low.span_to(high) - 1,
            }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
            self.low
                .offset_by(rng.next_u64() as u128 % (self.span + 1))
        }
    }

    pub mod uniform {
        use super::super::RngCore;

        /// A range that `Rng::gen_range` can sample a single value from.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + unit * (self.end - self.start)
            }
        }

        macro_rules! sample_range_int {
            ($($t:ty),+) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        super::Uniform::new(self.start, self.end).sample_one(rng)
                    }
                }

                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        super::Uniform::new_inclusive(*self.start(), *self.end()).sample_one(rng)
                    }
                }
            )+};
        }

        sample_range_int!(u8, u16, u32, u64, usize);
    }

    impl<X> Uniform<X> {
        /// Non-trait sampling helper so `SampleRange` impls don't need the
        /// `Distribution` trait in scope.
        fn sample_one<R: RngCore + ?Sized>(&self, rng: &mut R) -> X
        where
            Uniform<X>: Distribution<X>,
        {
            self.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert!(va.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn uniform_inclusive_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Uniform::new_inclusive(10usize, 13usize);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = dist.sample(&mut rng);
            assert!((10..=13).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all four values should appear");
    }

    #[test]
    fn fill_is_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut ba = [0u8; 37];
        let mut bb = [0u8; 37];
        a.fill(&mut ba[..]);
        b.fill(&mut bb[..]);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }
}
