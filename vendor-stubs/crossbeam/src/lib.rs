//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided —
//! the surface `mccp-core::functional` uses. Semantics match crossbeam's
//! unbounded MPMC channel where this workspace relies on them:
//!
//! * `Sender` and `Receiver` are cloneable; multiple receivers compete
//!   for messages (work stealing).
//! * `recv` blocks until a message arrives or every `Sender` is dropped,
//!   at which point it drains the queue and then reports disconnection.
//! * `send` fails only when every `Receiver` is gone.
//!
//! Built on `std::sync::{Mutex, Condvar}` — slower than crossbeam's
//! lock-free queue, but correctness- and API-compatible.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clones share one queue
    /// (MPMC): each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected: every receiver was dropped. Carries
    /// the rejected message like crossbeam's error does.
    pub struct SendError<T>(pub T);

    /// The channel is disconnected and empty: every sender was dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking while the queue is empty and at
        /// least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking probe used by drain-style loops.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .ok_or(RecvError)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_delivers_each_message_once() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let mut all: Vec<u32> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }

        #[test]
        fn recv_drains_queue_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }
    }
}
