//! Offline stand-in for the `serde` crate.
//!
//! Nothing in this workspace serializes through serde today (the
//! telemetry exporters hand-roll their JSON precisely to avoid the
//! dependency), but `mccp-bench` declares the dependency, so this crate
//! exists to satisfy resolution offline. The `derive` feature is
//! accepted and ignored; code must not use `#[derive(Serialize)]` until
//! the real crate is restored.

/// Marker trait matching serde's `Serialize` by name only.
pub trait Serialize {}

/// Marker trait matching serde's `Deserialize` by name only.
pub trait Deserialize<'de> {}
