//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface `mccp-bench`'s benches compile
//! against, with a minimal measurement loop: each benchmark runs a short
//! warm-up plus a fixed number of timed iterations and prints mean
//! wall-clock time (and derived throughput when declared). No statistics,
//! no outlier analysis, no HTML reports — enough to keep `cargo bench`
//! meaningful offline, not a substitute for real criterion numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How a batched benchmark's setup output is sized. Accepted and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared per-iteration throughput basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Opaque to the optimizer. Re-exported like criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn run(iters: u64) -> Bencher {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with fresh setup output per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) if per_iter > 0.0 => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / per_iter / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:>10.0} elem/s", n as f64 / per_iter)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<48} {:>12.3} µs/iter{}",
            format!("{}/{}", self.name, id),
            per_iter * 1e6,
            rate
        );
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::run(self.sample_size as u64);
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::run(self.sample_size as u64);
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// Criterion's CLI-argument constructor; arguments are ignored here.
    pub fn default_from_args() -> Criterion {
        Criterion::default()
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
