//! Profiles the GCM firmware on a live Cryptographic Core — the analysis
//! behind the paper's Listing 1 scheduling: which instructions form the
//! hot loop, how many controller cycles per iteration, and how much time
//! the controller spends asleep waiting on the Cryptographic Unit.
//!
//! ```sh
//! cargo run --release --example firmware_profiler
//! ```

use mccp::core::core_unit::CryptoCore;
use mccp::core::firmware::{FirmwareId, FirmwareLibrary};
use mccp::core::format::{format_request, Direction};
use mccp::core::protocol::Algorithm;
use mccp::picoblaze::isa::Instruction;

fn main() {
    // Build one core and a formatted 2 KB GCM packet for it.
    let lib = FirmwareLibrary::new();
    // Deep FIFO so the whole formatted stream (J0 + AAD + 128 blocks + LEN
    // + margin) is resident up front; the MCCP proper streams it instead.
    let mut core = CryptoCore::new(0, 1024);
    let key = [0x42u8; 16];
    core.load_round_keys(mccp::aes::RoundKeys::expand(&key));

    let payload = vec![0xA5u8; 2048];
    let fmt = format_request(
        Algorithm::AesGcm128,
        Direction::Encrypt,
        false,
        &[7u8; 12],
        b"hdr-bytes",
        &payload,
        None,
        16,
    )
    .expect("formats");
    let job = &fmt.jobs[0];
    assert!(core.input.push_bytes(&job.stream));
    core.start(job.firmware, lib.image(job.firmware), job.params);

    // Run to completion, sampling the controller every cycle.
    let mut counts = vec![0u64; 1024];
    let mut sleep_cycles = 0u64;
    let mut total = 0u64;
    let (mut left, mut right) = (None, None);
    let mut retired_before = core.controller_retired();
    while core.result().is_none() {
        let pc = core.controller_pc();
        let was_sleeping = core.controller_sleeping();
        core.tick(&mut left, &mut right);
        total += 1;
        if was_sleeping && core.controller_sleeping() {
            sleep_cycles += 1;
        }
        let retired = core.controller_retired();
        if retired > retired_before {
            counts[pc as usize] += retired - retired_before;
            retired_before = retired;
        }
        // Drain the output so STORE never stalls.
        while core.output.pop().is_some() {}
        assert!(total < 10_000_000, "wedged");
    }
    assert!(!core.is_faulted());

    println!("GCM-128 encrypt, 2 KB packet on one Cryptographic Core\n");
    println!("total cycles:      {total}");
    println!(
        "controller asleep: {sleep_cycles} ({:.1}% — waiting on the CU, the sign of a",
        sleep_cycles as f64 / total as f64 * 100.0
    );
    println!("                   well-scheduled loop: the CU, not the controller, is busy)\n");

    // Hot-loop report.
    let image = lib.image(FirmwareId::GcmEnc);
    let mut ranked: Vec<(usize, u64)> = counts
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .collect();
    ranked.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("hottest instructions (the Listing-1 loop body):");
    println!("{:>7} {:>10}   instruction", "addr", "count");
    for (addr, count) in ranked.iter().take(12) {
        let text = Instruction::decode(image[*addr])
            .map(|i| i.to_string())
            .unwrap_or_else(|| "<illegal>".into());
        println!("  0x{addr:03X} {count:>10}   {text}");
    }
    let hot = ranked.first().map(|&(_, c)| c).unwrap_or(0);
    println!("\n{hot} iterations ≈ 128 payload blocks — the loop executes once per");
    println!(
        "128-bit block and sustains the paper's 49-cycle budget ({} cycles",
        total
    );
    println!("≈ 128 × 49 + pre/post overhead).");
}
