//! Partial reconfiguration (paper §VII.B): swap one core's Cryptographic
//! Unit from AES to Whirlpool while the other three cores keep encrypting
//! traffic, then verify the Whirlpool core actually hashes.
//!
//! ```sh
//! cargo run --release --example reconfiguration
//! ```

use mccp::aes::whirlpool::whirlpool;
use mccp::core::core_unit::Personality;
use mccp::core::protocol::{Algorithm, KeyId};
use mccp::core::reconfig::{
    BitstreamSource, ReconfigController, AES_BITSTREAM, WHIRLPOOL_BITSTREAM,
};
use mccp::core::{Mccp, MccpConfig};

fn main() {
    let mut mccp = Mccp::new(MccpConfig::default());
    mccp.key_memory_mut().store(KeyId(1), &[0x11; 16]);
    let ch = mccp.open(Algorithm::AesGcm128, KeyId(1)).unwrap();

    // Start a reconfiguration of core 3 to the Whirlpool bitstream,
    // loading from RAM (the paper's fast path: 69 ms ≈ 13.1M cycles).
    let mut rc = ReconfigController::new();
    let budget = rc
        .begin(WHIRLPOOL_BITSTREAM, BitstreamSource::Ram)
        .expect("no reconfiguration in flight");
    println!(
        "reconfiguring core 3: {} kB bitstream, {} cycles ({:.0} ms) from RAM",
        WHIRLPOOL_BITSTREAM.size_kb,
        budget,
        WHIRLPOOL_BITSTREAM.load_time_ms(BitstreamSource::Ram)
    );

    // While the bitstream streams in, the other cores keep working. We
    // interleave packets with reconfiguration ticks (1000 sim cycles per
    // reconfig step here, scaled so the demo terminates quickly — the
    // ratio in the printout is the real one).
    let payload = vec![0xABu8; 1024];
    let mut packets = 0u32;
    let mut done_after = None;
    for i in 0..40u64 {
        let mut iv = [0u8; 12];
        iv[4..].copy_from_slice(&i.to_be_bytes());
        let pkt = mccp
            .encrypt_packet(ch, &[], &payload, &iv)
            .expect("encrypt");
        packets += 1;
        // Advance the reconfiguration by the cycles the packet took.
        for _ in 0..pkt.cycles {
            if let Some(p) = rc.tick() {
                done_after = Some((packets, p));
            }
        }
        if done_after.is_some() {
            break;
        }
    }
    match done_after {
        Some((n, p)) => println!("reconfiguration to {p:?} completed after {n} packets"),
        None => {
            let real_packets = budget / (128 * 49);
            println!(
                "still reconfiguring after {packets} packets — at full rate the swap \
                 spans ~{real_packets} 2 KB packets; completing it now for the demo"
            );
            while rc.tick().is_none() {}
        }
    }

    // Apply the new personality to core 3 and prove the swap is real:
    // the core now computes Whirlpool digests (functionally).
    mccp.core_mut(3).set_personality(Personality::WhirlpoolUnit);
    println!("core 3 personality: {:?}", mccp.core(3).personality());
    let digest = whirlpool(b"The quick brown fox jumps over the lazy dog");
    println!(
        "whirlpool(\"The quick brown fox...\") = {:02x?}...",
        &digest[..8]
    );

    // AES traffic continues on the remaining cores (first-idle dispatch
    // simply never selects the Whirlpool core).
    let pkt = mccp
        .encrypt_packet(ch, &[], &payload, &[0x55u8; 12])
        .expect("three AES cores still serve the channel");
    println!(
        "AES channel still live during/after the swap ({} cycles/packet)",
        pkt.cycles
    );

    // Swap back: the AES bitstream restores full capacity.
    let mut rc2 = ReconfigController::new();
    rc2.begin(AES_BITSTREAM, BitstreamSource::CompactFlash)
        .unwrap();
    while rc2.tick().is_none() {}
    mccp.core_mut(3).set_personality(Personality::AesUnit);
    println!(
        "core 3 restored to {:?} (CF load: {:.0} ms — cache your bitstreams!)",
        mccp.core(3).personality(),
        AES_BITSTREAM.load_time_ms(BitstreamSource::CompactFlash)
    );

    // Finally, the §IX claim: swap in a different *block cipher* and run
    // the very same GCM firmware on it.
    use mccp::core::protocol::CipherSel;
    use mccp::core::reconfig::TWOFISH_BITSTREAM;
    let mut rc3 = ReconfigController::new();
    rc3.begin(TWOFISH_BITSTREAM, BitstreamSource::Ram).unwrap();
    while rc3.tick().is_none() {}
    mccp.core_mut(3).set_personality(Personality::TwofishUnit);
    let tf_ch = mccp
        .open_with_cipher(Algorithm::AesGcm128, KeyId(1), 16, CipherSel::Twofish)
        .unwrap();
    let tf_pkt = mccp
        .encrypt_packet(tf_ch, b"hdr", b"twofish-gcm payload", &[0x77u8; 12])
        .expect("GCM firmware runs unchanged on the Twofish engine");
    println!(
        "\nTwofish-GCM channel live on core 3: {} ct bytes, tag {:02x?}... ({} cycles)",
        tf_pkt.ciphertext.len(),
        &tf_pkt.tag[..4],
        tf_pkt.cycles
    );
    let back = mccp
        .decrypt_packet(
            tf_ch,
            b"hdr",
            &tf_pkt.ciphertext,
            &tf_pkt.tag,
            &[0x77u8; 12],
        )
        .unwrap();
    assert_eq!(back.plaintext, b"twofish-gcm payload");
    println!("Twofish packet round-trips — \"AES may be easily replaced by any");
    println!("other 128-bit block cipher (such as Twofish)\" (paper §IX), executed.");
}
