//! Quickstart: bring up a 4-core MCCP, open a GCM channel, push one packet
//! through the full control protocol, and decrypt it back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mccp::core::protocol::{Algorithm, KeyId};
use mccp::core::{Mccp, MccpConfig};
use mccp::sim::throughput_mbps;

fn main() {
    // The platform's main controller provisions a session key. The MCCP
    // itself can never read this key back — only use it.
    let mut mccp = Mccp::new(MccpConfig::default());
    let key = KeyId(1);
    mccp.key_memory_mut().store(key, &[0x2B; 16]);

    // OPEN a channel: AES-128-GCM bound to the session key.
    let channel = mccp.open(Algorithm::AesGcm128, key).expect("channel");
    println!("opened channel {channel:?} with AES-128-GCM");

    // ENCRYPT one packet. The communication controller (here: this
    // example) supplies the IV, the authenticated header and the payload;
    // the library formats the FIFO streams, runs the cycle-accurate
    // simulation and parses the result.
    let iv = [7u8; 12];
    let header = b"radio-frame-header";
    let payload = b"Twelve chars and then some more payload bytes for the demo packet.";
    let packet = mccp
        .encrypt_packet(channel, header, payload, &iv)
        .expect("encrypt");
    println!(
        "encrypted {} bytes in {} modeled cycles ({:.0} Mbps at 190 MHz)",
        payload.len(),
        packet.cycles,
        throughput_mbps(payload.len() as u64 * 8, packet.cycles),
    );
    println!("tag: {:02x?}", packet.tag);

    // DECRYPT it back on the same channel.
    let plain = mccp
        .decrypt_packet(channel, header, &packet.ciphertext, &packet.tag, &iv)
        .expect("authentic packet decrypts");
    assert_eq!(plain.plaintext, payload);
    println!("decrypted OK: payload round-trips");

    // Tampering is detected and nothing is released: the core wipes its
    // output FIFO before reporting AUTH_FAIL.
    let mut evil = packet.ciphertext.clone();
    evil[0] ^= 0x80;
    let verdict = mccp.decrypt_packet(channel, header, &evil, &packet.tag, &iv);
    println!("tampered packet: {verdict:?}");
    assert!(verdict.is_err());

    mccp.close(channel).expect("close");
    println!("channel closed; total modeled cycles: {}", mccp.cycle());
}
