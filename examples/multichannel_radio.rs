//! The paper's motivating scenario: a secure multi-standard,
//! multi-channel software-defined radio. Three simultaneous channels —
//! WiFi-like CCM, WiMax-like GCM and UMTS-like CTR — stream packets
//! through the four loosely coupled cores, with and without the QoS
//! dispatch policy, and every output is verified against the NIST
//! reference implementations.
//!
//! ```sh
//! cargo run --release --example multichannel_radio
//! ```

use mccp::core::MccpConfig;
use mccp::sdr::qos::{latency_by_class, DispatchPolicy};
use mccp::sdr::workload::{Workload, WorkloadSpec};
use mccp::sdr::{RadioDriver, Standard};

fn main() {
    let spec = WorkloadSpec {
        standards: vec![Standard::Wifi, Standard::Wimax, Standard::Umts],
        packets: 30,
        seed: 0xD1A1,
        fixed_payload_len: None, // sample per-standard packet sizes,
        mean_interarrival_cycles: None,
    };
    let workload = Workload::generate(spec.clone());
    println!(
        "workload: {} packets, {} payload bytes across {} standards",
        workload.packets.len(),
        workload.payload_bytes(),
        spec.standards.len()
    );

    for policy in [DispatchPolicy::Fifo, DispatchPolicy::Priority] {
        let mut radio = RadioDriver::new(MccpConfig::default(), &spec.standards, 99);
        let report = radio.run(&workload, policy);
        let verified = radio
            .verify(&workload, &report)
            .expect("all ciphertexts match the NIST reference");
        println!("\n--- dispatch policy: {policy:?} ---");
        println!(
            "  {} packets verified; aggregate {:.0} Mbps at 190 MHz; {} cycles total",
            verified,
            report.throughput_mbps(),
            report.cycles
        );
        println!(
            "  latency: mean {:.0} / p50 {} / max {} cycles",
            report.mean_latency(),
            report.latency_percentile(0.5),
            report.max_latency()
        );
        for class in latency_by_class(&workload.packets, &report.records) {
            println!(
                "  priority {}: {} packets, mean latency {:.0} cycles",
                class.class, class.packets, class.mean_cycles
            );
        }
    }

    println!("\nBoth runs produce bit-identical ciphertexts; QoS reorders only");
    println!("*when* packets are offered to the first idle core (paper §VIII).");
}
