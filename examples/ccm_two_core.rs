//! The two-core CCM schedule (paper §IV.D): a single CCM packet split
//! across an adjacent core pair — CBC-MAC on the left core, CTR on the
//! right, chained through the inter-core port — versus the same packet on
//! one core. Shows the paper's latency/throughput trade-off from the
//! inside.
//!
//! ```sh
//! cargo run --release --example ccm_two_core
//! ```

use mccp::core::protocol::{Algorithm, KeyId};
use mccp::core::{Direction, Mccp, MccpConfig};

fn run(two_core: bool, payload: &[u8]) -> (u64, Vec<u8>, Vec<u8>, Vec<usize>) {
    let mut mccp = Mccp::new(MccpConfig {
        ccm_two_core: two_core,
        ..MccpConfig::default()
    });
    mccp.key_memory_mut().store(KeyId(1), &[0x42; 16]);
    let ch = mccp
        .open_with_tag_len(Algorithm::AesCcm128, KeyId(1), 8)
        .unwrap();
    let nonce = [9u8; 13];
    // Warm the key cache so we compare steady-state packet times.
    mccp.encrypt_packet(ch, b"hdr", payload, &nonce).unwrap();

    let id = mccp
        .submit(ch, Direction::Encrypt, &nonce, b"hdr", payload, None)
        .unwrap();
    let cores = mccp.request_cores(id).unwrap().to_vec();
    let cycles = mccp.run_until_done(id, 100_000_000);
    let out = mccp.retrieve(id).unwrap();
    mccp.transfer_done(id).unwrap();
    (cycles, out.body, out.tag.unwrap(), cores)
}

fn main() {
    let payload = vec![0x5Au8; 2048];

    let (c1, ct1, tag1, cores1) = run(false, &payload);
    let (c2, ct2, tag2, cores2) = run(true, &payload);

    println!("2 KB AES-CCM-128 packet, single core vs two-core split:\n");
    println!("  single core : {c1:>6} cycles on cores {cores1:?}");
    println!("  two cores   : {c2:>6} cycles on cores {cores2:?} (CBC-MAC left, CTR right)");
    println!(
        "  latency gain: {:.2}x (paper: 104/55 ≈ 1.9x on the loop term)",
        c1 as f64 / c2 as f64
    );

    assert_eq!(ct1, ct2, "both schedules must produce identical ciphertext");
    assert_eq!(tag1, tag2, "and identical tags");
    println!("\nbit-exact: both schedules agree on ciphertext and tag");

    println!("\nThe trade-off (paper §VII.A): the pair halves one packet's");
    println!("latency, but four packets on four single cores move ~5% more");
    println!("aggregate data than two packets on two pairs — scheduling is a");
    println!("policy knob, not a fixed property of the hardware.");
    let _ = (tag1, tag2);
}
