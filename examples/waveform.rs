//! Dumps a VCD waveform of the MCCP processing four concurrent packets —
//! open `mccp.vcd` in GTKWave/Surfer to watch the four cores' AES engines,
//! GHASH engines and FIFOs in flight.
//!
//! ```sh
//! cargo run --release --example waveform && gtkwave mccp.vcd
//! ```

use mccp::core::protocol::{Algorithm, KeyId};
use mccp::core::{Direction, Mccp, MccpConfig};
use mccp::cryptounit::CuStatus;
use mccp::sim::vcd::VcdWriter;
use mccp::sim::CLOCK_HZ;

fn main() {
    let mut m = Mccp::new(MccpConfig::default());
    m.key_memory_mut().store(KeyId(1), &[0x42; 16]);
    let gcm = m.open(Algorithm::AesGcm128, KeyId(1)).unwrap();
    let ccm = m
        .open_with_tag_len(Algorithm::AesCcm128, KeyId(1), 8)
        .unwrap();

    let mut vcd = VcdWriter::new("mccp", CLOCK_HZ);
    let n = m.config().n_cores;
    let mut sig = Vec::new();
    for i in 0..n {
        sig.push((
            vcd.add_wire(&format!("core{i}_busy")),
            vcd.add_wire(&format!("core{i}_aes_busy")),
            vcd.add_wire(&format!("core{i}_ghash_busy")),
            vcd.add_wire(&format!("core{i}_ctrl_sleeping")),
            vcd.add_vector(&format!("core{i}_in_fifo_words"), 10),
            vcd.add_vector(&format!("core{i}_out_fifo_words"), 10),
        ));
    }

    // Two GCM packets and two CCM packets, staggered.
    let payload = vec![0xA5u8; 512];
    let mut ids = vec![
        m.submit(gcm, Direction::Encrypt, &[1u8; 12], b"h", &payload, None)
            .unwrap(),
        m.submit(ccm, Direction::Encrypt, &[2u8; 12], b"h", &payload, None)
            .unwrap(),
    ];

    let mut cycle = 0u64;
    let mut staggered = false;
    loop {
        m.tick();
        cycle += 1;
        if cycle == 800 && !staggered {
            staggered = true;
            ids.push(
                m.submit(gcm, Direction::Encrypt, &[3u8; 12], b"h", &payload, None)
                    .unwrap(),
            );
            ids.push(
                m.submit(ccm, Direction::Encrypt, &[4u8; 12], b"h", &payload, None)
                    .unwrap(),
            );
        }
        for (i, s) in sig.iter().enumerate() {
            let core = m.core(i);
            let st = core.cu_status().0;
            vcd.sample(cycle, s.0, (!core.is_idle()) as u64);
            vcd.sample(cycle, s.1, ((st & CuStatus::AES_BUSY) != 0) as u64);
            vcd.sample(cycle, s.2, ((st & CuStatus::GHASH_BUSY) != 0) as u64);
            vcd.sample(cycle, s.3, core.controller_sleeping() as u64);
            vcd.sample(cycle, s.4, core.input.len() as u64);
            vcd.sample(cycle, s.5, core.output.len() as u64);
        }
        if staggered && ids.iter().all(|&id| m.is_done(id)) {
            break;
        }
        assert!(cycle < 100_000, "wedged");
    }
    for id in ids {
        m.retrieve(id).unwrap();
        m.transfer_done(id).unwrap();
    }

    vcd.write_to("mccp.vcd").expect("write mccp.vcd");
    println!(
        "wrote mccp.vcd: {} cycles, {} value changes across {} signals",
        cycle,
        vcd.change_count(),
        6 * n
    );
    println!("open with `gtkwave mccp.vcd` — watch the AES engines saturate");
    println!("(49-cycle GCM rhythm on cores 0/2, 104-cycle CCM on cores 1/3)");
}
