/root/repo/target/release/examples/waveform-ad667a5028aae02c.d: examples/waveform.rs

/root/repo/target/release/examples/waveform-ad667a5028aae02c: examples/waveform.rs

examples/waveform.rs:
