/root/repo/target/release/examples/quickstart-2f27c3c4e5c63f8d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2f27c3c4e5c63f8d: examples/quickstart.rs

examples/quickstart.rs:
