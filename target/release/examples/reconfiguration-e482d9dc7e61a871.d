/root/repo/target/release/examples/reconfiguration-e482d9dc7e61a871.d: examples/reconfiguration.rs

/root/repo/target/release/examples/reconfiguration-e482d9dc7e61a871: examples/reconfiguration.rs

examples/reconfiguration.rs:
