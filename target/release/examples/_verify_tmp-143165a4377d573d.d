/root/repo/target/release/examples/_verify_tmp-143165a4377d573d.d: examples/_verify_tmp.rs

/root/repo/target/release/examples/_verify_tmp-143165a4377d573d: examples/_verify_tmp.rs

examples/_verify_tmp.rs:
