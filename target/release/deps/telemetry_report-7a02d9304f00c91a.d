/root/repo/target/release/deps/telemetry_report-7a02d9304f00c91a.d: crates/mccp-bench/src/bin/telemetry_report.rs

/root/repo/target/release/deps/telemetry_report-7a02d9304f00c91a: crates/mccp-bench/src/bin/telemetry_report.rs

crates/mccp-bench/src/bin/telemetry_report.rs:
