/root/repo/target/release/deps/ablation_overlap-8bab26eb30b77735.d: crates/mccp-bench/src/bin/ablation_overlap.rs

/root/repo/target/release/deps/ablation_overlap-8bab26eb30b77735: crates/mccp-bench/src/bin/ablation_overlap.rs

crates/mccp-bench/src/bin/ablation_overlap.rs:
