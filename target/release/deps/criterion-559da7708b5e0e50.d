/root/repo/target/release/deps/criterion-559da7708b5e0e50.d: vendor-stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-559da7708b5e0e50.rlib: vendor-stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-559da7708b5e0e50.rmeta: vendor-stubs/criterion/src/lib.rs

vendor-stubs/criterion/src/lib.rs:
