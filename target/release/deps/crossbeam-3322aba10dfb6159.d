/root/repo/target/release/deps/crossbeam-3322aba10dfb6159.d: vendor-stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3322aba10dfb6159.rlib: vendor-stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-3322aba10dfb6159.rmeta: vendor-stubs/crossbeam/src/lib.rs

vendor-stubs/crossbeam/src/lib.rs:
