/root/repo/target/release/deps/fig_latency_tradeoff-cea9d473e6f55056.d: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

/root/repo/target/release/deps/fig_latency_tradeoff-cea9d473e6f55056: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

crates/mccp-bench/src/bin/fig_latency_tradeoff.rs:
