/root/repo/target/release/deps/fig_packet_sweep-aa00c22924b86c8d.d: crates/mccp-bench/src/bin/fig_packet_sweep.rs

/root/repo/target/release/deps/fig_packet_sweep-aa00c22924b86c8d: crates/mccp-bench/src/bin/fig_packet_sweep.rs

crates/mccp-bench/src/bin/fig_packet_sweep.rs:
