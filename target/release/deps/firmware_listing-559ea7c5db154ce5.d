/root/repo/target/release/deps/firmware_listing-559ea7c5db154ce5.d: crates/mccp-bench/src/bin/firmware_listing.rs

/root/repo/target/release/deps/firmware_listing-559ea7c5db154ce5: crates/mccp-bench/src/bin/firmware_listing.rs

crates/mccp-bench/src/bin/firmware_listing.rs:
