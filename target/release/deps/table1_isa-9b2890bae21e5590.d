/root/repo/target/release/deps/table1_isa-9b2890bae21e5590.d: crates/mccp-bench/src/bin/table1_isa.rs

/root/repo/target/release/deps/table1_isa-9b2890bae21e5590: crates/mccp-bench/src/bin/table1_isa.rs

crates/mccp-bench/src/bin/table1_isa.rs:
