/root/repo/target/release/deps/fig_packet_sweep-3f4d8b1740257dd6.d: crates/mccp-bench/src/bin/fig_packet_sweep.rs

/root/repo/target/release/deps/fig_packet_sweep-3f4d8b1740257dd6: crates/mccp-bench/src/bin/fig_packet_sweep.rs

crates/mccp-bench/src/bin/fig_packet_sweep.rs:
