/root/repo/target/release/deps/parking_lot-1542f99c9d220d55.d: vendor-stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1542f99c9d220d55.rlib: vendor-stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-1542f99c9d220d55.rmeta: vendor-stubs/parking_lot/src/lib.rs

vendor-stubs/parking_lot/src/lib.rs:
