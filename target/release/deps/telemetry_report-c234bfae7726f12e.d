/root/repo/target/release/deps/telemetry_report-c234bfae7726f12e.d: crates/mccp-bench/src/bin/telemetry_report.rs

/root/repo/target/release/deps/telemetry_report-c234bfae7726f12e: crates/mccp-bench/src/bin/telemetry_report.rs

crates/mccp-bench/src/bin/telemetry_report.rs:
