/root/repo/target/release/deps/ablation_overlap-9b6cf471d28496e7.d: crates/mccp-bench/src/bin/ablation_overlap.rs

/root/repo/target/release/deps/ablation_overlap-9b6cf471d28496e7: crates/mccp-bench/src/bin/ablation_overlap.rs

crates/mccp-bench/src/bin/ablation_overlap.rs:
