/root/repo/target/release/deps/ablation_cipher_swap-678858d4cc1cb358.d: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

/root/repo/target/release/deps/ablation_cipher_swap-678858d4cc1cb358: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

crates/mccp-bench/src/bin/ablation_cipher_swap.rs:
