/root/repo/target/release/deps/firmware_listing-13034b3bee70c36a.d: crates/mccp-bench/src/bin/firmware_listing.rs

/root/repo/target/release/deps/firmware_listing-13034b3bee70c36a: crates/mccp-bench/src/bin/firmware_listing.rs

crates/mccp-bench/src/bin/firmware_listing.rs:
