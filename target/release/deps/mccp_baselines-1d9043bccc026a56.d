/root/repo/target/release/deps/mccp_baselines-1d9043bccc026a56.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/release/deps/libmccp_baselines-1d9043bccc026a56.rlib: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/release/deps/libmccp_baselines-1d9043bccc026a56.rmeta: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
