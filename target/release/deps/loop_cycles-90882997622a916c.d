/root/repo/target/release/deps/loop_cycles-90882997622a916c.d: crates/mccp-bench/src/bin/loop_cycles.rs

/root/repo/target/release/deps/loop_cycles-90882997622a916c: crates/mccp-bench/src/bin/loop_cycles.rs

crates/mccp-bench/src/bin/loop_cycles.rs:
