/root/repo/target/release/deps/mccp_bench-048b9971f4836d8a.d: crates/mccp-bench/src/lib.rs

/root/repo/target/release/deps/libmccp_bench-048b9971f4836d8a.rlib: crates/mccp-bench/src/lib.rs

/root/repo/target/release/deps/libmccp_bench-048b9971f4836d8a.rmeta: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
