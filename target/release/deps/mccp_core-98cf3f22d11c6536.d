/root/repo/target/release/deps/mccp_core-98cf3f22d11c6536.d: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

/root/repo/target/release/deps/libmccp_core-98cf3f22d11c6536.rlib: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

/root/repo/target/release/deps/libmccp_core-98cf3f22d11c6536.rmeta: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

crates/mccp-core/src/lib.rs:
crates/mccp-core/src/core_unit.rs:
crates/mccp-core/src/crossbar.rs:
crates/mccp-core/src/firmware.rs:
crates/mccp-core/src/format.rs:
crates/mccp-core/src/functional.rs:
crates/mccp-core/src/key.rs:
crates/mccp-core/src/mccp.rs:
crates/mccp-core/src/model.rs:
crates/mccp-core/src/protocol.rs:
crates/mccp-core/src/reconfig.rs:
