/root/repo/target/release/deps/fig_core_scaling-27dc47bb7f719749.d: crates/mccp-bench/src/bin/fig_core_scaling.rs

/root/repo/target/release/deps/fig_core_scaling-27dc47bb7f719749: crates/mccp-bench/src/bin/fig_core_scaling.rs

crates/mccp-bench/src/bin/fig_core_scaling.rs:
