/root/repo/target/release/deps/table4_reconfig-21cf9fa13e80f5e3.d: crates/mccp-bench/src/bin/table4_reconfig.rs

/root/repo/target/release/deps/table4_reconfig-21cf9fa13e80f5e3: crates/mccp-bench/src/bin/table4_reconfig.rs

crates/mccp-bench/src/bin/table4_reconfig.rs:
