/root/repo/target/release/deps/ablation_cipher_swap-7c9dfbaae4b86686.d: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

/root/repo/target/release/deps/ablation_cipher_swap-7c9dfbaae4b86686: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

crates/mccp-bench/src/bin/ablation_cipher_swap.rs:
