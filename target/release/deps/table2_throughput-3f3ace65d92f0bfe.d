/root/repo/target/release/deps/table2_throughput-3f3ace65d92f0bfe.d: crates/mccp-bench/src/bin/table2_throughput.rs

/root/repo/target/release/deps/table2_throughput-3f3ace65d92f0bfe: crates/mccp-bench/src/bin/table2_throughput.rs

crates/mccp-bench/src/bin/table2_throughput.rs:
