/root/repo/target/release/deps/mccp-2955f1f627504760.d: src/lib.rs

/root/repo/target/release/deps/libmccp-2955f1f627504760.rlib: src/lib.rs

/root/repo/target/release/deps/libmccp-2955f1f627504760.rmeta: src/lib.rs

src/lib.rs:
