/root/repo/target/release/deps/mccp_baselines-f681d44b7aa6b57b.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/release/deps/libmccp_baselines-f681d44b7aa6b57b.rlib: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/release/deps/libmccp_baselines-f681d44b7aa6b57b.rmeta: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
