/root/repo/target/release/deps/mccp_bench-e94186960c3d289b.d: crates/mccp-bench/src/lib.rs

/root/repo/target/release/deps/libmccp_bench-e94186960c3d289b.rlib: crates/mccp-bench/src/lib.rs

/root/repo/target/release/deps/libmccp_bench-e94186960c3d289b.rmeta: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
