/root/repo/target/release/deps/table1_isa-ecd29ae1c45cced6.d: crates/mccp-bench/src/bin/table1_isa.rs

/root/repo/target/release/deps/table1_isa-ecd29ae1c45cced6: crates/mccp-bench/src/bin/table1_isa.rs

crates/mccp-bench/src/bin/table1_isa.rs:
