/root/repo/target/release/deps/table2_throughput-bfd736d6cf619741.d: crates/mccp-bench/src/bin/table2_throughput.rs

/root/repo/target/release/deps/table2_throughput-bfd736d6cf619741: crates/mccp-bench/src/bin/table2_throughput.rs

crates/mccp-bench/src/bin/table2_throughput.rs:
