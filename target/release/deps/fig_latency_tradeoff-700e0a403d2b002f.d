/root/repo/target/release/deps/fig_latency_tradeoff-700e0a403d2b002f.d: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

/root/repo/target/release/deps/fig_latency_tradeoff-700e0a403d2b002f: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

crates/mccp-bench/src/bin/fig_latency_tradeoff.rs:
