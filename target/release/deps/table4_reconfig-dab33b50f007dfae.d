/root/repo/target/release/deps/table4_reconfig-dab33b50f007dfae.d: crates/mccp-bench/src/bin/table4_reconfig.rs

/root/repo/target/release/deps/table4_reconfig-dab33b50f007dfae: crates/mccp-bench/src/bin/table4_reconfig.rs

crates/mccp-bench/src/bin/table4_reconfig.rs:
