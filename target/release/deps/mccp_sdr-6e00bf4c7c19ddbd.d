/root/repo/target/release/deps/mccp_sdr-6e00bf4c7c19ddbd.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/release/deps/libmccp_sdr-6e00bf4c7c19ddbd.rlib: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/release/deps/libmccp_sdr-6e00bf4c7c19ddbd.rmeta: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
