/root/repo/target/release/deps/primitives-3ab40e2b90b73006.d: crates/mccp-bench/benches/primitives.rs

/root/repo/target/release/deps/primitives-3ab40e2b90b73006: crates/mccp-bench/benches/primitives.rs

crates/mccp-bench/benches/primitives.rs:
