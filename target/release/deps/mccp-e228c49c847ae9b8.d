/root/repo/target/release/deps/mccp-e228c49c847ae9b8.d: src/lib.rs

/root/repo/target/release/deps/libmccp-e228c49c847ae9b8.rlib: src/lib.rs

/root/repo/target/release/deps/libmccp-e228c49c847ae9b8.rmeta: src/lib.rs

src/lib.rs:
