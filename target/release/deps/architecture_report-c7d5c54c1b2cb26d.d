/root/repo/target/release/deps/architecture_report-c7d5c54c1b2cb26d.d: crates/mccp-bench/src/bin/architecture_report.rs

/root/repo/target/release/deps/architecture_report-c7d5c54c1b2cb26d: crates/mccp-bench/src/bin/architecture_report.rs

crates/mccp-bench/src/bin/architecture_report.rs:
