/root/repo/target/release/deps/architecture_report-84061756f43f396f.d: crates/mccp-bench/src/bin/architecture_report.rs

/root/repo/target/release/deps/architecture_report-84061756f43f396f: crates/mccp-bench/src/bin/architecture_report.rs

crates/mccp-bench/src/bin/architecture_report.rs:
