/root/repo/target/release/deps/rand-fdae4af23127624a.d: vendor-stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fdae4af23127624a.rlib: vendor-stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fdae4af23127624a.rmeta: vendor-stubs/rand/src/lib.rs

vendor-stubs/rand/src/lib.rs:
