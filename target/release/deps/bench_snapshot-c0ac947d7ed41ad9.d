/root/repo/target/release/deps/bench_snapshot-c0ac947d7ed41ad9.d: crates/mccp-bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-c0ac947d7ed41ad9: crates/mccp-bench/src/bin/bench_snapshot.rs

crates/mccp-bench/src/bin/bench_snapshot.rs:
