/root/repo/target/release/deps/functional_throughput-af49549ad55aa60d.d: crates/mccp-bench/benches/functional_throughput.rs

/root/repo/target/release/deps/functional_throughput-af49549ad55aa60d: crates/mccp-bench/benches/functional_throughput.rs

crates/mccp-bench/benches/functional_throughput.rs:
