/root/repo/target/release/deps/proptest-2f1d0ef53eee6afa.d: vendor-stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2f1d0ef53eee6afa.rlib: vendor-stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2f1d0ef53eee6afa.rmeta: vendor-stubs/proptest/src/lib.rs

vendor-stubs/proptest/src/lib.rs:
