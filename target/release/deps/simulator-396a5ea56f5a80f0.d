/root/repo/target/release/deps/simulator-396a5ea56f5a80f0.d: crates/mccp-bench/benches/simulator.rs

/root/repo/target/release/deps/simulator-396a5ea56f5a80f0: crates/mccp-bench/benches/simulator.rs

crates/mccp-bench/benches/simulator.rs:
