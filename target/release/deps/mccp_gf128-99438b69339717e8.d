/root/repo/target/release/deps/mccp_gf128-99438b69339717e8.d: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

/root/repo/target/release/deps/libmccp_gf128-99438b69339717e8.rlib: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

/root/repo/target/release/deps/libmccp_gf128-99438b69339717e8.rmeta: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

crates/mccp-gf128/src/lib.rs:
crates/mccp-gf128/src/digit_serial.rs:
crates/mccp-gf128/src/element.rs:
crates/mccp-gf128/src/ghash.rs:
