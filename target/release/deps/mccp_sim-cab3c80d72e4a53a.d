/root/repo/target/release/deps/mccp_sim-cab3c80d72e4a53a.d: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

/root/repo/target/release/deps/libmccp_sim-cab3c80d72e4a53a.rlib: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

/root/repo/target/release/deps/libmccp_sim-cab3c80d72e4a53a.rmeta: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

crates/mccp-sim/src/lib.rs:
crates/mccp-sim/src/bram.rs:
crates/mccp-sim/src/clocked.rs:
crates/mccp-sim/src/fifo.rs:
crates/mccp-sim/src/resources.rs:
crates/mccp-sim/src/shift_register.rs:
crates/mccp-sim/src/trace.rs:
crates/mccp-sim/src/vcd.rs:
