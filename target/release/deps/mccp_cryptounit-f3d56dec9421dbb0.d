/root/repo/target/release/deps/mccp_cryptounit-f3d56dec9421dbb0.d: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

/root/repo/target/release/deps/libmccp_cryptounit-f3d56dec9421dbb0.rlib: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

/root/repo/target/release/deps/libmccp_cryptounit-f3d56dec9421dbb0.rmeta: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

crates/mccp-cryptounit/src/lib.rs:
crates/mccp-cryptounit/src/engine.rs:
crates/mccp-cryptounit/src/isa.rs:
crates/mccp-cryptounit/src/timing.rs:
crates/mccp-cryptounit/src/unit.rs:
