/root/repo/target/release/deps/soak-0c622c0297752244.d: crates/mccp-bench/src/bin/soak.rs

/root/repo/target/release/deps/soak-0c622c0297752244: crates/mccp-bench/src/bin/soak.rs

crates/mccp-bench/src/bin/soak.rs:
