/root/repo/target/release/deps/mccp_telemetry-b5225711f43ee69f.d: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

/root/repo/target/release/deps/libmccp_telemetry-b5225711f43ee69f.rlib: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

/root/repo/target/release/deps/libmccp_telemetry-b5225711f43ee69f.rmeta: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

crates/mccp-telemetry/src/lib.rs:
crates/mccp-telemetry/src/event.rs:
crates/mccp-telemetry/src/export.rs:
crates/mccp-telemetry/src/metrics.rs:
crates/mccp-telemetry/src/span.rs:
crates/mccp-telemetry/src/vcd_bridge.rs:
