/root/repo/target/release/deps/mccp_sdr-8f1b7b4c35a25772.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/release/deps/libmccp_sdr-8f1b7b4c35a25772.rlib: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/release/deps/libmccp_sdr-8f1b7b4c35a25772.rmeta: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
