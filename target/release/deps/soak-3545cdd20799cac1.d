/root/repo/target/release/deps/soak-3545cdd20799cac1.d: crates/mccp-bench/src/bin/soak.rs

/root/repo/target/release/deps/soak-3545cdd20799cac1: crates/mccp-bench/src/bin/soak.rs

crates/mccp-bench/src/bin/soak.rs:
