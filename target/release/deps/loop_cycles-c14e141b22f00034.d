/root/repo/target/release/deps/loop_cycles-c14e141b22f00034.d: crates/mccp-bench/src/bin/loop_cycles.rs

/root/repo/target/release/deps/loop_cycles-c14e141b22f00034: crates/mccp-bench/src/bin/loop_cycles.rs

crates/mccp-bench/src/bin/loop_cycles.rs:
