/root/repo/target/release/deps/ablation_nop-98598aa4404c8b2d.d: crates/mccp-bench/src/bin/ablation_nop.rs

/root/repo/target/release/deps/ablation_nop-98598aa4404c8b2d: crates/mccp-bench/src/bin/ablation_nop.rs

crates/mccp-bench/src/bin/ablation_nop.rs:
