/root/repo/target/release/deps/fig_aad_fraction-bb842ab2385c2906.d: crates/mccp-bench/src/bin/fig_aad_fraction.rs

/root/repo/target/release/deps/fig_aad_fraction-bb842ab2385c2906: crates/mccp-bench/src/bin/fig_aad_fraction.rs

crates/mccp-bench/src/bin/fig_aad_fraction.rs:
