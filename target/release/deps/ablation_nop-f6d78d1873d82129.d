/root/repo/target/release/deps/ablation_nop-f6d78d1873d82129.d: crates/mccp-bench/src/bin/ablation_nop.rs

/root/repo/target/release/deps/ablation_nop-f6d78d1873d82129: crates/mccp-bench/src/bin/ablation_nop.rs

crates/mccp-bench/src/bin/ablation_nop.rs:
