/root/repo/target/release/deps/serde-ef12a95fcaf7629f.d: vendor-stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ef12a95fcaf7629f.rlib: vendor-stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-ef12a95fcaf7629f.rmeta: vendor-stubs/serde/src/lib.rs

vendor-stubs/serde/src/lib.rs:
