/root/repo/target/release/deps/ablation_fifo-54f5e3ea2613e3c2.d: crates/mccp-bench/src/bin/ablation_fifo.rs

/root/repo/target/release/deps/ablation_fifo-54f5e3ea2613e3c2: crates/mccp-bench/src/bin/ablation_fifo.rs

crates/mccp-bench/src/bin/ablation_fifo.rs:
