/root/repo/target/release/deps/table3_comparison-06ba0af9a9811eec.d: crates/mccp-bench/src/bin/table3_comparison.rs

/root/repo/target/release/deps/table3_comparison-06ba0af9a9811eec: crates/mccp-bench/src/bin/table3_comparison.rs

crates/mccp-bench/src/bin/table3_comparison.rs:
