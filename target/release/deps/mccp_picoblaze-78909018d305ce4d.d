/root/repo/target/release/deps/mccp_picoblaze-78909018d305ce4d.d: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

/root/repo/target/release/deps/libmccp_picoblaze-78909018d305ce4d.rlib: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

/root/repo/target/release/deps/libmccp_picoblaze-78909018d305ce4d.rmeta: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

crates/mccp-picoblaze/src/lib.rs:
crates/mccp-picoblaze/src/asm.rs:
crates/mccp-picoblaze/src/cpu.rs:
crates/mccp-picoblaze/src/isa.rs:
crates/mccp-picoblaze/src/profile.rs:
