/root/repo/target/release/deps/fig_offered_load-874bd75def73ad5c.d: crates/mccp-bench/src/bin/fig_offered_load.rs

/root/repo/target/release/deps/fig_offered_load-874bd75def73ad5c: crates/mccp-bench/src/bin/fig_offered_load.rs

crates/mccp-bench/src/bin/fig_offered_load.rs:
