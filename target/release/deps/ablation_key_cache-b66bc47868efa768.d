/root/repo/target/release/deps/ablation_key_cache-b66bc47868efa768.d: crates/mccp-bench/src/bin/ablation_key_cache.rs

/root/repo/target/release/deps/ablation_key_cache-b66bc47868efa768: crates/mccp-bench/src/bin/ablation_key_cache.rs

crates/mccp-bench/src/bin/ablation_key_cache.rs:
