/root/repo/target/release/deps/mccp_aes-1390b4e2b41be27f.d: crates/mccp-aes/src/lib.rs crates/mccp-aes/src/block.rs crates/mccp-aes/src/cipher.rs crates/mccp-aes/src/column_serial.rs crates/mccp-aes/src/key_schedule.rs crates/mccp-aes/src/modes/mod.rs crates/mccp-aes/src/modes/cbc.rs crates/mccp-aes/src/modes/cbc_mac.rs crates/mccp-aes/src/modes/ccm.rs crates/mccp-aes/src/modes/ctr.rs crates/mccp-aes/src/modes/ecb.rs crates/mccp-aes/src/modes/gcm.rs crates/mccp-aes/src/sbox.rs crates/mccp-aes/src/tables.rs crates/mccp-aes/src/twofish.rs crates/mccp-aes/src/whirlpool.rs

/root/repo/target/release/deps/libmccp_aes-1390b4e2b41be27f.rlib: crates/mccp-aes/src/lib.rs crates/mccp-aes/src/block.rs crates/mccp-aes/src/cipher.rs crates/mccp-aes/src/column_serial.rs crates/mccp-aes/src/key_schedule.rs crates/mccp-aes/src/modes/mod.rs crates/mccp-aes/src/modes/cbc.rs crates/mccp-aes/src/modes/cbc_mac.rs crates/mccp-aes/src/modes/ccm.rs crates/mccp-aes/src/modes/ctr.rs crates/mccp-aes/src/modes/ecb.rs crates/mccp-aes/src/modes/gcm.rs crates/mccp-aes/src/sbox.rs crates/mccp-aes/src/tables.rs crates/mccp-aes/src/twofish.rs crates/mccp-aes/src/whirlpool.rs

/root/repo/target/release/deps/libmccp_aes-1390b4e2b41be27f.rmeta: crates/mccp-aes/src/lib.rs crates/mccp-aes/src/block.rs crates/mccp-aes/src/cipher.rs crates/mccp-aes/src/column_serial.rs crates/mccp-aes/src/key_schedule.rs crates/mccp-aes/src/modes/mod.rs crates/mccp-aes/src/modes/cbc.rs crates/mccp-aes/src/modes/cbc_mac.rs crates/mccp-aes/src/modes/ccm.rs crates/mccp-aes/src/modes/ctr.rs crates/mccp-aes/src/modes/ecb.rs crates/mccp-aes/src/modes/gcm.rs crates/mccp-aes/src/sbox.rs crates/mccp-aes/src/tables.rs crates/mccp-aes/src/twofish.rs crates/mccp-aes/src/whirlpool.rs

crates/mccp-aes/src/lib.rs:
crates/mccp-aes/src/block.rs:
crates/mccp-aes/src/cipher.rs:
crates/mccp-aes/src/column_serial.rs:
crates/mccp-aes/src/key_schedule.rs:
crates/mccp-aes/src/modes/mod.rs:
crates/mccp-aes/src/modes/cbc.rs:
crates/mccp-aes/src/modes/cbc_mac.rs:
crates/mccp-aes/src/modes/ccm.rs:
crates/mccp-aes/src/modes/ctr.rs:
crates/mccp-aes/src/modes/ecb.rs:
crates/mccp-aes/src/modes/gcm.rs:
crates/mccp-aes/src/sbox.rs:
crates/mccp-aes/src/tables.rs:
crates/mccp-aes/src/twofish.rs:
crates/mccp-aes/src/whirlpool.rs:
