/root/repo/target/release/deps/fig_aad_fraction-24f6f8ad2954a9f7.d: crates/mccp-bench/src/bin/fig_aad_fraction.rs

/root/repo/target/release/deps/fig_aad_fraction-24f6f8ad2954a9f7: crates/mccp-bench/src/bin/fig_aad_fraction.rs

crates/mccp-bench/src/bin/fig_aad_fraction.rs:
