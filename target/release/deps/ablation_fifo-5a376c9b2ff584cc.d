/root/repo/target/release/deps/ablation_fifo-5a376c9b2ff584cc.d: crates/mccp-bench/src/bin/ablation_fifo.rs

/root/repo/target/release/deps/ablation_fifo-5a376c9b2ff584cc: crates/mccp-bench/src/bin/ablation_fifo.rs

crates/mccp-bench/src/bin/ablation_fifo.rs:
