/root/repo/target/release/deps/loop_cycles-a29993709ed0b31b.d: crates/mccp-bench/src/bin/loop_cycles.rs

/root/repo/target/release/deps/loop_cycles-a29993709ed0b31b: crates/mccp-bench/src/bin/loop_cycles.rs

crates/mccp-bench/src/bin/loop_cycles.rs:
