/root/repo/target/release/deps/fig_offered_load-69ed436352cfdacf.d: crates/mccp-bench/src/bin/fig_offered_load.rs

/root/repo/target/release/deps/fig_offered_load-69ed436352cfdacf: crates/mccp-bench/src/bin/fig_offered_load.rs

crates/mccp-bench/src/bin/fig_offered_load.rs:
