/root/repo/target/release/deps/fig_core_scaling-54ac8de979ee2ac9.d: crates/mccp-bench/src/bin/fig_core_scaling.rs

/root/repo/target/release/deps/fig_core_scaling-54ac8de979ee2ac9: crates/mccp-bench/src/bin/fig_core_scaling.rs

crates/mccp-bench/src/bin/fig_core_scaling.rs:
