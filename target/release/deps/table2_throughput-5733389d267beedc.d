/root/repo/target/release/deps/table2_throughput-5733389d267beedc.d: crates/mccp-bench/src/bin/table2_throughput.rs

/root/repo/target/release/deps/table2_throughput-5733389d267beedc: crates/mccp-bench/src/bin/table2_throughput.rs

crates/mccp-bench/src/bin/table2_throughput.rs:
