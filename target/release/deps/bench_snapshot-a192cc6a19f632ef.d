/root/repo/target/release/deps/bench_snapshot-a192cc6a19f632ef.d: crates/mccp-bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-a192cc6a19f632ef: crates/mccp-bench/src/bin/bench_snapshot.rs

crates/mccp-bench/src/bin/bench_snapshot.rs:
