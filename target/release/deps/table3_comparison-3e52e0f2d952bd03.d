/root/repo/target/release/deps/table3_comparison-3e52e0f2d952bd03.d: crates/mccp-bench/src/bin/table3_comparison.rs

/root/repo/target/release/deps/table3_comparison-3e52e0f2d952bd03: crates/mccp-bench/src/bin/table3_comparison.rs

crates/mccp-bench/src/bin/table3_comparison.rs:
