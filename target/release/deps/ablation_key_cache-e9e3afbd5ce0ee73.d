/root/repo/target/release/deps/ablation_key_cache-e9e3afbd5ce0ee73.d: crates/mccp-bench/src/bin/ablation_key_cache.rs

/root/repo/target/release/deps/ablation_key_cache-e9e3afbd5ce0ee73: crates/mccp-bench/src/bin/ablation_key_cache.rs

crates/mccp-bench/src/bin/ablation_key_cache.rs:
