/root/repo/target/release/deps/mccp_bench-1364ff82204764f6.d: crates/mccp-bench/src/lib.rs

/root/repo/target/release/deps/mccp_bench-1364ff82204764f6: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
