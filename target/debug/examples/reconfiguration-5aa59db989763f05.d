/root/repo/target/debug/examples/reconfiguration-5aa59db989763f05.d: examples/reconfiguration.rs

/root/repo/target/debug/examples/reconfiguration-5aa59db989763f05: examples/reconfiguration.rs

examples/reconfiguration.rs:
