/root/repo/target/debug/examples/firmware_profiler-5cd20e624d908bc7.d: examples/firmware_profiler.rs

/root/repo/target/debug/examples/firmware_profiler-5cd20e624d908bc7: examples/firmware_profiler.rs

examples/firmware_profiler.rs:
