/root/repo/target/debug/examples/ccm_two_core-3a8f9eea9f9b5b1a.d: examples/ccm_two_core.rs

/root/repo/target/debug/examples/ccm_two_core-3a8f9eea9f9b5b1a: examples/ccm_two_core.rs

examples/ccm_two_core.rs:
