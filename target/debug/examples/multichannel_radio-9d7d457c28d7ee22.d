/root/repo/target/debug/examples/multichannel_radio-9d7d457c28d7ee22.d: examples/multichannel_radio.rs

/root/repo/target/debug/examples/multichannel_radio-9d7d457c28d7ee22: examples/multichannel_radio.rs

examples/multichannel_radio.rs:
