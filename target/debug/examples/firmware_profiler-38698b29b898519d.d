/root/repo/target/debug/examples/firmware_profiler-38698b29b898519d.d: examples/firmware_profiler.rs

/root/repo/target/debug/examples/firmware_profiler-38698b29b898519d: examples/firmware_profiler.rs

examples/firmware_profiler.rs:
