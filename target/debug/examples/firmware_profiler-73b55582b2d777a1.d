/root/repo/target/debug/examples/firmware_profiler-73b55582b2d777a1.d: examples/firmware_profiler.rs Cargo.toml

/root/repo/target/debug/examples/libfirmware_profiler-73b55582b2d777a1.rmeta: examples/firmware_profiler.rs Cargo.toml

examples/firmware_profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
