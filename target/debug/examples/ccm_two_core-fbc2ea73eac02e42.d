/root/repo/target/debug/examples/ccm_two_core-fbc2ea73eac02e42.d: examples/ccm_two_core.rs Cargo.toml

/root/repo/target/debug/examples/libccm_two_core-fbc2ea73eac02e42.rmeta: examples/ccm_two_core.rs Cargo.toml

examples/ccm_two_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
