/root/repo/target/debug/examples/reconfiguration-c4c5e9355d341750.d: examples/reconfiguration.rs

/root/repo/target/debug/examples/reconfiguration-c4c5e9355d341750: examples/reconfiguration.rs

examples/reconfiguration.rs:
