/root/repo/target/debug/examples/quickstart-c001aca88d2f6737.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c001aca88d2f6737: examples/quickstart.rs

examples/quickstart.rs:
