/root/repo/target/debug/examples/quickstart-4b6e701d1977585e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4b6e701d1977585e: examples/quickstart.rs

examples/quickstart.rs:
