/root/repo/target/debug/examples/multichannel_radio-af0963eb09fd936d.d: examples/multichannel_radio.rs

/root/repo/target/debug/examples/multichannel_radio-af0963eb09fd936d: examples/multichannel_radio.rs

examples/multichannel_radio.rs:
