/root/repo/target/debug/examples/reconfiguration-3d6951afa0ea9ef3.d: examples/reconfiguration.rs Cargo.toml

/root/repo/target/debug/examples/libreconfiguration-3d6951afa0ea9ef3.rmeta: examples/reconfiguration.rs Cargo.toml

examples/reconfiguration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
