/root/repo/target/debug/examples/multichannel_radio-cb54e3af979e71df.d: examples/multichannel_radio.rs Cargo.toml

/root/repo/target/debug/examples/libmultichannel_radio-cb54e3af979e71df.rmeta: examples/multichannel_radio.rs Cargo.toml

examples/multichannel_radio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
