/root/repo/target/debug/examples/waveform-4fe892e87cf7b7d8.d: examples/waveform.rs Cargo.toml

/root/repo/target/debug/examples/libwaveform-4fe892e87cf7b7d8.rmeta: examples/waveform.rs Cargo.toml

examples/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
