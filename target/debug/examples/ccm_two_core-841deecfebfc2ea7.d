/root/repo/target/debug/examples/ccm_two_core-841deecfebfc2ea7.d: examples/ccm_two_core.rs

/root/repo/target/debug/examples/ccm_two_core-841deecfebfc2ea7: examples/ccm_two_core.rs

examples/ccm_two_core.rs:
