/root/repo/target/debug/examples/waveform-52075f90d6ef172a.d: examples/waveform.rs

/root/repo/target/debug/examples/waveform-52075f90d6ef172a: examples/waveform.rs

examples/waveform.rs:
