/root/repo/target/debug/examples/waveform-63c7bececbed1196.d: examples/waveform.rs

/root/repo/target/debug/examples/waveform-63c7bececbed1196: examples/waveform.rs

examples/waveform.rs:
