/root/repo/target/debug/deps/mccp_telemetry-f6c53cee61f6171d.d: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

/root/repo/target/debug/deps/mccp_telemetry-f6c53cee61f6171d: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

crates/mccp-telemetry/src/lib.rs:
crates/mccp-telemetry/src/event.rs:
crates/mccp-telemetry/src/export.rs:
crates/mccp-telemetry/src/metrics.rs:
crates/mccp-telemetry/src/span.rs:
crates/mccp-telemetry/src/vcd_bridge.rs:
