/root/repo/target/debug/deps/fig_aad_fraction-fe91cf54b44fe872.d: crates/mccp-bench/src/bin/fig_aad_fraction.rs

/root/repo/target/debug/deps/fig_aad_fraction-fe91cf54b44fe872: crates/mccp-bench/src/bin/fig_aad_fraction.rs

crates/mccp-bench/src/bin/fig_aad_fraction.rs:
