/root/repo/target/debug/deps/mccp_cryptounit-a567940ec8b68fa9.d: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

/root/repo/target/debug/deps/mccp_cryptounit-a567940ec8b68fa9: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

crates/mccp-cryptounit/src/lib.rs:
crates/mccp-cryptounit/src/engine.rs:
crates/mccp-cryptounit/src/isa.rs:
crates/mccp-cryptounit/src/timing.rs:
crates/mccp-cryptounit/src/unit.rs:
