/root/repo/target/debug/deps/telemetry_report-bde2a3ce98fd33e3.d: crates/mccp-bench/src/bin/telemetry_report.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_report-bde2a3ce98fd33e3.rmeta: crates/mccp-bench/src/bin/telemetry_report.rs Cargo.toml

crates/mccp-bench/src/bin/telemetry_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
