/root/repo/target/debug/deps/proptest-8f789f4fcf8d536e.d: vendor-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8f789f4fcf8d536e.rmeta: vendor-stubs/proptest/src/lib.rs

vendor-stubs/proptest/src/lib.rs:
