/root/repo/target/debug/deps/ablation_nop-a07019769ccaaa20.d: crates/mccp-bench/src/bin/ablation_nop.rs

/root/repo/target/debug/deps/ablation_nop-a07019769ccaaa20: crates/mccp-bench/src/bin/ablation_nop.rs

crates/mccp-bench/src/bin/ablation_nop.rs:
