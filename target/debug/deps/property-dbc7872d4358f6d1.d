/root/repo/target/debug/deps/property-dbc7872d4358f6d1.d: tests/property.rs

/root/repo/target/debug/deps/property-dbc7872d4358f6d1: tests/property.rs

tests/property.rs:
