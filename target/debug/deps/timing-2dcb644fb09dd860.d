/root/repo/target/debug/deps/timing-2dcb644fb09dd860.d: tests/timing.rs

/root/repo/target/debug/deps/timing-2dcb644fb09dd860: tests/timing.rs

tests/timing.rs:
