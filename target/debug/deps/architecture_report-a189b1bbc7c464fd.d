/root/repo/target/debug/deps/architecture_report-a189b1bbc7c464fd.d: crates/mccp-bench/src/bin/architecture_report.rs Cargo.toml

/root/repo/target/debug/deps/libarchitecture_report-a189b1bbc7c464fd.rmeta: crates/mccp-bench/src/bin/architecture_report.rs Cargo.toml

crates/mccp-bench/src/bin/architecture_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
