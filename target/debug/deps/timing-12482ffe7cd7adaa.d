/root/repo/target/debug/deps/timing-12482ffe7cd7adaa.d: tests/timing.rs

/root/repo/target/debug/deps/timing-12482ffe7cd7adaa: tests/timing.rs

tests/timing.rs:
