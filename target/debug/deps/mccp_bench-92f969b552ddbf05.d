/root/repo/target/debug/deps/mccp_bench-92f969b552ddbf05.d: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/libmccp_bench-92f969b552ddbf05.rlib: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/libmccp_bench-92f969b552ddbf05.rmeta: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
