/root/repo/target/debug/deps/telemetry_report-d055b3c0eaec39f4.d: crates/mccp-bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-d055b3c0eaec39f4: crates/mccp-bench/src/bin/telemetry_report.rs

crates/mccp-bench/src/bin/telemetry_report.rs:
