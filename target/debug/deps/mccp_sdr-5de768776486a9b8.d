/root/repo/target/debug/deps/mccp_sdr-5de768776486a9b8.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/mccp_sdr-5de768776486a9b8: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
