/root/repo/target/debug/deps/primitives-928551552a968d69.d: crates/mccp-bench/benches/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libprimitives-928551552a968d69.rmeta: crates/mccp-bench/benches/primitives.rs Cargo.toml

crates/mccp-bench/benches/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
