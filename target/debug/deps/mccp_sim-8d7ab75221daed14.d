/root/repo/target/debug/deps/mccp_sim-8d7ab75221daed14.d: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_sim-8d7ab75221daed14.rmeta: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs Cargo.toml

crates/mccp-sim/src/lib.rs:
crates/mccp-sim/src/bram.rs:
crates/mccp-sim/src/clocked.rs:
crates/mccp-sim/src/fifo.rs:
crates/mccp-sim/src/resources.rs:
crates/mccp-sim/src/shift_register.rs:
crates/mccp-sim/src/trace.rs:
crates/mccp-sim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
