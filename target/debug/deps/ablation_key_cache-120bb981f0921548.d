/root/repo/target/debug/deps/ablation_key_cache-120bb981f0921548.d: crates/mccp-bench/src/bin/ablation_key_cache.rs

/root/repo/target/debug/deps/ablation_key_cache-120bb981f0921548: crates/mccp-bench/src/bin/ablation_key_cache.rs

crates/mccp-bench/src/bin/ablation_key_cache.rs:
