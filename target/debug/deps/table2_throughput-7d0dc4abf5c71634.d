/root/repo/target/debug/deps/table2_throughput-7d0dc4abf5c71634.d: crates/mccp-bench/src/bin/table2_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_throughput-7d0dc4abf5c71634.rmeta: crates/mccp-bench/src/bin/table2_throughput.rs Cargo.toml

crates/mccp-bench/src/bin/table2_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
