/root/repo/target/debug/deps/bench_snapshot-b2df92aaab9c8c56.d: crates/mccp-bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-b2df92aaab9c8c56: crates/mccp-bench/src/bin/bench_snapshot.rs

crates/mccp-bench/src/bin/bench_snapshot.rs:
