/root/repo/target/debug/deps/soak-b6b88726f1f2272f.d: crates/mccp-bench/src/bin/soak.rs

/root/repo/target/debug/deps/soak-b6b88726f1f2272f: crates/mccp-bench/src/bin/soak.rs

crates/mccp-bench/src/bin/soak.rs:
