/root/repo/target/debug/deps/field_laws-ee6105e923d2d7b1.d: crates/mccp-gf128/tests/field_laws.rs Cargo.toml

/root/repo/target/debug/deps/libfield_laws-ee6105e923d2d7b1.rmeta: crates/mccp-gf128/tests/field_laws.rs Cargo.toml

crates/mccp-gf128/tests/field_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
