/root/repo/target/debug/deps/mccp-4a5279517c55b608.d: src/lib.rs

/root/repo/target/debug/deps/mccp-4a5279517c55b608: src/lib.rs

src/lib.rs:
