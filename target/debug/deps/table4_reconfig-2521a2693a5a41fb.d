/root/repo/target/debug/deps/table4_reconfig-2521a2693a5a41fb.d: crates/mccp-bench/src/bin/table4_reconfig.rs

/root/repo/target/debug/deps/table4_reconfig-2521a2693a5a41fb: crates/mccp-bench/src/bin/table4_reconfig.rs

crates/mccp-bench/src/bin/table4_reconfig.rs:
