/root/repo/target/debug/deps/mccp_sdr-a33c1ade5795f67b.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_sdr-a33c1ade5795f67b.rmeta: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs Cargo.toml

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
