/root/repo/target/debug/deps/mccp_sdr-dc03bc67b20a7a41.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/mccp_sdr-dc03bc67b20a7a41: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
