/root/repo/target/debug/deps/mccp_baselines-ff910bb92173b88c.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/libmccp_baselines-ff910bb92173b88c.rlib: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/libmccp_baselines-ff910bb92173b88c.rmeta: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
