/root/repo/target/debug/deps/reconfig-eba7721e8c65a560.d: tests/reconfig.rs

/root/repo/target/debug/deps/reconfig-eba7721e8c65a560: tests/reconfig.rs

tests/reconfig.rs:
