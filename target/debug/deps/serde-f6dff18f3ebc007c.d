/root/repo/target/debug/deps/serde-f6dff18f3ebc007c.d: vendor-stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f6dff18f3ebc007c.rlib: vendor-stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f6dff18f3ebc007c.rmeta: vendor-stubs/serde/src/lib.rs

vendor-stubs/serde/src/lib.rs:
