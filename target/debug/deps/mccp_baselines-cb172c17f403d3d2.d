/root/repo/target/debug/deps/mccp_baselines-cb172c17f403d3d2.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/libmccp_baselines-cb172c17f403d3d2.rlib: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/libmccp_baselines-cb172c17f403d3d2.rmeta: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
