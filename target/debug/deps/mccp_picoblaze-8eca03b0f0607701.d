/root/repo/target/debug/deps/mccp_picoblaze-8eca03b0f0607701.d: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

/root/repo/target/debug/deps/libmccp_picoblaze-8eca03b0f0607701.rlib: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

/root/repo/target/debug/deps/libmccp_picoblaze-8eca03b0f0607701.rmeta: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

crates/mccp-picoblaze/src/lib.rs:
crates/mccp-picoblaze/src/asm.rs:
crates/mccp-picoblaze/src/cpu.rs:
crates/mccp-picoblaze/src/isa.rs:
crates/mccp-picoblaze/src/profile.rs:
