/root/repo/target/debug/deps/fig_core_scaling-7a803bbd00e3b7f2.d: crates/mccp-bench/src/bin/fig_core_scaling.rs

/root/repo/target/debug/deps/fig_core_scaling-7a803bbd00e3b7f2: crates/mccp-bench/src/bin/fig_core_scaling.rs

crates/mccp-bench/src/bin/fig_core_scaling.rs:
