/root/repo/target/debug/deps/rand-7485fc8b4bdb459b.d: vendor-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-7485fc8b4bdb459b.rmeta: vendor-stubs/rand/src/lib.rs

vendor-stubs/rand/src/lib.rs:
