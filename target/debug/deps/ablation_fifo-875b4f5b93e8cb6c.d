/root/repo/target/debug/deps/ablation_fifo-875b4f5b93e8cb6c.d: crates/mccp-bench/src/bin/ablation_fifo.rs Cargo.toml

/root/repo/target/debug/deps/libablation_fifo-875b4f5b93e8cb6c.rmeta: crates/mccp-bench/src/bin/ablation_fifo.rs Cargo.toml

crates/mccp-bench/src/bin/ablation_fifo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
