/root/repo/target/debug/deps/mccp_bench-0d4d8048f33dfe9e.d: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/mccp_bench-0d4d8048f33dfe9e: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
