/root/repo/target/debug/deps/loop_cycles-ef6c65086f72451d.d: crates/mccp-bench/src/bin/loop_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libloop_cycles-ef6c65086f72451d.rmeta: crates/mccp-bench/src/bin/loop_cycles.rs Cargo.toml

crates/mccp-bench/src/bin/loop_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
