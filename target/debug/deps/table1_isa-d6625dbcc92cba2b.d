/root/repo/target/debug/deps/table1_isa-d6625dbcc92cba2b.d: crates/mccp-bench/src/bin/table1_isa.rs

/root/repo/target/debug/deps/table1_isa-d6625dbcc92cba2b: crates/mccp-bench/src/bin/table1_isa.rs

crates/mccp-bench/src/bin/table1_isa.rs:
