/root/repo/target/debug/deps/mccp_gf128-eff01f8caeed6dc3.d: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_gf128-eff01f8caeed6dc3.rmeta: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs Cargo.toml

crates/mccp-gf128/src/lib.rs:
crates/mccp-gf128/src/digit_serial.rs:
crates/mccp-gf128/src/element.rs:
crates/mccp-gf128/src/ghash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
