/root/repo/target/debug/deps/fig_core_scaling-72226ae1fea76b31.d: crates/mccp-bench/src/bin/fig_core_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig_core_scaling-72226ae1fea76b31.rmeta: crates/mccp-bench/src/bin/fig_core_scaling.rs Cargo.toml

crates/mccp-bench/src/bin/fig_core_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
