/root/repo/target/debug/deps/fig_aad_fraction-254c122e097bc8c0.d: crates/mccp-bench/src/bin/fig_aad_fraction.rs

/root/repo/target/debug/deps/fig_aad_fraction-254c122e097bc8c0: crates/mccp-bench/src/bin/fig_aad_fraction.rs

crates/mccp-bench/src/bin/fig_aad_fraction.rs:
