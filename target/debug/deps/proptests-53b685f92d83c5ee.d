/root/repo/target/debug/deps/proptests-53b685f92d83c5ee.d: crates/mccp-picoblaze/tests/proptests.rs

/root/repo/target/debug/deps/proptests-53b685f92d83c5ee: crates/mccp-picoblaze/tests/proptests.rs

crates/mccp-picoblaze/tests/proptests.rs:
