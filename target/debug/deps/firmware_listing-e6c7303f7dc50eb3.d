/root/repo/target/debug/deps/firmware_listing-e6c7303f7dc50eb3.d: crates/mccp-bench/src/bin/firmware_listing.rs Cargo.toml

/root/repo/target/debug/deps/libfirmware_listing-e6c7303f7dc50eb3.rmeta: crates/mccp-bench/src/bin/firmware_listing.rs Cargo.toml

crates/mccp-bench/src/bin/firmware_listing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
