/root/repo/target/debug/deps/proptests-d523ef3fe549791a.d: crates/mccp-sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d523ef3fe549791a.rmeta: crates/mccp-sim/tests/proptests.rs Cargo.toml

crates/mccp-sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
