/root/repo/target/debug/deps/table1_isa-6d8c3c301d563e9a.d: crates/mccp-bench/src/bin/table1_isa.rs

/root/repo/target/debug/deps/table1_isa-6d8c3c301d563e9a: crates/mccp-bench/src/bin/table1_isa.rs

crates/mccp-bench/src/bin/table1_isa.rs:
