/root/repo/target/debug/deps/mccp_baselines-8fb1340f4f1d1476.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/mccp_baselines-8fb1340f4f1d1476: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
