/root/repo/target/debug/deps/mccp_baselines-d0cc13b9051b47e3.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

/root/repo/target/debug/deps/mccp_baselines-d0cc13b9051b47e3: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
