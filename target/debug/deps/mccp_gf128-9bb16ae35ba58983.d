/root/repo/target/debug/deps/mccp_gf128-9bb16ae35ba58983.d: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

/root/repo/target/debug/deps/libmccp_gf128-9bb16ae35ba58983.rlib: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

/root/repo/target/debug/deps/libmccp_gf128-9bb16ae35ba58983.rmeta: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

crates/mccp-gf128/src/lib.rs:
crates/mccp-gf128/src/digit_serial.rs:
crates/mccp-gf128/src/element.rs:
crates/mccp-gf128/src/ghash.rs:
