/root/repo/target/debug/deps/reconfig-4890c4e7bd67931c.d: tests/reconfig.rs Cargo.toml

/root/repo/target/debug/deps/libreconfig-4890c4e7bd67931c.rmeta: tests/reconfig.rs Cargo.toml

tests/reconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
