/root/repo/target/debug/deps/security-3eb2c8c89a272eba.d: tests/security.rs

/root/repo/target/debug/deps/security-3eb2c8c89a272eba: tests/security.rs

tests/security.rs:
