/root/repo/target/debug/deps/cycle_identity-25aa791158187ad7.d: crates/mccp-core/tests/cycle_identity.rs Cargo.toml

/root/repo/target/debug/deps/libcycle_identity-25aa791158187ad7.rmeta: crates/mccp-core/tests/cycle_identity.rs Cargo.toml

crates/mccp-core/tests/cycle_identity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
