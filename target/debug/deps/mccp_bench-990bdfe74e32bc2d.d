/root/repo/target/debug/deps/mccp_bench-990bdfe74e32bc2d.d: crates/mccp-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_bench-990bdfe74e32bc2d.rmeta: crates/mccp-bench/src/lib.rs Cargo.toml

crates/mccp-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
