/root/repo/target/debug/deps/criterion-3f31c358759992eb.d: vendor-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3f31c358759992eb.rlib: vendor-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3f31c358759992eb.rmeta: vendor-stubs/criterion/src/lib.rs

vendor-stubs/criterion/src/lib.rs:
