/root/repo/target/debug/deps/mccp_telemetry-7b9b11c16c6d658e.d: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_telemetry-7b9b11c16c6d658e.rmeta: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs Cargo.toml

crates/mccp-telemetry/src/lib.rs:
crates/mccp-telemetry/src/event.rs:
crates/mccp-telemetry/src/export.rs:
crates/mccp-telemetry/src/metrics.rs:
crates/mccp-telemetry/src/span.rs:
crates/mccp-telemetry/src/vcd_bridge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
