/root/repo/target/debug/deps/ablation_fifo-f44d81900e1574fc.d: crates/mccp-bench/src/bin/ablation_fifo.rs

/root/repo/target/debug/deps/ablation_fifo-f44d81900e1574fc: crates/mccp-bench/src/bin/ablation_fifo.rs

crates/mccp-bench/src/bin/ablation_fifo.rs:
