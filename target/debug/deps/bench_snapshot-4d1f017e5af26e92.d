/root/repo/target/debug/deps/bench_snapshot-4d1f017e5af26e92.d: crates/mccp-bench/src/bin/bench_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libbench_snapshot-4d1f017e5af26e92.rmeta: crates/mccp-bench/src/bin/bench_snapshot.rs Cargo.toml

crates/mccp-bench/src/bin/bench_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
