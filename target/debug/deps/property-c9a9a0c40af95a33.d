/root/repo/target/debug/deps/property-c9a9a0c40af95a33.d: tests/property.rs Cargo.toml

/root/repo/target/debug/deps/libproperty-c9a9a0c40af95a33.rmeta: tests/property.rs Cargo.toml

tests/property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
