/root/repo/target/debug/deps/mccp_core-047d0700ae0e6466.d: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_core-047d0700ae0e6466.rmeta: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs Cargo.toml

crates/mccp-core/src/lib.rs:
crates/mccp-core/src/core_unit.rs:
crates/mccp-core/src/crossbar.rs:
crates/mccp-core/src/firmware.rs:
crates/mccp-core/src/format.rs:
crates/mccp-core/src/functional.rs:
crates/mccp-core/src/key.rs:
crates/mccp-core/src/mccp.rs:
crates/mccp-core/src/model.rs:
crates/mccp-core/src/protocol.rs:
crates/mccp-core/src/reconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
