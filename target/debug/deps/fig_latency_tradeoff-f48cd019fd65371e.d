/root/repo/target/debug/deps/fig_latency_tradeoff-f48cd019fd65371e.d: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs Cargo.toml

/root/repo/target/debug/deps/libfig_latency_tradeoff-f48cd019fd65371e.rmeta: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs Cargo.toml

crates/mccp-bench/src/bin/fig_latency_tradeoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
