/root/repo/target/debug/deps/proptests-dd2f022c5123fc02.d: crates/mccp-aes/tests/proptests.rs

/root/repo/target/debug/deps/proptests-dd2f022c5123fc02: crates/mccp-aes/tests/proptests.rs

crates/mccp-aes/tests/proptests.rs:
