/root/repo/target/debug/deps/loop_cycles-cc8ee53d73d70fa0.d: crates/mccp-bench/src/bin/loop_cycles.rs

/root/repo/target/debug/deps/loop_cycles-cc8ee53d73d70fa0: crates/mccp-bench/src/bin/loop_cycles.rs

crates/mccp-bench/src/bin/loop_cycles.rs:
