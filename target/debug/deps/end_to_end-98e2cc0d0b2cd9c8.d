/root/repo/target/debug/deps/end_to_end-98e2cc0d0b2cd9c8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-98e2cc0d0b2cd9c8: tests/end_to_end.rs

tests/end_to_end.rs:
