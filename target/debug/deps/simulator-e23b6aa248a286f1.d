/root/repo/target/debug/deps/simulator-e23b6aa248a286f1.d: crates/mccp-bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-e23b6aa248a286f1.rmeta: crates/mccp-bench/benches/simulator.rs Cargo.toml

crates/mccp-bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
