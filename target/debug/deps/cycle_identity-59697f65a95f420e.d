/root/repo/target/debug/deps/cycle_identity-59697f65a95f420e.d: crates/mccp-core/tests/cycle_identity.rs

/root/repo/target/debug/deps/cycle_identity-59697f65a95f420e: crates/mccp-core/tests/cycle_identity.rs

crates/mccp-core/tests/cycle_identity.rs:
