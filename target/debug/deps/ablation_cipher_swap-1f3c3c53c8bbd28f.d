/root/repo/target/debug/deps/ablation_cipher_swap-1f3c3c53c8bbd28f.d: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

/root/repo/target/debug/deps/ablation_cipher_swap-1f3c3c53c8bbd28f: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

crates/mccp-bench/src/bin/ablation_cipher_swap.rs:
