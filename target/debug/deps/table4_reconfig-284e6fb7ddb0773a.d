/root/repo/target/debug/deps/table4_reconfig-284e6fb7ddb0773a.d: crates/mccp-bench/src/bin/table4_reconfig.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_reconfig-284e6fb7ddb0773a.rmeta: crates/mccp-bench/src/bin/table4_reconfig.rs Cargo.toml

crates/mccp-bench/src/bin/table4_reconfig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
