/root/repo/target/debug/deps/mccp_cryptounit-bc7f17ee530530b2.d: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_cryptounit-bc7f17ee530530b2.rmeta: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs Cargo.toml

crates/mccp-cryptounit/src/lib.rs:
crates/mccp-cryptounit/src/engine.rs:
crates/mccp-cryptounit/src/isa.rs:
crates/mccp-cryptounit/src/timing.rs:
crates/mccp-cryptounit/src/unit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
