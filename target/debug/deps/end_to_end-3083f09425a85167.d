/root/repo/target/debug/deps/end_to_end-3083f09425a85167.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3083f09425a85167: tests/end_to_end.rs

tests/end_to_end.rs:
