/root/repo/target/debug/deps/table4_reconfig-01c21b24a36d0953.d: crates/mccp-bench/src/bin/table4_reconfig.rs

/root/repo/target/debug/deps/table4_reconfig-01c21b24a36d0953: crates/mccp-bench/src/bin/table4_reconfig.rs

crates/mccp-bench/src/bin/table4_reconfig.rs:
