/root/repo/target/debug/deps/fig_packet_sweep-e635956a6371a65a.d: crates/mccp-bench/src/bin/fig_packet_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig_packet_sweep-e635956a6371a65a.rmeta: crates/mccp-bench/src/bin/fig_packet_sweep.rs Cargo.toml

crates/mccp-bench/src/bin/fig_packet_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
