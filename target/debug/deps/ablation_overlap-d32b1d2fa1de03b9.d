/root/repo/target/debug/deps/ablation_overlap-d32b1d2fa1de03b9.d: crates/mccp-bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-d32b1d2fa1de03b9: crates/mccp-bench/src/bin/ablation_overlap.rs

crates/mccp-bench/src/bin/ablation_overlap.rs:
