/root/repo/target/debug/deps/ablation_cipher_swap-9b3e7b75329e8e44.d: crates/mccp-bench/src/bin/ablation_cipher_swap.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cipher_swap-9b3e7b75329e8e44.rmeta: crates/mccp-bench/src/bin/ablation_cipher_swap.rs Cargo.toml

crates/mccp-bench/src/bin/ablation_cipher_swap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
