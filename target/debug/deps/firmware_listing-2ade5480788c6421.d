/root/repo/target/debug/deps/firmware_listing-2ade5480788c6421.d: crates/mccp-bench/src/bin/firmware_listing.rs Cargo.toml

/root/repo/target/debug/deps/libfirmware_listing-2ade5480788c6421.rmeta: crates/mccp-bench/src/bin/firmware_listing.rs Cargo.toml

crates/mccp-bench/src/bin/firmware_listing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
