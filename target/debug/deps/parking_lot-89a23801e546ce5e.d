/root/repo/target/debug/deps/parking_lot-89a23801e546ce5e.d: vendor-stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-89a23801e546ce5e.rmeta: vendor-stubs/parking_lot/src/lib.rs

vendor-stubs/parking_lot/src/lib.rs:
