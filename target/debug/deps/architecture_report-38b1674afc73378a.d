/root/repo/target/debug/deps/architecture_report-38b1674afc73378a.d: crates/mccp-bench/src/bin/architecture_report.rs

/root/repo/target/debug/deps/architecture_report-38b1674afc73378a: crates/mccp-bench/src/bin/architecture_report.rs

crates/mccp-bench/src/bin/architecture_report.rs:
