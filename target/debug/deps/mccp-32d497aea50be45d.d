/root/repo/target/debug/deps/mccp-32d497aea50be45d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmccp-32d497aea50be45d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
