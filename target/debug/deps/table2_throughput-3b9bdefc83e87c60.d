/root/repo/target/debug/deps/table2_throughput-3b9bdefc83e87c60.d: crates/mccp-bench/src/bin/table2_throughput.rs

/root/repo/target/debug/deps/table2_throughput-3b9bdefc83e87c60: crates/mccp-bench/src/bin/table2_throughput.rs

crates/mccp-bench/src/bin/table2_throughput.rs:
