/root/repo/target/debug/deps/telemetry_report-a39414f6ffe3a1d0.d: crates/mccp-bench/src/bin/telemetry_report.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_report-a39414f6ffe3a1d0.rmeta: crates/mccp-bench/src/bin/telemetry_report.rs Cargo.toml

crates/mccp-bench/src/bin/telemetry_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
