/root/repo/target/debug/deps/proptests-492aeb0ecc5cebc6.d: crates/mccp-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-492aeb0ecc5cebc6: crates/mccp-sim/tests/proptests.rs

crates/mccp-sim/tests/proptests.rs:
