/root/repo/target/debug/deps/ablation_key_cache-ab68e9a7f4efe9a7.d: crates/mccp-bench/src/bin/ablation_key_cache.rs

/root/repo/target/debug/deps/ablation_key_cache-ab68e9a7f4efe9a7: crates/mccp-bench/src/bin/ablation_key_cache.rs

crates/mccp-bench/src/bin/ablation_key_cache.rs:
