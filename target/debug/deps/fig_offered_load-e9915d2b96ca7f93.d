/root/repo/target/debug/deps/fig_offered_load-e9915d2b96ca7f93.d: crates/mccp-bench/src/bin/fig_offered_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig_offered_load-e9915d2b96ca7f93.rmeta: crates/mccp-bench/src/bin/fig_offered_load.rs Cargo.toml

crates/mccp-bench/src/bin/fig_offered_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
