/root/repo/target/debug/deps/ablation_cipher_swap-78c69802b558effe.d: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

/root/repo/target/debug/deps/ablation_cipher_swap-78c69802b558effe: crates/mccp-bench/src/bin/ablation_cipher_swap.rs

crates/mccp-bench/src/bin/ablation_cipher_swap.rs:
