/root/repo/target/debug/deps/ablation_nop-675e2cb39203d329.d: crates/mccp-bench/src/bin/ablation_nop.rs

/root/repo/target/debug/deps/ablation_nop-675e2cb39203d329: crates/mccp-bench/src/bin/ablation_nop.rs

crates/mccp-bench/src/bin/ablation_nop.rs:
