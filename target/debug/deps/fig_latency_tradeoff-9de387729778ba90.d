/root/repo/target/debug/deps/fig_latency_tradeoff-9de387729778ba90.d: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

/root/repo/target/debug/deps/fig_latency_tradeoff-9de387729778ba90: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

crates/mccp-bench/src/bin/fig_latency_tradeoff.rs:
