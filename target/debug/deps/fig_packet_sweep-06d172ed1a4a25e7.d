/root/repo/target/debug/deps/fig_packet_sweep-06d172ed1a4a25e7.d: crates/mccp-bench/src/bin/fig_packet_sweep.rs

/root/repo/target/debug/deps/fig_packet_sweep-06d172ed1a4a25e7: crates/mccp-bench/src/bin/fig_packet_sweep.rs

crates/mccp-bench/src/bin/fig_packet_sweep.rs:
