/root/repo/target/debug/deps/proptests-c5066547f2115594.d: crates/mccp-aes/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c5066547f2115594.rmeta: crates/mccp-aes/tests/proptests.rs Cargo.toml

crates/mccp-aes/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
