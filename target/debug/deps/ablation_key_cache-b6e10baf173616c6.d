/root/repo/target/debug/deps/ablation_key_cache-b6e10baf173616c6.d: crates/mccp-bench/src/bin/ablation_key_cache.rs Cargo.toml

/root/repo/target/debug/deps/libablation_key_cache-b6e10baf173616c6.rmeta: crates/mccp-bench/src/bin/ablation_key_cache.rs Cargo.toml

crates/mccp-bench/src/bin/ablation_key_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
