/root/repo/target/debug/deps/table1_isa-2f5ed59f4db77346.d: crates/mccp-bench/src/bin/table1_isa.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_isa-2f5ed59f4db77346.rmeta: crates/mccp-bench/src/bin/table1_isa.rs Cargo.toml

crates/mccp-bench/src/bin/table1_isa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
