/root/repo/target/debug/deps/architecture_report-8d91ed42f90f41be.d: crates/mccp-bench/src/bin/architecture_report.rs Cargo.toml

/root/repo/target/debug/deps/libarchitecture_report-8d91ed42f90f41be.rmeta: crates/mccp-bench/src/bin/architecture_report.rs Cargo.toml

crates/mccp-bench/src/bin/architecture_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
