/root/repo/target/debug/deps/firmware_listing-81bfd77f4309b5a6.d: crates/mccp-bench/src/bin/firmware_listing.rs

/root/repo/target/debug/deps/firmware_listing-81bfd77f4309b5a6: crates/mccp-bench/src/bin/firmware_listing.rs

crates/mccp-bench/src/bin/firmware_listing.rs:
