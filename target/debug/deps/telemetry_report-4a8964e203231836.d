/root/repo/target/debug/deps/telemetry_report-4a8964e203231836.d: crates/mccp-bench/src/bin/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-4a8964e203231836: crates/mccp-bench/src/bin/telemetry_report.rs

crates/mccp-bench/src/bin/telemetry_report.rs:
