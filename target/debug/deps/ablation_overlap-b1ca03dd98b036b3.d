/root/repo/target/debug/deps/ablation_overlap-b1ca03dd98b036b3.d: crates/mccp-bench/src/bin/ablation_overlap.rs

/root/repo/target/debug/deps/ablation_overlap-b1ca03dd98b036b3: crates/mccp-bench/src/bin/ablation_overlap.rs

crates/mccp-bench/src/bin/ablation_overlap.rs:
