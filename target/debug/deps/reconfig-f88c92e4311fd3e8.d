/root/repo/target/debug/deps/reconfig-f88c92e4311fd3e8.d: tests/reconfig.rs

/root/repo/target/debug/deps/reconfig-f88c92e4311fd3e8: tests/reconfig.rs

tests/reconfig.rs:
