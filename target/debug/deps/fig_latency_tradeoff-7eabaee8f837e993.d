/root/repo/target/debug/deps/fig_latency_tradeoff-7eabaee8f837e993.d: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

/root/repo/target/debug/deps/fig_latency_tradeoff-7eabaee8f837e993: crates/mccp-bench/src/bin/fig_latency_tradeoff.rs

crates/mccp-bench/src/bin/fig_latency_tradeoff.rs:
