/root/repo/target/debug/deps/mccp_sim-759b0f130a5efb07.d: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

/root/repo/target/debug/deps/libmccp_sim-759b0f130a5efb07.rlib: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

/root/repo/target/debug/deps/libmccp_sim-759b0f130a5efb07.rmeta: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

crates/mccp-sim/src/lib.rs:
crates/mccp-sim/src/bram.rs:
crates/mccp-sim/src/clocked.rs:
crates/mccp-sim/src/fifo.rs:
crates/mccp-sim/src/resources.rs:
crates/mccp-sim/src/shift_register.rs:
crates/mccp-sim/src/trace.rs:
crates/mccp-sim/src/vcd.rs:
