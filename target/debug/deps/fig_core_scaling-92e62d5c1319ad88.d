/root/repo/target/debug/deps/fig_core_scaling-92e62d5c1319ad88.d: crates/mccp-bench/src/bin/fig_core_scaling.rs

/root/repo/target/debug/deps/fig_core_scaling-92e62d5c1319ad88: crates/mccp-bench/src/bin/fig_core_scaling.rs

crates/mccp-bench/src/bin/fig_core_scaling.rs:
