/root/repo/target/debug/deps/mccp_aes-4db42b0e2a4cf666.d: crates/mccp-aes/src/lib.rs crates/mccp-aes/src/block.rs crates/mccp-aes/src/cipher.rs crates/mccp-aes/src/column_serial.rs crates/mccp-aes/src/key_schedule.rs crates/mccp-aes/src/modes/mod.rs crates/mccp-aes/src/modes/cbc.rs crates/mccp-aes/src/modes/cbc_mac.rs crates/mccp-aes/src/modes/ccm.rs crates/mccp-aes/src/modes/ctr.rs crates/mccp-aes/src/modes/ecb.rs crates/mccp-aes/src/modes/gcm.rs crates/mccp-aes/src/sbox.rs crates/mccp-aes/src/tables.rs crates/mccp-aes/src/twofish.rs crates/mccp-aes/src/whirlpool.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_aes-4db42b0e2a4cf666.rmeta: crates/mccp-aes/src/lib.rs crates/mccp-aes/src/block.rs crates/mccp-aes/src/cipher.rs crates/mccp-aes/src/column_serial.rs crates/mccp-aes/src/key_schedule.rs crates/mccp-aes/src/modes/mod.rs crates/mccp-aes/src/modes/cbc.rs crates/mccp-aes/src/modes/cbc_mac.rs crates/mccp-aes/src/modes/ccm.rs crates/mccp-aes/src/modes/ctr.rs crates/mccp-aes/src/modes/ecb.rs crates/mccp-aes/src/modes/gcm.rs crates/mccp-aes/src/sbox.rs crates/mccp-aes/src/tables.rs crates/mccp-aes/src/twofish.rs crates/mccp-aes/src/whirlpool.rs Cargo.toml

crates/mccp-aes/src/lib.rs:
crates/mccp-aes/src/block.rs:
crates/mccp-aes/src/cipher.rs:
crates/mccp-aes/src/column_serial.rs:
crates/mccp-aes/src/key_schedule.rs:
crates/mccp-aes/src/modes/mod.rs:
crates/mccp-aes/src/modes/cbc.rs:
crates/mccp-aes/src/modes/cbc_mac.rs:
crates/mccp-aes/src/modes/ccm.rs:
crates/mccp-aes/src/modes/ctr.rs:
crates/mccp-aes/src/modes/ecb.rs:
crates/mccp-aes/src/modes/gcm.rs:
crates/mccp-aes/src/sbox.rs:
crates/mccp-aes/src/tables.rs:
crates/mccp-aes/src/twofish.rs:
crates/mccp-aes/src/whirlpool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
