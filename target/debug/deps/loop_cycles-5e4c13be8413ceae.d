/root/repo/target/debug/deps/loop_cycles-5e4c13be8413ceae.d: crates/mccp-bench/src/bin/loop_cycles.rs

/root/repo/target/debug/deps/loop_cycles-5e4c13be8413ceae: crates/mccp-bench/src/bin/loop_cycles.rs

crates/mccp-bench/src/bin/loop_cycles.rs:
