/root/repo/target/debug/deps/mccp_telemetry-81dd5cebf1829348.d: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

/root/repo/target/debug/deps/libmccp_telemetry-81dd5cebf1829348.rlib: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

/root/repo/target/debug/deps/libmccp_telemetry-81dd5cebf1829348.rmeta: crates/mccp-telemetry/src/lib.rs crates/mccp-telemetry/src/event.rs crates/mccp-telemetry/src/export.rs crates/mccp-telemetry/src/metrics.rs crates/mccp-telemetry/src/span.rs crates/mccp-telemetry/src/vcd_bridge.rs

crates/mccp-telemetry/src/lib.rs:
crates/mccp-telemetry/src/event.rs:
crates/mccp-telemetry/src/export.rs:
crates/mccp-telemetry/src/metrics.rs:
crates/mccp-telemetry/src/span.rs:
crates/mccp-telemetry/src/vcd_bridge.rs:
