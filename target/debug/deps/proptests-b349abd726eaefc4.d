/root/repo/target/debug/deps/proptests-b349abd726eaefc4.d: crates/mccp-picoblaze/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-b349abd726eaefc4.rmeta: crates/mccp-picoblaze/tests/proptests.rs Cargo.toml

crates/mccp-picoblaze/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
