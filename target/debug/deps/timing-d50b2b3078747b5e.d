/root/repo/target/debug/deps/timing-d50b2b3078747b5e.d: tests/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-d50b2b3078747b5e.rmeta: tests/timing.rs Cargo.toml

tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
