/root/repo/target/debug/deps/proptest-16d09db02bea72e1.d: vendor-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-16d09db02bea72e1.rlib: vendor-stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-16d09db02bea72e1.rmeta: vendor-stubs/proptest/src/lib.rs

vendor-stubs/proptest/src/lib.rs:
