/root/repo/target/debug/deps/mccp_bench-41b0dc921f953d15.d: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/libmccp_bench-41b0dc921f953d15.rlib: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/libmccp_bench-41b0dc921f953d15.rmeta: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
