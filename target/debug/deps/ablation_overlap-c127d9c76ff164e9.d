/root/repo/target/debug/deps/ablation_overlap-c127d9c76ff164e9.d: crates/mccp-bench/src/bin/ablation_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libablation_overlap-c127d9c76ff164e9.rmeta: crates/mccp-bench/src/bin/ablation_overlap.rs Cargo.toml

crates/mccp-bench/src/bin/ablation_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
