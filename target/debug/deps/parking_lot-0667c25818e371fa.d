/root/repo/target/debug/deps/parking_lot-0667c25818e371fa.d: vendor-stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0667c25818e371fa.rlib: vendor-stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0667c25818e371fa.rmeta: vendor-stubs/parking_lot/src/lib.rs

vendor-stubs/parking_lot/src/lib.rs:
