/root/repo/target/debug/deps/soak-361d8fe41c040f7c.d: crates/mccp-bench/src/bin/soak.rs

/root/repo/target/debug/deps/soak-361d8fe41c040f7c: crates/mccp-bench/src/bin/soak.rs

crates/mccp-bench/src/bin/soak.rs:
