/root/repo/target/debug/deps/fig_offered_load-1f9634b02e3f29bb.d: crates/mccp-bench/src/bin/fig_offered_load.rs

/root/repo/target/debug/deps/fig_offered_load-1f9634b02e3f29bb: crates/mccp-bench/src/bin/fig_offered_load.rs

crates/mccp-bench/src/bin/fig_offered_load.rs:
