/root/repo/target/debug/deps/property-6d2b775b310f53cf.d: tests/property.rs

/root/repo/target/debug/deps/property-6d2b775b310f53cf: tests/property.rs

tests/property.rs:
