/root/repo/target/debug/deps/crossbeam-bdc1e4d7e1d04afc.d: vendor-stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-bdc1e4d7e1d04afc.rlib: vendor-stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-bdc1e4d7e1d04afc.rmeta: vendor-stubs/crossbeam/src/lib.rs

vendor-stubs/crossbeam/src/lib.rs:
