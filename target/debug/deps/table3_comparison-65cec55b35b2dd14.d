/root/repo/target/debug/deps/table3_comparison-65cec55b35b2dd14.d: crates/mccp-bench/src/bin/table3_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_comparison-65cec55b35b2dd14.rmeta: crates/mccp-bench/src/bin/table3_comparison.rs Cargo.toml

crates/mccp-bench/src/bin/table3_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
