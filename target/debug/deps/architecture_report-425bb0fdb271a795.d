/root/repo/target/debug/deps/architecture_report-425bb0fdb271a795.d: crates/mccp-bench/src/bin/architecture_report.rs

/root/repo/target/debug/deps/architecture_report-425bb0fdb271a795: crates/mccp-bench/src/bin/architecture_report.rs

crates/mccp-bench/src/bin/architecture_report.rs:
