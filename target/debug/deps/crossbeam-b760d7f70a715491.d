/root/repo/target/debug/deps/crossbeam-b760d7f70a715491.d: vendor-stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-b760d7f70a715491.rmeta: vendor-stubs/crossbeam/src/lib.rs

vendor-stubs/crossbeam/src/lib.rs:
