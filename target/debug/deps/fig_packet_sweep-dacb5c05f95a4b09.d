/root/repo/target/debug/deps/fig_packet_sweep-dacb5c05f95a4b09.d: crates/mccp-bench/src/bin/fig_packet_sweep.rs

/root/repo/target/debug/deps/fig_packet_sweep-dacb5c05f95a4b09: crates/mccp-bench/src/bin/fig_packet_sweep.rs

crates/mccp-bench/src/bin/fig_packet_sweep.rs:
