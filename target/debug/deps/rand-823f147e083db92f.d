/root/repo/target/debug/deps/rand-823f147e083db92f.d: vendor-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-823f147e083db92f.rlib: vendor-stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-823f147e083db92f.rmeta: vendor-stubs/rand/src/lib.rs

vendor-stubs/rand/src/lib.rs:
