/root/repo/target/debug/deps/functional_throughput-48adf73b7b5a8319.d: crates/mccp-bench/benches/functional_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_throughput-48adf73b7b5a8319.rmeta: crates/mccp-bench/benches/functional_throughput.rs Cargo.toml

crates/mccp-bench/benches/functional_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
