/root/repo/target/debug/deps/ablation_nop-8785f0519d14a10f.d: crates/mccp-bench/src/bin/ablation_nop.rs Cargo.toml

/root/repo/target/debug/deps/libablation_nop-8785f0519d14a10f.rmeta: crates/mccp-bench/src/bin/ablation_nop.rs Cargo.toml

crates/mccp-bench/src/bin/ablation_nop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
