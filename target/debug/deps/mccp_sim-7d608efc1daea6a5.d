/root/repo/target/debug/deps/mccp_sim-7d608efc1daea6a5.d: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

/root/repo/target/debug/deps/mccp_sim-7d608efc1daea6a5: crates/mccp-sim/src/lib.rs crates/mccp-sim/src/bram.rs crates/mccp-sim/src/clocked.rs crates/mccp-sim/src/fifo.rs crates/mccp-sim/src/resources.rs crates/mccp-sim/src/shift_register.rs crates/mccp-sim/src/trace.rs crates/mccp-sim/src/vcd.rs

crates/mccp-sim/src/lib.rs:
crates/mccp-sim/src/bram.rs:
crates/mccp-sim/src/clocked.rs:
crates/mccp-sim/src/fifo.rs:
crates/mccp-sim/src/resources.rs:
crates/mccp-sim/src/shift_register.rs:
crates/mccp-sim/src/trace.rs:
crates/mccp-sim/src/vcd.rs:
