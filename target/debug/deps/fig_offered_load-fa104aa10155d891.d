/root/repo/target/debug/deps/fig_offered_load-fa104aa10155d891.d: crates/mccp-bench/src/bin/fig_offered_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig_offered_load-fa104aa10155d891.rmeta: crates/mccp-bench/src/bin/fig_offered_load.rs Cargo.toml

crates/mccp-bench/src/bin/fig_offered_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
