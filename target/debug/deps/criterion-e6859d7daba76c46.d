/root/repo/target/debug/deps/criterion-e6859d7daba76c46.d: vendor-stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e6859d7daba76c46.rmeta: vendor-stubs/criterion/src/lib.rs

vendor-stubs/criterion/src/lib.rs:
