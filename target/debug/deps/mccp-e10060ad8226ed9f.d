/root/repo/target/debug/deps/mccp-e10060ad8226ed9f.d: src/lib.rs

/root/repo/target/debug/deps/libmccp-e10060ad8226ed9f.rlib: src/lib.rs

/root/repo/target/debug/deps/libmccp-e10060ad8226ed9f.rmeta: src/lib.rs

src/lib.rs:
