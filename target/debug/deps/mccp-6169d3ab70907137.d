/root/repo/target/debug/deps/mccp-6169d3ab70907137.d: src/lib.rs

/root/repo/target/debug/deps/mccp-6169d3ab70907137: src/lib.rs

src/lib.rs:
