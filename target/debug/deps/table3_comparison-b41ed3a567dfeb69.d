/root/repo/target/debug/deps/table3_comparison-b41ed3a567dfeb69.d: crates/mccp-bench/src/bin/table3_comparison.rs

/root/repo/target/debug/deps/table3_comparison-b41ed3a567dfeb69: crates/mccp-bench/src/bin/table3_comparison.rs

crates/mccp-bench/src/bin/table3_comparison.rs:
