/root/repo/target/debug/deps/table2_throughput-607a7bf463cbf033.d: crates/mccp-bench/src/bin/table2_throughput.rs

/root/repo/target/debug/deps/table2_throughput-607a7bf463cbf033: crates/mccp-bench/src/bin/table2_throughput.rs

crates/mccp-bench/src/bin/table2_throughput.rs:
