/root/repo/target/debug/deps/firmware_listing-09d34374a4e11fe1.d: crates/mccp-bench/src/bin/firmware_listing.rs

/root/repo/target/debug/deps/firmware_listing-09d34374a4e11fe1: crates/mccp-bench/src/bin/firmware_listing.rs

crates/mccp-bench/src/bin/firmware_listing.rs:
