/root/repo/target/debug/deps/loop_cycles-3e5b784f5591e017.d: crates/mccp-bench/src/bin/loop_cycles.rs Cargo.toml

/root/repo/target/debug/deps/libloop_cycles-3e5b784f5591e017.rmeta: crates/mccp-bench/src/bin/loop_cycles.rs Cargo.toml

crates/mccp-bench/src/bin/loop_cycles.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
