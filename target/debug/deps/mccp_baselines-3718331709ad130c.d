/root/repo/target/debug/deps/mccp_baselines-3718331709ad130c.d: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_baselines-3718331709ad130c.rmeta: crates/mccp-baselines/src/lib.rs crates/mccp-baselines/src/dual_ccm.rs crates/mccp-baselines/src/mono.rs crates/mccp-baselines/src/pipelined_gcm.rs crates/mccp-baselines/src/table3.rs Cargo.toml

crates/mccp-baselines/src/lib.rs:
crates/mccp-baselines/src/dual_ccm.rs:
crates/mccp-baselines/src/mono.rs:
crates/mccp-baselines/src/pipelined_gcm.rs:
crates/mccp-baselines/src/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
