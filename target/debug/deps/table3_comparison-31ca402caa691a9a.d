/root/repo/target/debug/deps/table3_comparison-31ca402caa691a9a.d: crates/mccp-bench/src/bin/table3_comparison.rs

/root/repo/target/debug/deps/table3_comparison-31ca402caa691a9a: crates/mccp-bench/src/bin/table3_comparison.rs

crates/mccp-bench/src/bin/table3_comparison.rs:
