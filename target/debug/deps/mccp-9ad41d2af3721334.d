/root/repo/target/debug/deps/mccp-9ad41d2af3721334.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmccp-9ad41d2af3721334.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
