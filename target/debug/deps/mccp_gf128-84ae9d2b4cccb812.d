/root/repo/target/debug/deps/mccp_gf128-84ae9d2b4cccb812.d: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

/root/repo/target/debug/deps/mccp_gf128-84ae9d2b4cccb812: crates/mccp-gf128/src/lib.rs crates/mccp-gf128/src/digit_serial.rs crates/mccp-gf128/src/element.rs crates/mccp-gf128/src/ghash.rs

crates/mccp-gf128/src/lib.rs:
crates/mccp-gf128/src/digit_serial.rs:
crates/mccp-gf128/src/element.rs:
crates/mccp-gf128/src/ghash.rs:
