/root/repo/target/debug/deps/mccp_core-0f4786dda09514dd.d: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

/root/repo/target/debug/deps/libmccp_core-0f4786dda09514dd.rlib: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

/root/repo/target/debug/deps/libmccp_core-0f4786dda09514dd.rmeta: crates/mccp-core/src/lib.rs crates/mccp-core/src/core_unit.rs crates/mccp-core/src/crossbar.rs crates/mccp-core/src/firmware.rs crates/mccp-core/src/format.rs crates/mccp-core/src/functional.rs crates/mccp-core/src/key.rs crates/mccp-core/src/mccp.rs crates/mccp-core/src/model.rs crates/mccp-core/src/protocol.rs crates/mccp-core/src/reconfig.rs

crates/mccp-core/src/lib.rs:
crates/mccp-core/src/core_unit.rs:
crates/mccp-core/src/crossbar.rs:
crates/mccp-core/src/firmware.rs:
crates/mccp-core/src/format.rs:
crates/mccp-core/src/functional.rs:
crates/mccp-core/src/key.rs:
crates/mccp-core/src/mccp.rs:
crates/mccp-core/src/model.rs:
crates/mccp-core/src/protocol.rs:
crates/mccp-core/src/reconfig.rs:
