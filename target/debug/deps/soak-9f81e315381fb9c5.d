/root/repo/target/debug/deps/soak-9f81e315381fb9c5.d: crates/mccp-bench/src/bin/soak.rs

/root/repo/target/debug/deps/soak-9f81e315381fb9c5: crates/mccp-bench/src/bin/soak.rs

crates/mccp-bench/src/bin/soak.rs:
