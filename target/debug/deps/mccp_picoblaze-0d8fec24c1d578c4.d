/root/repo/target/debug/deps/mccp_picoblaze-0d8fec24c1d578c4.d: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

/root/repo/target/debug/deps/mccp_picoblaze-0d8fec24c1d578c4: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs

crates/mccp-picoblaze/src/lib.rs:
crates/mccp-picoblaze/src/asm.rs:
crates/mccp-picoblaze/src/cpu.rs:
crates/mccp-picoblaze/src/isa.rs:
crates/mccp-picoblaze/src/profile.rs:
