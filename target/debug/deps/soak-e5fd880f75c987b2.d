/root/repo/target/debug/deps/soak-e5fd880f75c987b2.d: crates/mccp-bench/src/bin/soak.rs Cargo.toml

/root/repo/target/debug/deps/libsoak-e5fd880f75c987b2.rmeta: crates/mccp-bench/src/bin/soak.rs Cargo.toml

crates/mccp-bench/src/bin/soak.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
