/root/repo/target/debug/deps/mccp-dcc775477ab1a75b.d: src/lib.rs

/root/repo/target/debug/deps/libmccp-dcc775477ab1a75b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmccp-dcc775477ab1a75b.rmeta: src/lib.rs

src/lib.rs:
