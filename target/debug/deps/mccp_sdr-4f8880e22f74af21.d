/root/repo/target/debug/deps/mccp_sdr-4f8880e22f74af21.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/libmccp_sdr-4f8880e22f74af21.rlib: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/libmccp_sdr-4f8880e22f74af21.rmeta: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
