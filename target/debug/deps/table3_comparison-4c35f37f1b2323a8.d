/root/repo/target/debug/deps/table3_comparison-4c35f37f1b2323a8.d: crates/mccp-bench/src/bin/table3_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_comparison-4c35f37f1b2323a8.rmeta: crates/mccp-bench/src/bin/table3_comparison.rs Cargo.toml

crates/mccp-bench/src/bin/table3_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
