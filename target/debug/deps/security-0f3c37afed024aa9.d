/root/repo/target/debug/deps/security-0f3c37afed024aa9.d: tests/security.rs

/root/repo/target/debug/deps/security-0f3c37afed024aa9: tests/security.rs

tests/security.rs:
