/root/repo/target/debug/deps/ablation_fifo-3b88d374d76a824a.d: crates/mccp-bench/src/bin/ablation_fifo.rs

/root/repo/target/debug/deps/ablation_fifo-3b88d374d76a824a: crates/mccp-bench/src/bin/ablation_fifo.rs

crates/mccp-bench/src/bin/ablation_fifo.rs:
