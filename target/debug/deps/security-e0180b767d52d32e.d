/root/repo/target/debug/deps/security-e0180b767d52d32e.d: tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-e0180b767d52d32e.rmeta: tests/security.rs Cargo.toml

tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
