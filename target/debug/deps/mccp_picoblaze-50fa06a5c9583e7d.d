/root/repo/target/debug/deps/mccp_picoblaze-50fa06a5c9583e7d.d: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs Cargo.toml

/root/repo/target/debug/deps/libmccp_picoblaze-50fa06a5c9583e7d.rmeta: crates/mccp-picoblaze/src/lib.rs crates/mccp-picoblaze/src/asm.rs crates/mccp-picoblaze/src/cpu.rs crates/mccp-picoblaze/src/isa.rs crates/mccp-picoblaze/src/profile.rs Cargo.toml

crates/mccp-picoblaze/src/lib.rs:
crates/mccp-picoblaze/src/asm.rs:
crates/mccp-picoblaze/src/cpu.rs:
crates/mccp-picoblaze/src/isa.rs:
crates/mccp-picoblaze/src/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
