/root/repo/target/debug/deps/fig_offered_load-b780d44ee383a787.d: crates/mccp-bench/src/bin/fig_offered_load.rs

/root/repo/target/debug/deps/fig_offered_load-b780d44ee383a787: crates/mccp-bench/src/bin/fig_offered_load.rs

crates/mccp-bench/src/bin/fig_offered_load.rs:
