/root/repo/target/debug/deps/fig_aad_fraction-502a8388b95e9fd0.d: crates/mccp-bench/src/bin/fig_aad_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig_aad_fraction-502a8388b95e9fd0.rmeta: crates/mccp-bench/src/bin/fig_aad_fraction.rs Cargo.toml

crates/mccp-bench/src/bin/fig_aad_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
