/root/repo/target/debug/deps/serde-44619bb22f88ec96.d: vendor-stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-44619bb22f88ec96.rmeta: vendor-stubs/serde/src/lib.rs

vendor-stubs/serde/src/lib.rs:
