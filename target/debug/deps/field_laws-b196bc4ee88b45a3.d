/root/repo/target/debug/deps/field_laws-b196bc4ee88b45a3.d: crates/mccp-gf128/tests/field_laws.rs

/root/repo/target/debug/deps/field_laws-b196bc4ee88b45a3: crates/mccp-gf128/tests/field_laws.rs

crates/mccp-gf128/tests/field_laws.rs:
