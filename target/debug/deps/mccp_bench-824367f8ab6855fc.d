/root/repo/target/debug/deps/mccp_bench-824367f8ab6855fc.d: crates/mccp-bench/src/lib.rs

/root/repo/target/debug/deps/mccp_bench-824367f8ab6855fc: crates/mccp-bench/src/lib.rs

crates/mccp-bench/src/lib.rs:
