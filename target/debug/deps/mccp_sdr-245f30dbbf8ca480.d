/root/repo/target/debug/deps/mccp_sdr-245f30dbbf8ca480.d: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/libmccp_sdr-245f30dbbf8ca480.rlib: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

/root/repo/target/debug/deps/libmccp_sdr-245f30dbbf8ca480.rmeta: crates/mccp-sdr/src/lib.rs crates/mccp-sdr/src/channel.rs crates/mccp-sdr/src/driver.rs crates/mccp-sdr/src/qos.rs crates/mccp-sdr/src/standards.rs crates/mccp-sdr/src/workload.rs

crates/mccp-sdr/src/lib.rs:
crates/mccp-sdr/src/channel.rs:
crates/mccp-sdr/src/driver.rs:
crates/mccp-sdr/src/qos.rs:
crates/mccp-sdr/src/standards.rs:
crates/mccp-sdr/src/workload.rs:
