/root/repo/target/debug/deps/mccp_cryptounit-95075cceabc053ee.d: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

/root/repo/target/debug/deps/libmccp_cryptounit-95075cceabc053ee.rlib: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

/root/repo/target/debug/deps/libmccp_cryptounit-95075cceabc053ee.rmeta: crates/mccp-cryptounit/src/lib.rs crates/mccp-cryptounit/src/engine.rs crates/mccp-cryptounit/src/isa.rs crates/mccp-cryptounit/src/timing.rs crates/mccp-cryptounit/src/unit.rs

crates/mccp-cryptounit/src/lib.rs:
crates/mccp-cryptounit/src/engine.rs:
crates/mccp-cryptounit/src/isa.rs:
crates/mccp-cryptounit/src/timing.rs:
crates/mccp-cryptounit/src/unit.rs:
