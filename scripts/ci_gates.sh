#!/usr/bin/env bash
# The single source of truth for every CI gate. Both CI jobs invoke this
# script, so a local `./scripts/ci_gates.sh all` is byte-for-byte the CI
# run. Stages are selectable by name:
#
#   ./scripts/ci_gates.sh all              # everything (both CI jobs)
#   ./scripts/ci_gates.sh build-test       # the Build & test job
#   ./scripts/ci_gates.sh lint             # the Clippy & rustfmt job
#   ./scripts/ci_gates.sh build test ...   # any stages, in order
#
# Run `./scripts/ci_gates.sh list` for the stage catalogue.
set -euo pipefail
cd "$(dirname "$0")/.."

stage_build() { cargo build --release --workspace; }

stage_test() { cargo test --workspace -q; }

stage_cycle_identity() { cargo test -p mccp-core --test cycle_identity -q; }

stage_backend_equivalence() { cargo test -p mccp-sdr --test backend_equivalence -q; }

stage_fault_plane() {
  cargo test -p mccp-core fault -q
  cargo test -p mccp-sdr cluster::tests -q
}

stage_service_churn() { cargo test -p mccp-sdr --test service_churn -q; }

stage_pipeline_equivalence() { cargo test --test pipeline_equivalence -q; }

# bench_service --quick asserts zero SecureVoice sheds below the knee,
# ordered shed rates at 3x, <4 KiB per idle channel, and a leak-free
# churn loop without rewriting BENCH_service.json.
stage_service_smoke() { cargo run --release -p mccp-bench --bin bench_service -- --quick; }

stage_chaos_smoke() { cargo run --release -p mccp-bench --bin chaos_soak -- --packets 200; }

# obs_report asserts both contracts and exits non-zero on breach:
# best-of-N wall overhead under the 5% budget, and records/cycles/
# retries byte-identical between observe-on and observe-off runs.
stage_obs_overhead() { cargo run --release -p mccp-bench --bin obs_report -- --packets 200 --iters 5; }

stage_kernel_equivalence() {
  cargo test -p mccp-aes --test kernel_equivalence -q
  cargo test -p mccp-aes --test zero_alloc -q
  cargo test -p mccp-core --test alloc_bound -q
}

# Re-measures the batched GHASH/CTR/GCM arms and fails if any lands
# below 80% of its floor_* in BENCH_functional_kernels.json.
stage_perf_smoke() { cargo run --release -p mccp-bench --bin bench_cluster -- --quick; }

# bench_reconfig --quick drives a standards-mix shift through the demand
# policy (live CU swaps, Table IV latencies charged exactly, zero drops/
# nonce reuse) and a steady-drain service soak inside a swap window
# (zero Critical sheds), without rewriting BENCH_reconfig.json.
stage_bench_reconfig() { cargo run --release -p mccp-bench --bin bench_reconfig -- --quick; }

# bench_keylife --quick drives live rekeying under load on both engines
# (zero drops, zero nonce reuse, per-epoch oracle match), the handshake
# flash crowd (zero Critical sheds), the cycle-exact handshake/traffic
# overlap, and the key-lifecycle integration tests — without rewriting
# BENCH_keylife.json.
stage_keylife() {
  cargo test --test keylife -q
  cargo run --release -p mccp-bench --bin bench_keylife -- --quick
}

# The adversarial traffic plane: the seeded attack suite on both engines
# (100% typed rejection, zero plaintext, zero crypto-state disturbance),
# the garbage-decrypt proptests, and the exporter key-leak scan.
stage_adversarial() {
  cargo test -p mccp-sdr adversary -q
  cargo test --test security -q
  cargo test --test key_leak -q
}

# Every checked-in BENCH_*.json must parse, declare host_parallelism,
# and keep the fields other gates read (the perf smoke's floor_* values,
# the reconfig gate's loss/shed invariants).
stage_bench_schema() {
  python3 - <<'PY'
import glob, json, sys

failures = []
files = sorted(glob.glob("BENCH_*.json"))
if not files:
    failures.append("no BENCH_*.json files found")
for path in files:
    try:
        with open(path) as f:
            doc = json.load(f)
    except ValueError as e:
        failures.append(f"{path}: invalid JSON ({e})")
        continue
    if "host_parallelism" not in doc:
        failures.append(f"{path}: missing host_parallelism")
    if path == "BENCH_functional_kernels.json":
        for key in (
            "floor_ghash_batched_gb_s",
            "floor_ctr_batched_gb_s",
            "floor_gcm512_batched_packets_per_sec",
        ):
            if key not in doc:
                failures.append(f"{path}: missing {key} (perf smoke reads it)")
    if path == "BENCH_reconfig.json":
        mix = doc.get("mix_shift", {})
        svc = doc.get("service_swap_window", {})
        if mix.get("dropped_packets") != 0:
            failures.append(f"{path}: mix_shift.dropped_packets must be 0")
        if mix.get("nonce_reuse") != 0:
            failures.append(f"{path}: mix_shift.nonce_reuse must be 0")
        if not mix.get("swaps", 0) >= 1:
            failures.append(f"{path}: mix_shift.swaps must be >= 1")
        if mix.get("stall_cycles") != mix.get("expected_stall_cycles"):
            failures.append(f"{path}: stall_cycles must equal expected_stall_cycles")
        if svc.get("critical_sheds_during_swaps") != 0:
            failures.append(f"{path}: critical_sheds_during_swaps must be 0")
    if path == "BENCH_keylife.json":
        contract = doc.get("contract", {})
        for key in (
            "zero_dropped_packets",
            "zero_nonce_reuse",
            "zero_critical_sheds_flash_crowd",
            "zero_plaintext_leaks",
            "zero_key_leak_occurrences",
        ):
            if contract.get(key) is not True:
                failures.append(f"{path}: contract.{key} must be true")
        if contract.get("attacks_rejected_pct") != 100:
            failures.append(f"{path}: contract.attacks_rejected_pct must be 100")
        for engine in ("cycle", "functional"):
            rk = doc.get("rekey_under_load", {}).get(engine, {})
            if rk.get("submitted") != rk.get("delivered"):
                failures.append(f"{path}: rekey_under_load.{engine} dropped packets")
            if rk.get("nonce_reuse") != 0:
                failures.append(f"{path}: rekey_under_load.{engine}.nonce_reuse must be 0")
            adv = doc.get("adversarial", {}).get(engine, {})
            if adv.get("attacks") != adv.get("rejected"):
                failures.append(f"{path}: adversarial.{engine} must reject every attack")
            if adv.get("plaintext_leaks") != 0 or adv.get("nonces_burned") != 0:
                failures.append(f"{path}: adversarial.{engine} leaked state")
        if doc.get("handshake_flash_crowd", {}).get("sheds", {}).get("critical") != 0:
            failures.append(f"{path}: flash crowd must shed zero Critical opens")
        if doc.get("key_leak_scan", {}).get("occurrences") != 0:
            failures.append(f"{path}: key_leak_scan.occurrences must be 0")
for f in failures:
    print(f"bench-schema: {f}", file=sys.stderr)
if failures:
    sys.exit(1)
print(f"bench-schema: {len(files)} BENCH files valid")
PY
}

stage_benches_compile() { cargo bench -p mccp-bench --no-run; }

stage_clippy() { cargo clippy --workspace --all-targets -- -D warnings; }

stage_fmt() { cargo fmt --all -- --check; }

# Stage catalogue: name -> function. Order here is the `all` order.
STAGES=(
  build
  test
  cycle-identity
  backend-equivalence
  fault-plane
  service-churn
  pipeline-equivalence
  service-smoke
  chaos-smoke
  obs-overhead
  kernel-equivalence
  perf-smoke
  bench-reconfig
  keylife
  adversarial
  bench-schema
  benches-compile
  clippy
  fmt
)

BUILD_TEST_STAGES=(
  build test cycle-identity backend-equivalence fault-plane service-churn
  pipeline-equivalence service-smoke chaos-smoke obs-overhead
  kernel-equivalence perf-smoke bench-reconfig keylife adversarial
  bench-schema benches-compile
)

LINT_STAGES=(clippy fmt)

run_stage() {
  local name="$1"
  local fn="stage_${name//-/_}"
  if ! declare -F "$fn" >/dev/null; then
    echo "ci_gates: unknown stage '$name' (try: $0 list)" >&2
    exit 2
  fi
  echo "==> ${name}"
  "$fn"
}

main() {
  if [ "$#" -eq 0 ]; then
    echo "usage: $0 all | build-test | lint | list | <stage>..." >&2
    exit 2
  fi
  local selected=()
  for arg in "$@"; do
    case "$arg" in
      all) selected+=("${STAGES[@]}") ;;
      build-test) selected+=("${BUILD_TEST_STAGES[@]}") ;;
      lint) selected+=("${LINT_STAGES[@]}") ;;
      list)
        printf '%s\n' "${STAGES[@]}"
        exit 0
        ;;
      *) selected+=("$arg") ;;
    esac
  done
  for stage in "${selected[@]}"; do
    run_stage "$stage"
  done
  echo "ci_gates: ${#selected[@]} stage(s) passed"
}

main "$@"
